"""Tests for the mailing-list / Gmail / Apps-Script simulation."""

from __future__ import annotations

import pytest

from repro.errors import MailError
from repro.mail import (
    AppsScriptPoller,
    EmailMessage,
    GmailAccount,
    GmailLabel,
    MailingList,
    standard_petsc_lists,
    strip_quoted_reply,
    undefense_urls,
)


def email(sender="user@host.edu", subject="Help", body="question text", **kw):
    return EmailMessage(sender=sender, subject=subject, body=body, **kw)


class TestEmailMessage:
    def test_message_id_generated(self):
        assert email().message_id.startswith("<")

    def test_invalid_sender(self):
        with pytest.raises(MailError):
            EmailMessage(sender="nodomain", subject="s", body="b")

    def test_thread_subject_strips_re(self):
        assert email(subject="Re: RE: Fwd: Help").thread_subject == "Help"

    def test_thread_subject_plain(self):
        assert email(subject="Help").thread_subject == "Help"


class TestQuoteStripping:
    def test_on_wrote_removed(self):
        body = "new content\n\nOn Mon, Jan 1, 2025, Barry Smith wrote:\n> old stuff\n> more old"
        assert strip_quoted_reply(body) == "new content"

    def test_angle_quotes_removed(self):
        body = "reply here\n> quoted line\nmore reply"
        out = strip_quoted_reply(body)
        assert "quoted line" not in out
        assert "more reply" in out

    def test_signature_removed(self):
        body = "content\n--\nBarry Smith\nFlatiron"
        assert strip_quoted_reply(body) == "content"

    def test_plain_body_untouched(self):
        assert strip_quoted_reply("just text") == "just text"


class TestUrlDefense:
    def test_v3_decoded(self):
        wrapped = "see https://urldefense.com/v3/__https://petsc.org/release/__;!!ABC123$ for docs"
        out = undefense_urls(wrapped)
        assert "https://petsc.org/release/" in out
        assert "urldefense" not in out

    def test_v2_decoded(self):
        wrapped = "https://urldefense.proofpoint.com/v2/url?u=https-3A__petsc.org_release&d=x"
        out = undefense_urls(wrapped)
        assert "https://petsc.org/release" in out

    def test_plain_urls_untouched(self):
        assert undefense_urls("https://petsc.org") == "https://petsc.org"

    def test_clean_body_combines(self):
        msg = email(body="see https://urldefense.com/v3/__https://petsc.org__;!!X$\n> quoted")
        out = msg.clean_body()
        assert "petsc.org" in out and "quoted" not in out


class TestMailingList:
    def test_post_reaches_subscribers_and_archive(self):
        ml = MailingList("petsc-users")
        got = []
        ml.subscribe("a@b.c", got.append)
        msg = email()
        ml.post(msg)
        assert got == [msg]
        assert len(ml.archive) == 1

    def test_private_list_has_no_archive(self):
        lists = standard_petsc_lists()
        assert lists["petsc-maint"].archive is None
        assert lists["petsc-users"].archive is not None

    def test_threading_in_archive(self):
        ml = MailingList("petsc-users")
        ml.post(email(subject="Topic"))
        ml.post(email(subject="Re: Topic", body="reply"))
        assert len(ml.archive.thread("Topic")) == 2

    def test_unknown_thread(self):
        ml = MailingList("petsc-users")
        with pytest.raises(MailError):
            ml.archive.thread("nope")

    def test_duplicate_subscribe_rejected(self):
        ml = MailingList("x")
        ml.subscribe("a@b.c", lambda m: None)
        with pytest.raises(MailError):
            ml.subscribe("a@b.c", lambda m: None)

    def test_unsubscribe(self):
        ml = MailingList("x")
        got = []
        ml.subscribe("a@b.c", got.append)
        ml.unsubscribe("a@b.c")
        ml.post(email())
        assert got == []
        with pytest.raises(MailError):
            ml.unsubscribe("a@b.c")


class TestGmailAccount:
    def test_deliver_and_unread(self):
        acct = GmailAccount("bot@gmail.com")
        acct.deliver(email())
        assert acct.unread_count() == 1
        assert acct.has_unread()

    def test_fetch_marks_read(self):
        acct = GmailAccount("bot@gmail.com")
        acct.deliver(email())
        fetched = acct.fetch_unread()
        assert len(fetched) == 1
        assert acct.unread_count() == 0

    def test_fetch_without_marking(self):
        acct = GmailAccount("bot@gmail.com")
        acct.deliver(email())
        acct.fetch_unread(mark_read=False)
        assert acct.unread_count() == 1

    def test_ignored_sender_arrives_read(self):
        acct = GmailAccount("bot@gmail.com", ignore_senders={"bot@gmail.com"})
        acct.deliver(email(sender="bot@gmail.com"))
        assert acct.unread_count() == 0
        assert len(acct) == 1

    def test_duplicate_delivery_ignored(self):
        acct = GmailAccount("bot@gmail.com")
        msg = email()
        acct.deliver(msg)
        acct.deliver(msg)
        assert len(acct) == 1

    def test_labels(self):
        acct = GmailAccount("bot@gmail.com")
        msg = email()
        acct.deliver(msg)
        assert GmailLabel.UNREAD in acct.labels_of(msg.message_id)
        acct.mark_read(msg.message_id)
        assert GmailLabel.UNREAD not in acct.labels_of(msg.message_id)

    def test_unknown_message(self):
        with pytest.raises(MailError):
            GmailAccount("a@b.c").mark_read("<nope>")


class TestPoller:
    def test_fires_only_with_unread(self):
        acct = GmailAccount("bot@gmail.com")
        posts = []
        poller = AppsScriptPoller(account=acct, webhook_post=posts.append)
        assert not poller.tick()
        acct.deliver(email())
        assert poller.tick()
        assert poller.notifications_sent == 1
        assert poller.runs == 2
        assert "unread" in posts[0]
