"""Tests for the rerankers and the K→L pipeline."""

from __future__ import annotations

import pytest

from repro.documents import Document
from repro.errors import RerankError
from repro.rerank import (
    FlashrankLiteReranker,
    InteractionScorer,
    NvidiaSimReranker,
    RerankingRetriever,
    build_idf,
)
from repro.retrieval import VectorRetriever
from repro.retrieval.base import RetrievedDocument

DOCS = [
    Document(text="KSPLSQR solves rectangular least squares problems", metadata={"i": 0}),
    Document(text="matrices and vectors are assembled in parallel", metadata={"i": 1}),
    Document(text="the restart parameter of GMRES bounds memory", metadata={"i": 2}),
]


def _hits(docs):
    return [
        RetrievedDocument(document=d, score=0.5, origin="vector") for d in docs
    ]


class TestInteractionScorer:
    def test_exact_coverage_beats_none(self):
        sc = InteractionScorer()
        good = sc.score("rectangular least squares", DOCS[0].text)
        bad = sc.score("rectangular least squares", DOCS[1].text)
        assert good > bad

    def test_identifier_feature(self):
        sc = InteractionScorer(w_coverage=0.0, w_bigram=0.0, w_focus=0.0)
        with_id = sc.score("What does KSPLSQR do?", DOCS[0].text)
        without = sc.score("What does KSPLSQR do?", DOCS[1].text)
        assert with_id > without

    def test_concept_cluster_synonyms(self):
        sc = InteractionScorer(w_identifier=0.0, w_bigram=0.0, w_focus=0.0)
        # "measure the time" should partially match profiling vocabulary.
        prof = sc.score("measure where the time goes", "use -log_view for a performance summary")
        other = sc.score("measure where the time goes", "nullspace handling for singular systems")
        assert prof > other

    def test_focus_penalizes_long_dilute_text(self):
        sc = InteractionScorer(w_focus=0.5, focus_chars=50)
        short = sc.score("gmres restart", "gmres restart bounds memory")
        long = sc.score("gmres restart", "gmres restart bounds memory " + "filler words here " * 40)
        assert short > long

    def test_proximity_rewards_tight_windows(self):
        sc = InteractionScorer(
            w_coverage=0.0, w_identifier=0.0, w_bigram=0.0, w_focus=0.0, w_proximity=1.0
        )
        tight = sc.score("restart memory", "the restart memory tradeoff")
        loose = sc.score("restart memory", "restart " + "x " * 60 + " memory")
        assert tight > loose

    def test_build_idf_rare_terms_weigh_more(self):
        idf = build_idf(DOCS)
        assert idf["rectangular"] > idf["parallel"] or idf["rectangular"] >= idf["parallel"]


class TestRerankers:
    @pytest.mark.parametrize("cls", [FlashrankLiteReranker, NvidiaSimReranker])
    def test_relevant_doc_first(self, cls):
        rr = cls(DOCS)
        out = rr.rerank("rectangular least squares solver", _hits(DOCS), top_n=3)
        assert out[0].document.document.metadata["i"] == 0

    @pytest.mark.parametrize("cls", [FlashrankLiteReranker, NvidiaSimReranker])
    def test_top_n_truncates(self, cls):
        rr = cls(DOCS)
        assert len(rr.rerank("gmres", _hits(DOCS), top_n=1)) == 1

    def test_min_score_drops_irrelevant(self):
        rr = FlashrankLiteReranker(DOCS)
        out = rr.rerank("rectangular least squares", _hits(DOCS), top_n=3, min_score=0.5)
        kept = {r.document.document.metadata["i"] for r in out}
        assert 1 not in kept

    def test_empty_candidates(self):
        assert FlashrankLiteReranker().rerank("q", [], top_n=4) == []

    def test_invalid_top_n(self):
        with pytest.raises(RerankError):
            FlashrankLiteReranker().rerank("q", _hits(DOCS), top_n=0)

    def test_rerankers_agree_on_easy_case(self):
        """Paper: both rerankers reach a similar level of accuracy."""
        flash = FlashrankLiteReranker(DOCS)
        nvidia = NvidiaSimReranker(DOCS)
        q = "GMRES restart memory"
        a = flash.rerank(q, _hits(DOCS), top_n=1)[0].document.document.metadata["i"]
        b = nvidia.rerank(q, _hits(DOCS), top_n=1)[0].document.document.metadata["i"]
        assert a == b == 2

    def test_nvidia_batching(self):
        rr = NvidiaSimReranker(DOCS, batch_size=2)
        scores = rr.score_pairs("gmres restart", [d.text for d in DOCS] * 3)
        assert len(scores) == 9


class TestRerankingRetriever:
    def test_k_to_l(self, store, chunks):
        rr = RerankingRetriever(
            retriever=VectorRetriever(store),
            reranker=FlashrankLiteReranker(chunks),
            first_pass_k=8,
        )
        out = rr.retrieve("Can KSP solve rectangular least squares problems?", k=4)
        assert len(out) == 4
        assert all(h.origin == "rerank[flashrank-lite]" for h in out)

    def test_k_larger_than_first_pass_rejected(self, store):
        rr = RerankingRetriever(
            retriever=VectorRetriever(store),
            reranker=FlashrankLiteReranker(),
            first_pass_k=4,
        )
        with pytest.raises(RerankError):
            rr.retrieve("q", k=8)

    def test_invalid_first_pass(self, store):
        with pytest.raises(RerankError):
            RerankingRetriever(
                retriever=VectorRetriever(store),
                reranker=FlashrankLiteReranker(),
                first_pass_k=0,
            )

    def test_detailed_returns_candidates(self, store, chunks):
        rr = RerankingRetriever(
            retriever=VectorRetriever(store),
            reranker=FlashrankLiteReranker(chunks),
            first_pass_k=8,
        )
        candidates, results = rr.retrieve_detailed("GMRES restart", k=4)
        assert len(candidates) == 8
        assert len(results) == 4
