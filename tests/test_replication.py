"""Tests for replicated shard serving: health tracking, deterministic
failover, hedged probes, and partial-result degradation.

The load-bearing guarantee under test: with ``replicas >= 2``, any
fault schedule that kills at most one replica per shard leaves answers,
metrics-relevant results, and span digests byte-identical to the
healthy single-copy baseline — failover changes *which copy* answered,
never *what* was answered.
"""

from __future__ import annotations

import pytest

from repro.api import open_engine
from repro.config import (
    ReplicationConfig,
    ReproConfig,
    ShardingConfig,
)
from repro.documents import Document
from repro.embeddings import HashingEmbedding
from repro.errors import ConfigurationError, PartialResultError, VectorStoreError
from repro.evaluation.benchmark import krylov_benchmark
from repro.observability import MetricsRegistry, use_registry
from repro.replication import HealthTracker, ReplicaSet, ReplicaState
from repro.resilience import FaultConfig, FaultInjector
from repro.vectorstore import ShardedVectorStore, VectorStore, shard_for_document


def _docs(n=12):
    return [
        Document(text=f"krylov method number {i} gmres", metadata={"source": f"d{i}"})
        for i in range(n)
    ]


def _sharded(docs, num_shards=3, **kwargs):
    emb = HashingEmbedding(dim=32)
    buckets = [[] for _ in range(num_shards)]
    for d in docs:
        buckets[shard_for_document(d, num_shards)].append(d)
    shards = [VectorStore.from_documents(b, emb) for b in buckets]
    return ShardedVectorStore(shards, emb, **kwargs)


class DeadStore:
    """A replica whose search transport never answers."""

    def __init__(self, inner):
        self.inner = inner

    @property
    def embedding(self):
        return self.inner.embedding

    def similarity_search_by_vector_with_score(self, qvec, *, k=4, where=None):
        raise VectorStoreError("replica dead")

    def similarity_search_with_score(self, query, *, k=4, where=None):
        raise VectorStoreError("replica dead")

    def add_documents(self, documents):
        return self.inner.add_documents(documents)

    def delete(self, ids):
        return self.inner.delete(ids)

    def __len__(self):
        return len(self.inner)


def _kill_primary(store, shard_index, replica_index):
    return DeadStore(store) if replica_index == 0 else store


class TestReplicationConfig:
    def test_defaults_validate(self):
        ReplicationConfig().validate()
        ReplicationConfig(replicas=3, hedging=True, hedge_deadline_fraction=1.0).validate()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=0).validate()
        with pytest.raises(ConfigurationError):
            ReplicationConfig(suspect_after=0).validate()
        with pytest.raises(ConfigurationError):
            ReplicationConfig(suspect_after=3, down_after=2).validate()
        with pytest.raises(ConfigurationError):
            ReplicationConfig(probe_after=0).validate()
        with pytest.raises(ConfigurationError):
            ReplicationConfig(hedge_deadline_fraction=0.0).validate()

    def test_round_trips_through_repro_config(self):
        cfg = ReproConfig(
            replication=ReplicationConfig(replicas=3, hedging=True)
        )
        clone = ReproConfig.from_dict(cfg.to_dict())
        assert clone.replication == cfg.replication


class TestHealthTracker:
    def _tracker(self, reg=None, **kwargs):
        cfg = ReplicationConfig(replicas=2, **kwargs)
        registry = reg if reg is not None else MetricsRegistry()
        return HealthTracker(cfg, registry_fn=lambda: registry), registry

    def test_initial_state_is_up(self):
        tracker, _ = self._tracker()
        assert tracker.state(0, 0) is ReplicaState.UP
        assert tracker.should_probe(0, 0)

    def test_failures_walk_up_suspect_down(self):
        tracker, reg = self._tracker(suspect_after=1, down_after=3)
        tracker.record_failure(0, 0)
        assert tracker.state(0, 0) is ReplicaState.SUSPECT
        tracker.record_failure(0, 0)
        assert tracker.state(0, 0) is ReplicaState.SUSPECT
        tracker.record_failure(0, 0)
        assert tracker.state(0, 0) is ReplicaState.DOWN
        assert reg.counter("repro.replica.marked_suspect").value == 1
        assert reg.counter("repro.replica.marked_down").value == 1

    def test_down_replica_sits_out_then_half_open_probes(self):
        tracker, _ = self._tracker(down_after=1, probe_after=3)
        tracker.record_failure(2, 1)
        assert tracker.state(2, 1) is ReplicaState.DOWN
        # probe_after - 1 selections skipped, then one half-open probe.
        assert not tracker.should_probe(2, 1)
        assert not tracker.should_probe(2, 1)
        assert tracker.should_probe(2, 1)
        # The cycle repeats until an outcome is recorded.
        assert not tracker.should_probe(2, 1)

    def test_success_fully_recovers(self):
        tracker, reg = self._tracker(down_after=1)
        tracker.record_failure(0, 0)
        assert tracker.state(0, 0) is ReplicaState.DOWN
        tracker.record_success(0, 0)
        assert tracker.state(0, 0) is ReplicaState.UP
        assert tracker.should_probe(0, 0)
        assert reg.counter("repro.replica.recovered").value == 1
        # Recovery resets the failure fold: one new failure is suspect,
        # not down-continued.
        tracker.record_failure(0, 0)
        assert tracker.state(0, 0) is ReplicaState.DOWN  # down_after=1

    def test_snapshot_groups_by_shard(self):
        tracker, _ = self._tracker(suspect_after=1, down_after=2)
        tracker.record_failure(1, 0)
        tracker.record_failure(0, 1)
        tracker.record_failure(0, 1)
        tracker.record_success(0, 0)
        assert tracker.snapshot() == {0: ["up", "down"], 1: ["suspect"]}


class TestReplicaSet:
    def _set(self, *, hedging=False, dead_primary=True, health_kwargs=None):
        emb = HashingEmbedding(dim=32)
        store = VectorStore.from_documents(_docs(6), emb)
        reg = MetricsRegistry()
        cfg = ReplicationConfig(replicas=2, **(health_kwargs or {}))
        health = HealthTracker(cfg, registry_fn=lambda: reg)
        primary = DeadStore(store.fork()) if dead_primary else store.fork()
        rs = ReplicaSet(
            0, [primary, store.fork()], health,
            hedging=hedging, registry_fn=lambda: reg,
        )
        qvec = emb.embed_query("krylov gmres")
        return rs, health, reg, qvec, store

    def test_failover_returns_backup_answer(self):
        rs, health, reg, qvec, store = self._set()
        hits = rs.top_k(qvec, 3, None)
        from repro.vectorstore.sharded import _shard_top_k

        expected = _shard_top_k(store, qvec, 3, None)
        assert [(d.doc_id, round(s, 9)) for d, s in hits] == [
            (d.doc_id, round(s, 9)) for d, s in expected
        ]
        assert reg.counter("repro.replica.failovers").value == 1
        assert reg.counter("repro.replica.probe_failures").value == 1
        assert health.state(0, 0) is ReplicaState.SUSPECT
        assert health.state(0, 1) is ReplicaState.UP

    def test_down_primary_is_skipped_not_probed(self):
        rs, health, reg, qvec, _ = self._set(health_kwargs={"down_after": 1})
        rs.top_k(qvec, 3, None)  # primary fails once -> straight to down
        assert health.state(0, 0) is ReplicaState.DOWN
        probes_before = reg.counter("repro.replica.probes").value
        rs.top_k(qvec, 3, None)
        # Only the backup was probed; no failover counted for a walk
        # that never included the down primary.
        assert reg.counter("repro.replica.probes").value == probes_before + 1
        assert reg.counter("repro.replica.failovers").value == 1

    def test_every_replica_down_returns_none(self):
        rs, _, reg, qvec, _ = self._set()
        rs.replicas[1] = DeadStore(rs.replicas[1])
        assert rs.top_k(qvec, 3, None) is None
        assert reg.counter("repro.replica.probe_failures").value == 2

    def test_suspect_primary_triggers_hedge_and_win(self):
        rs, health, reg, qvec, store = self._set(hedging=True)
        rs.top_k(qvec, 3, None)  # first walk: plain failover, marks suspect
        assert reg.counter("repro.replica.hedges").value == 0
        hits = rs.top_k(qvec, 3, None)  # suspect primary -> hedged probe
        assert reg.counter("repro.replica.hedges").value == 1
        assert reg.counter("repro.replica.hedge_wins").value == 1
        from repro.vectorstore.sharded import _shard_top_k

        assert [d.doc_id for d, _ in hits] == [
            d.doc_id for d, _ in _shard_top_k(store, qvec, 3, None)
        ]

    def test_healthy_primary_never_hedges(self):
        rs, _, reg, qvec, _ = self._set(hedging=True, dead_primary=False)
        rs.top_k(qvec, 3, None)
        rs.top_k(qvec, 3, None)
        assert reg.counter("repro.replica.hedges").value == 0
        assert reg.counter("repro.replica.failovers").value == 0

    def test_empty_replica_set_rejected(self):
        health = HealthTracker(ReplicationConfig())
        with pytest.raises(VectorStoreError):
            ReplicaSet(0, [], health)


class TestReplicatedStore:
    """with_replication on the composite store: the digest contract."""

    def _replicated(self, docs, *, replicas=2, wrapper=_kill_primary,
                    num_shards=3, reg=None, **rep_kwargs):
        registry = reg if reg is not None else MetricsRegistry()
        base = _sharded(docs, num_shards, registry_fn=lambda: registry)
        cfg = ReplicationConfig(replicas=replicas, **rep_kwargs)
        health = HealthTracker(cfg, registry_fn=lambda: registry)
        return base.with_replication(cfg, health=health, store_wrapper=wrapper), registry

    def test_failover_results_match_healthy_baseline(self):
        docs = _docs()
        healthy = _sharded(docs).similarity_search_with_score("krylov gmres", k=5)
        store, reg = self._replicated(docs)
        rescued = store.similarity_search_with_score("krylov gmres", k=5)
        assert [(d.doc_id, round(s, 9)) for d, s in rescued] == [
            (d.doc_id, round(s, 9)) for d, s in healthy
        ]
        assert reg.counter("repro.replica.failovers").value == 3
        assert reg.counter("repro.shard.partial_queries").value == 0

    def test_fault_injector_wrapped_primaries_match_baseline(self):
        # The same contract through the seeded fault seam at rate 1.0.
        docs = _docs()
        injector = FaultInjector(7, FaultConfig(shard_fault_rate=1.0))

        def wrap(store, shard_index, replica_index):
            if replica_index > 0:
                return store
            return injector.wrap_store(store, site=f"shard:{shard_index}")

        healthy = _sharded(docs).similarity_search_with_score("krylov gmres", k=4)
        store, _ = self._replicated(docs, wrapper=wrap)
        assert [
            (d.doc_id, round(s, 9))
            for d, s in store.similarity_search_with_score("krylov gmres", k=4)
        ] == [(d.doc_id, round(s, 9)) for d, s in healthy]
        sites = {event.site for event in injector.schedule()}
        assert sites and all(site.startswith("shard:") for site in sites)

    def test_single_copy_outage_degrades_to_partial(self):
        docs = _docs()
        dead_shard = shard_for_document(docs[0], 3)

        def wrap(store, shard_index, replica_index):
            return DeadStore(store) if shard_index == dead_shard else store

        store, reg = self._replicated(docs, replicas=1, wrapper=wrap)
        hits = store.similarity_search_with_score("krylov gmres", k=6)
        survivors = [d for d in docs if shard_for_document(d, 3) != dead_shard]
        expected = VectorStore.from_documents(
            survivors, HashingEmbedding(dim=32)
        ).similarity_search_with_score("krylov gmres", k=len(survivors))
        expected.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
        expected = expected[:6]
        assert [(d.doc_id, round(s, 9)) for d, s in hits] == [
            (d.doc_id, round(s, 9)) for d, s in expected
        ]
        assert reg.counter("repro.shard.partial_queries").value == 1
        assert reg.counter("repro.shard.unanswered").value == 1
        # Deterministic across reruns: same merge, same counters delta.
        assert [
            d.doc_id for d, _ in store.similarity_search_with_score("krylov gmres", k=6)
        ] == [d.doc_id for d, _ in hits]

    def test_require_full_coverage_raises_typed_error(self):
        docs = _docs()
        dead_shard = shard_for_document(docs[0], 3)

        def wrap(store, shard_index, replica_index):
            return DeadStore(store) if shard_index == dead_shard else store

        store, _ = self._replicated(
            docs, replicas=1, wrapper=wrap, require_full_coverage=True
        )
        with pytest.raises(PartialResultError) as err:
            store.similarity_search_with_score("krylov gmres", k=4)
        assert err.value.failed_shards == (dead_shard,)
        assert err.value.coverage == pytest.approx(2 / 3)

    def test_mutations_fan_out_to_replicas(self):
        docs = _docs(6)
        store, _ = self._replicated(docs, wrapper=None)
        extra = Document(text="new flexible gmres note", metadata={"source": "d0"})
        target = shard_for_document(extra, 3)
        store._add_documents([extra])
        replica_set = store.replica_sets[target]
        assert all(len(r) == len(store.shards[target]) for r in replica_set.replicas)
        # A dead primary after the write: the backup must already hold
        # the new document.
        replica_set.replicas[0] = DeadStore(replica_set.replicas[0])
        hits = store.similarity_search_with_score("new flexible gmres note", k=3)
        assert extra.doc_id in [d.doc_id for d, _ in hits]
        store.delete([extra.doc_id])
        assert all(len(r) == len(store.shards[target]) for r in replica_set.replicas)

    def test_replica_count_mismatch_rejected(self):
        docs = _docs(6)
        store, _ = self._replicated(docs, wrapper=None)
        with pytest.raises(VectorStoreError):
            ShardedVectorStore(
                store.shards[:2], store.embedding, replica_sets=store.replica_sets
            )


class TestEngineFailover:
    """End-to-end: the digest guarantee through the sharded engine."""

    def _cfg(self, **kwargs):
        return ReproConfig(
            iterations_per_token=0,
            sharding=ShardingConfig(num_shards=3),
            **kwargs,
        )

    def _digests(self, bundle, config, injector, registry):
        engine = open_engine(
            config, bundle=bundle, fault_injector=injector, registry=registry
        )
        questions = [q.text for q in krylov_benchmark()[:4]]
        batch = engine.service.answer_many(questions, workers=1)
        return batch.answers_digest(), batch.span_digest(), batch

    def test_failover_is_digest_invisible(self, bundle):
        # Baseline carries a zero-rate injector so the answer cache is
        # disabled in both runs (cache state parity).
        base_reg = MetricsRegistry()
        base = self._digests(
            bundle, self._cfg(), FaultInjector(0, FaultConfig()), base_reg
        )
        fail_reg = MetricsRegistry()
        failover = self._digests(
            bundle,
            self._cfg(replication=ReplicationConfig(replicas=2, hedging=True)),
            FaultInjector(0, FaultConfig(shard_fault_rate=1.0)),
            fail_reg,
        )
        assert failover[0] == base[0]
        assert failover[1] == base[1]
        assert fail_reg.counter("repro.replica.failovers").value > 0
        assert base_reg.counter("repro.replica.failovers").value == 0

    def test_partial_coverage_marks_degradation_deterministically(self, bundle):
        cfg = self._cfg(replication=ReplicationConfig(replicas=1))
        runs = []
        for _ in range(2):
            reg = MetricsRegistry()
            _, _, batch = self._digests(
                bundle, cfg, FaultInjector(3, FaultConfig(shard_fault_rate=1.0)), reg
            )
            runs.append(batch)
        a, b = runs
        assert a.answers_digest() == b.answers_digest()
        assert a.span_digest() == b.span_digest()
        assert a.partial_count > 0
        assert a.min_coverage < 1.0
        marked = [
            it for it in a.items
            if it.result is not None
            and any(str(e) == "shard:partial" for e in it.result.degraded)
        ]
        assert len(marked) == a.partial_count

    def test_require_full_coverage_fails_requests(self, bundle):
        cfg = self._cfg(
            replication=ReplicationConfig(replicas=1, require_full_coverage=True)
        )
        reg = MetricsRegistry()
        _, _, batch = self._digests(
            bundle, cfg, FaultInjector(3, FaultConfig(shard_fault_rate=1.0)), reg
        )
        failed = [it for it in batch.items if not it.answered]
        assert failed
        assert all("PartialResultError" in it.error for it in failed)

    def test_shard_summary_reports_replica_health(self, bundle):
        cfg = self._cfg(replication=ReplicationConfig(replicas=2))
        engine = open_engine(
            cfg, bundle=bundle,
            fault_injector=FaultInjector(0, FaultConfig(shard_fault_rate=1.0)),
            registry=MetricsRegistry(),
        )
        engine.answer("What is the default KSP type?")
        summary = engine.shard_summary()
        assert summary["replicas"] == 2
        states = {s for row in summary["shards"] for s in row["health"]}
        # Wrapped primaries failed at rate 1.0: at least one is marked.
        assert states & {"suspect", "down"}
        assert all(row["replicas"] == 2 for row in summary["shards"])
