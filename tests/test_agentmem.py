"""Tests for the agentic memory prototype."""

from __future__ import annotations

import pytest

from repro.agentmem import AgentMemory
from repro.errors import HistoryError


class TestAgentMemory:
    def test_remember_and_recall_episode(self):
        mem = AgentMemory()
        mem.remember("GMRES restart question", "restart answer", timestamp=1.0)
        eps = mem.recall_episodes("what about the GMRES restart?")
        assert eps and eps[0].answer == "restart answer"

    def test_capacity_bounded(self):
        mem = AgentMemory(short_term_capacity=5)
        for i in range(20):
            mem.remember(f"question {i} about solvers", f"a{i}", timestamp=float(i))
        assert len(mem.episodes) <= 5

    def test_consolidation_creates_notes(self):
        mem = AgentMemory(consolidation_threshold=3)
        for i in range(3):
            mem.remember(f"preconditioner question {i}", f"answer {i}", timestamp=float(i))
        mem.consolidate()
        assert any("precondition" in t for n in mem.notes for t in n.topic_terms)

    def test_consolidation_tracks_latest(self):
        mem = AgentMemory(consolidation_threshold=2)
        mem.remember("nullspace q one", "old answer", timestamp=1.0)
        mem.remember("nullspace q two", "new answer", timestamp=2.0)
        mem.consolidate()
        notes = mem.recall("a nullspace question")
        assert notes and "new answer" in notes[0].summary

    def test_recall_empty_when_unrelated(self):
        mem = AgentMemory(consolidation_threshold=2)
        mem.remember("gmres a", "x", timestamp=1.0)
        mem.remember("gmres b", "y", timestamp=2.0)
        mem.consolidate()
        assert mem.recall("completely unrelated cooking recipe") == []

    def test_note_refresh_not_duplicate(self):
        mem = AgentMemory(consolidation_threshold=2)
        for i in range(4):
            mem.remember(f"chebyshev question {i}", f"a{i}", timestamp=float(i))
        mem.consolidate()
        n1 = len(mem.notes)
        mem.consolidate()
        assert len(mem.notes) == n1

    def test_invalid_params(self):
        with pytest.raises(HistoryError):
            AgentMemory(short_term_capacity=0)
        with pytest.raises(HistoryError):
            AgentMemory(consolidation_threshold=1)
