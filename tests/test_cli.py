"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_ask(self, capsys):
        rc = main(["--fast", "ask", "What does KSPBurb do?"])
        assert rc == 0
        out = capsys.readouterr()
        assert "no PETSc function" in out.out
        assert "rag+rerank" in out.err

    def test_ask_show_contexts(self, capsys):
        rc = main(["--fast", "ask", "--show-contexts", "What is the default KSP type?"])
        assert rc == 0
        assert "contexts" in capsys.readouterr().err

    def test_ask_baseline_mode(self, capsys):
        rc = main(["--fast", "--mode", "baseline", "ask", "What is KSP?"])
        assert rc == 0
        assert "baseline" in capsys.readouterr().err

    def test_corpus_dump(self, tmp_path, capsys):
        rc = main(["corpus", "--out", str(tmp_path / "docs")])
        assert rc == 0
        assert "Markdown files" in capsys.readouterr().out
        assert (tmp_path / "docs" / "faq.md").exists()

    def test_casestudy(self, capsys):
        rc = main(["--fast", "casestudy", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Case Study 2" in out
        assert "-info" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["--model", "gpt-99", "ask", "hi"])


class TestHistoryFeedback:
    def test_feed_history_into_rag(self, bundle, fast_config):
        from repro.history import ScoreRecord
        from repro.pipeline import build_workflow

        wf = build_workflow(bundle, fast_config, mode="rag+rerank")
        ans = wf.ask("How do I change the relative tolerance for a KSP solve?")
        wf.store.add_score(ans.interaction_id, ScoreRecord(scorer="dev", score=4))

        before = len(wf.pipeline.retriever.store)
        added = wf.feed_history_into_rag(min_mean_score=3.0)
        assert added == 1
        assert len(wf.pipeline.retriever.store) == before + 1
        # Idempotent: re-feeding the same interaction adds nothing.
        assert wf.feed_history_into_rag(min_mean_score=3.0) == 0

        # The vetted Q/A is now retrievable.
        hits = wf.pipeline.retriever.store.similarity_search(
            "change the relative tolerance for a KSP solve",
            k=5, where={"doc_type": "history"},
        )
        assert hits

    def test_feedback_noop_for_baseline(self, bundle, fast_config):
        from repro.pipeline import build_workflow

        wf = build_workflow(bundle, fast_config, mode="baseline")
        wf.ask("anything")
        assert wf.feed_history_into_rag() == 0
