"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_ask(self, capsys):
        rc = main(["--fast", "ask", "What does KSPBurb do?"])
        assert rc == 0
        out = capsys.readouterr()
        assert "no PETSc function" in out.out
        assert "rag+rerank" in out.err

    def test_ask_show_contexts(self, capsys):
        rc = main(["--fast", "ask", "--show-contexts", "What is the default KSP type?"])
        assert rc == 0
        assert "contexts" in capsys.readouterr().err

    def test_ask_baseline_mode(self, capsys):
        rc = main(["--fast", "--mode", "baseline", "ask", "What is KSP?"])
        assert rc == 0
        assert "baseline" in capsys.readouterr().err

    def test_corpus_dump(self, tmp_path, capsys):
        rc = main(["corpus", "--out", str(tmp_path / "docs")])
        assert rc == 0
        assert "Markdown files" in capsys.readouterr().out
        assert (tmp_path / "docs" / "faq.md").exists()

    def test_casestudy(self, capsys):
        rc = main(["--fast", "casestudy", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Case Study 2" in out
        assert "-info" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["--model", "gpt-99", "ask", "hi"])


class TestHistoryFeedback:
    def test_feed_history_into_rag(self, bundle, fast_config):
        from repro.history import ScoreRecord
        from repro.pipeline import build_workflow

        wf = build_workflow(bundle, fast_config, mode="rag+rerank")
        ans = wf.ask("How do I change the relative tolerance for a KSP solve?")
        wf.store.add_score(ans.interaction_id, ScoreRecord(scorer="dev", score=4))

        before = len(wf.pipeline.retriever.store)
        added = wf.feed_history_into_rag(min_mean_score=3.0)
        assert added == 1
        assert len(wf.pipeline.retriever.store) == before + 1
        # Idempotent: re-feeding the same interaction adds nothing.
        assert wf.feed_history_into_rag(min_mean_score=3.0) == 0

        # The vetted Q/A is now retrievable.
        hits = wf.pipeline.retriever.store.similarity_search(
            "change the relative tolerance for a KSP solve",
            k=5, where={"doc_type": "history"},
        )
        assert hits

    def test_feedback_noop_for_baseline(self, bundle, fast_config):
        from repro.pipeline import build_workflow

        wf = build_workflow(bundle, fast_config, mode="baseline")
        wf.ask("anything")
        assert wf.feed_history_into_rag() == 0


class TestShardedCli:
    def test_ask_answers_match_monolithic(self, capsys):
        q = "What is the default KSP type?"
        assert main(["--fast", "ask", q]) == 0
        mono = capsys.readouterr().out
        assert main(["--fast", "--shards", "2", "ask", q]) == 0
        assert capsys.readouterr().out == mono

    def test_metrics_json_reports_shards(self, capsys):
        import json

        rc = main(["--fast", "--shards", "2", "metrics", "--questions", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"]["num_shards"] == 2
        assert len(payload["shards"]["shards"]) == 2
        assert {r["shard"] for r in payload["shards"]["shards"]} == {0, 1}

    def test_metrics_text_omits_shards_when_monolithic(self, capsys):
        rc = main(["--fast", "metrics", "--questions", "1"])
        assert rc == 0
        assert "shards (" not in capsys.readouterr().out


class TestRecoverCli:
    def test_dry_run_reports_torn_tail_offset(self, tmp_path, capsys):
        from repro.durability import Journal

        path = tmp_path / "j.log"
        with Journal(path) as journal:
            journal.append({"op": "push", "letter": {"n": 1}})
        intact = len(path.read_bytes())
        path.write_bytes(path.read_bytes() + b"J1 torn")
        rc = main(["recover", str(path), "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"would drop 7 bytes at offset {intact}" in out
        # Dry run: the torn tail is still on disk.
        assert len(path.read_bytes()) == intact + 7

    def test_recover_truncates_at_reported_offset(self, tmp_path, capsys):
        from repro.durability import Journal

        path = tmp_path / "j.log"
        with Journal(path) as journal:
            journal.append({"op": "push", "letter": {"n": 1}})
        intact = len(path.read_bytes())
        path.write_bytes(path.read_bytes() + b"J1 torn")
        rc = main(["recover", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"dropped 7 bytes at offset {intact}" in out
        assert len(path.read_bytes()) == intact
