"""Unit tests for the Document type and loaders."""

from __future__ import annotations

import pytest

from repro.documents import (
    DirectoryLoader,
    Document,
    JsonLinesLoader,
    MarkdownLoader,
    TextLoader,
)
from repro.errors import DocumentError


class TestDocument:
    def test_doc_id_stable(self):
        a = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        b = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        assert a.doc_id == b.doc_id

    def test_doc_id_differs_by_chunk(self):
        a = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        b = Document(text="hello", metadata={"source": "x.md", "chunk": 1})
        assert a.doc_id != b.doc_id

    def test_fact_ids_parsing(self):
        d = Document(text="t", metadata={"facts": "a.b, c.d ,"})
        assert d.fact_ids() == frozenset({"a.b", "c.d"})

    def test_fact_ids_empty(self):
        assert Document(text="t").fact_ids() == frozenset()

    def test_with_metadata_copies(self):
        d = Document(text="t", metadata={"a": 1})
        d2 = d.with_metadata(b=2)
        assert d2.metadata == {"a": 1, "b": 2}
        assert d.metadata == {"a": 1}

    def test_len(self):
        assert len(Document(text="abcd")) == 4


class TestTextLoader:
    def test_loads(self, tmp_path):
        p = tmp_path / "f.txt"
        p.write_text("content here")
        docs = TextLoader(p).load()
        assert len(docs) == 1
        assert docs[0].text == "content here"
        assert docs[0].metadata["source"] == str(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DocumentError):
            TextLoader(tmp_path / "nope.txt").load()


class TestMarkdownLoader:
    def test_title_from_h1(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("# The Title\n\nBody text.\n")
        (doc,) = MarkdownLoader(p).load()
        assert doc.metadata["title"] == "The Title"

    def test_frontmatter(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("---\ntitle: Front\nlevel: beginner\n---\n# H\n\nBody.\n")
        (doc,) = MarkdownLoader(p).load()
        assert doc.metadata["title"] == "Front"
        assert doc.metadata["level"] == "beginner"
        assert "---" not in doc.text

    def test_html_comments_stripped(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("# T\n\n<!-- secret -->visible\n")
        (doc,) = MarkdownLoader(p).load()
        assert "secret" not in doc.text
        assert "visible" in doc.text


class TestJsonLinesLoader:
    def test_loads_lines(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text('{"text": "one", "sender": "x@y.z"}\n\n{"text": "two"}\n')
        docs = JsonLinesLoader(p).load()
        assert [d.text for d in docs] == ["one", "two"]
        assert docs[0].metadata["sender"] == "x@y.z"
        assert docs[0].metadata["source"].endswith("#L1")

    def test_missing_text_key(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text('{"body": "one"}\n')
        with pytest.raises(DocumentError):
            JsonLinesLoader(p).load()

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text("not json\n")
        with pytest.raises(DocumentError):
            JsonLinesLoader(p).load()


class TestDirectoryLoader:
    def test_recursive_walk(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.md").write_text("# A\n\ntext\n")
        (tmp_path / "sub" / "b.txt").write_text("b")
        (tmp_path / "skip.bin").write_bytes(b"\x00")
        docs = DirectoryLoader(tmp_path).load()
        assert len(docs) == 2

    def test_glob_filter(self, tmp_path):
        (tmp_path / "a.md").write_text("# A\n")
        (tmp_path / "b.txt").write_text("b")
        docs = DirectoryLoader(tmp_path, glob="*.md").load()
        assert len(docs) == 1

    def test_non_recursive(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.txt").write_text("b")
        docs = DirectoryLoader(tmp_path, recursive=False).load()
        assert docs == []

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(DocumentError):
            DirectoryLoader(tmp_path / "nope").load()

    def test_deterministic_order(self, tmp_path):
        for name in ("c.txt", "a.txt", "b.txt"):
            (tmp_path / name).write_text(name)
        docs = DirectoryLoader(tmp_path).load()
        assert [d.text for d in docs] == ["a.txt", "b.txt", "c.txt"]


class TestLoaderEdgeCases:
    """Degenerate inputs the ingestion lifecycle must survive: empty
    files, frontmatter-only pages, and unicode normalization forms."""

    def test_empty_text_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        (doc,) = TextLoader(p).load()
        assert doc.text == ""
        assert doc.doc_id  # identity is defined even for empty text

    def test_empty_markdown_file(self, tmp_path):
        p = tmp_path / "empty.md"
        p.write_text("")
        (doc,) = MarkdownLoader(p).load()
        assert doc.text == "\n"
        assert "title" not in doc.metadata

    def test_frontmatter_only_markdown(self, tmp_path):
        p = tmp_path / "meta.md"
        p.write_text("---\ntitle: Bare\n---\n")
        (doc,) = MarkdownLoader(p).load()
        assert doc.metadata["title"] == "Bare"
        assert doc.text == "\n"

    def test_markdown_preserves_unicode_form(self, tmp_path):
        # Loaders are byte-faithful: NFC and NFD spellings of the same
        # word stay distinct documents; only the ingest *identity* layer
        # (chunk_address) treats them as the same content.
        from repro.ingest import chunk_address

        nfc, nfd = "café", "café"
        p1, p2 = tmp_path / "nfc.md", tmp_path / "nfd.md"
        p1.write_text(f"# T\n\n{nfc}\n", encoding="utf-8")
        p2.write_text(f"# T\n\n{nfd}\n", encoding="utf-8")
        (d1,) = MarkdownLoader(p1).load()
        (d2,) = MarkdownLoader(p2).load()
        assert d1.text != d2.text
        assert d1.doc_id != d2.doc_id
        assert chunk_address(d1.text, "s.md") == chunk_address(d2.text, "s.md")

    def test_jsonl_blank_lines_only(self, tmp_path):
        p = tmp_path / "blank.jsonl"
        p.write_text("\n   \n\n")
        assert JsonLinesLoader(p).load() == []

    def test_jsonl_unicode_round_trip(self, tmp_path):
        p = tmp_path / "u.jsonl"
        p.write_text('{"text": "gro\\u00dfe Matrix"}\n', encoding="utf-8")
        (doc,) = JsonLinesLoader(p).load()
        assert doc.text == "große Matrix"

    def test_directory_loader_empty_directory(self, tmp_path):
        assert DirectoryLoader(tmp_path).load() == []
