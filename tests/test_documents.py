"""Unit tests for the Document type and loaders."""

from __future__ import annotations

import pytest

from repro.documents import (
    DirectoryLoader,
    Document,
    JsonLinesLoader,
    MarkdownLoader,
    TextLoader,
)
from repro.errors import DocumentError


class TestDocument:
    def test_doc_id_stable(self):
        a = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        b = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        assert a.doc_id == b.doc_id

    def test_doc_id_differs_by_chunk(self):
        a = Document(text="hello", metadata={"source": "x.md", "chunk": 0})
        b = Document(text="hello", metadata={"source": "x.md", "chunk": 1})
        assert a.doc_id != b.doc_id

    def test_fact_ids_parsing(self):
        d = Document(text="t", metadata={"facts": "a.b, c.d ,"})
        assert d.fact_ids() == frozenset({"a.b", "c.d"})

    def test_fact_ids_empty(self):
        assert Document(text="t").fact_ids() == frozenset()

    def test_with_metadata_copies(self):
        d = Document(text="t", metadata={"a": 1})
        d2 = d.with_metadata(b=2)
        assert d2.metadata == {"a": 1, "b": 2}
        assert d.metadata == {"a": 1}

    def test_len(self):
        assert len(Document(text="abcd")) == 4


class TestTextLoader:
    def test_loads(self, tmp_path):
        p = tmp_path / "f.txt"
        p.write_text("content here")
        docs = TextLoader(p).load()
        assert len(docs) == 1
        assert docs[0].text == "content here"
        assert docs[0].metadata["source"] == str(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DocumentError):
            TextLoader(tmp_path / "nope.txt").load()


class TestMarkdownLoader:
    def test_title_from_h1(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("# The Title\n\nBody text.\n")
        (doc,) = MarkdownLoader(p).load()
        assert doc.metadata["title"] == "The Title"

    def test_frontmatter(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("---\ntitle: Front\nlevel: beginner\n---\n# H\n\nBody.\n")
        (doc,) = MarkdownLoader(p).load()
        assert doc.metadata["title"] == "Front"
        assert doc.metadata["level"] == "beginner"
        assert "---" not in doc.text

    def test_html_comments_stripped(self, tmp_path):
        p = tmp_path / "page.md"
        p.write_text("# T\n\n<!-- secret -->visible\n")
        (doc,) = MarkdownLoader(p).load()
        assert "secret" not in doc.text
        assert "visible" in doc.text


class TestJsonLinesLoader:
    def test_loads_lines(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text('{"text": "one", "sender": "x@y.z"}\n\n{"text": "two"}\n')
        docs = JsonLinesLoader(p).load()
        assert [d.text for d in docs] == ["one", "two"]
        assert docs[0].metadata["sender"] == "x@y.z"
        assert docs[0].metadata["source"].endswith("#L1")

    def test_missing_text_key(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text('{"body": "one"}\n')
        with pytest.raises(DocumentError):
            JsonLinesLoader(p).load()

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "a.jsonl"
        p.write_text("not json\n")
        with pytest.raises(DocumentError):
            JsonLinesLoader(p).load()


class TestDirectoryLoader:
    def test_recursive_walk(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.md").write_text("# A\n\ntext\n")
        (tmp_path / "sub" / "b.txt").write_text("b")
        (tmp_path / "skip.bin").write_bytes(b"\x00")
        docs = DirectoryLoader(tmp_path).load()
        assert len(docs) == 2

    def test_glob_filter(self, tmp_path):
        (tmp_path / "a.md").write_text("# A\n")
        (tmp_path / "b.txt").write_text("b")
        docs = DirectoryLoader(tmp_path, glob="*.md").load()
        assert len(docs) == 1

    def test_non_recursive(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.txt").write_text("b")
        docs = DirectoryLoader(tmp_path, recursive=False).load()
        assert docs == []

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(DocumentError):
            DirectoryLoader(tmp_path / "nope").load()

    def test_deterministic_order(self, tmp_path):
        for name in ("c.txt", "a.txt", "b.txt"):
            (tmp_path / name).write_text(name)
        docs = DirectoryLoader(tmp_path).load()
        assert [d.text for d in docs] == ["a.txt", "b.txt", "c.txt"]
