"""Tests for the vector store, filters, and indexes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.documents import Document
from repro.embeddings import HashingEmbedding
from repro.errors import VectorStoreError
from repro.vectorstore import BruteForceIndex, IVFIndex, VectorStore, matches_where

DOCS = [
    Document(text="GMRES handles nonsymmetric systems", metadata={"doc_type": "manual_page", "n": 1}),
    Document(text="CG requires symmetric positive definite operators", metadata={"doc_type": "manual_page", "n": 2}),
    Document(text="Preallocation accelerates matrix assembly", metadata={"doc_type": "faq", "n": 3}),
    Document(text="Chebyshev avoids global reductions entirely", metadata={"doc_type": "tutorial", "n": 4}),
]


@pytest.fixture()
def small_store():
    return VectorStore.from_documents(DOCS, HashingEmbedding(dim=128))


class TestWhereFilters:
    def test_implicit_eq(self):
        assert matches_where({"a": 1}, {"a": 1})
        assert not matches_where({"a": 1}, {"a": 2})

    def test_none_matches_all(self):
        assert matches_where({}, None)

    @pytest.mark.parametrize(
        "cond,value,expected",
        [
            ({"$eq": 3}, 3, True),
            ({"$ne": 3}, 4, True),
            ({"$gt": 2}, 3, True),
            ({"$gte": 3}, 3, True),
            ({"$lt": 2}, 3, False),
            ({"$lte": 3}, 3, True),
            ({"$in": [1, 2]}, 2, True),
            ({"$nin": [1, 2]}, 3, True),
            ({"$contains": "KSP"}, "see KSPSolve", True),
        ],
    )
    def test_operators(self, cond, value, expected):
        assert matches_where({"k": value}, {"k": cond}) is expected

    def test_missing_key_comparisons(self):
        assert not matches_where({}, {"k": {"$gt": 1}})

    def test_logical_and_or_not(self):
        md = {"a": 1, "b": 2}
        assert matches_where(md, {"$and": [{"a": 1}, {"b": 2}]})
        assert matches_where(md, {"$or": [{"a": 9}, {"b": 2}]})
        assert matches_where(md, {"$not": {"a": 9}})
        assert not matches_where(md, {"$not": {"a": 1}})

    def test_unknown_operator(self):
        with pytest.raises(VectorStoreError):
            matches_where({"a": 1}, {"a": {"$weird": 1}})
        with pytest.raises(VectorStoreError):
            matches_where({"a": 1}, {"$xor": []})


class TestBruteForceIndex:
    def test_add_and_search(self):
        idx = BruteForceIndex(4, initial_capacity=2)
        vecs = np.eye(4, dtype=np.float32)
        idx.add(vecs)
        assert idx.size == 4
        found, scores = idx.search(np.array([1, 0, 0, 0], dtype=np.float32), 2)
        assert found[0] == 0
        assert scores[0] == pytest.approx(1.0)

    def test_growth_preserves_data(self):
        idx = BruteForceIndex(3, initial_capacity=1)
        for i in range(10):
            v = np.zeros(3, dtype=np.float32)
            v[i % 3] = 1.0
            idx.add(v)
        assert idx.size == 10

    def test_dim_mismatch(self):
        idx = BruteForceIndex(4)
        with pytest.raises(VectorStoreError):
            idx.add(np.ones((1, 3), dtype=np.float32))
        with pytest.raises(VectorStoreError):
            idx.search(np.ones(3, dtype=np.float32), 1)

    def test_empty_search(self):
        idx = BruteForceIndex(4)
        found, scores = idx.search(np.ones(4, dtype=np.float32), 3)
        assert len(found) == 0

    def test_matrix_view_readonly(self):
        idx = BruteForceIndex(2)
        idx.add(np.ones((1, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            idx.matrix[0, 0] = 5.0


class TestIVFIndex:
    def _vectors(self, n=200, dim=16, seed=3):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal((n, dim)).astype(np.float32)
        return v / np.linalg.norm(v, axis=1, keepdims=True)

    def test_train_and_search(self):
        vecs = self._vectors()
        idx = IVFIndex(16, n_clusters=8, nprobe=8)
        idx.add(vecs)
        idx.train()
        found, _ = idx.search(vecs[17], 1)
        assert found[0] == 17  # full probe = exact

    def test_lazy_training_on_search(self):
        vecs = self._vectors(50)
        idx = IVFIndex(16, n_clusters=4)
        idx.add(vecs)
        assert not idx.is_trained
        idx.search(vecs[0], 1)
        assert idx.is_trained

    def test_add_after_train_rejected(self):
        vecs = self._vectors(20)
        idx = IVFIndex(16, n_clusters=2)
        idx.add(vecs)
        idx.train()
        with pytest.raises(VectorStoreError):
            idx.add(vecs)

    def test_recall_vs_bruteforce(self):
        vecs = self._vectors(400)
        bf = BruteForceIndex(16)
        bf.add(vecs)
        ivf = IVFIndex(16, n_clusters=16, nprobe=6)
        ivf.add(vecs)
        ivf.train()
        rng = np.random.default_rng(5)
        hits = 0
        trials = 25
        for _ in range(trials):
            q = rng.standard_normal(16).astype(np.float32)
            q /= np.linalg.norm(q)
            exact, _ = bf.search(q, 5)
            approx, _ = ivf.search(q, 5)
            hits += len(set(exact.tolist()) & set(approx.tolist()))
        recall = hits / (trials * 5)
        assert recall >= 0.5  # approximate but not useless

    def test_train_empty_raises(self):
        with pytest.raises(VectorStoreError):
            IVFIndex(4).train()


class TestVectorStore:
    def test_from_documents_and_len(self, small_store):
        assert len(small_store) == 4

    def test_similarity_search_relevance(self, small_store):
        hits = small_store.similarity_search("symmetric positive definite CG", k=1)
        assert "CG" in hits[0].text

    def test_with_score_ordering(self, small_store):
        hits = small_store.similarity_search_with_score("matrix assembly preallocation", k=4)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_where_filter(self, small_store):
        hits = small_store.similarity_search("matrix", k=4, where={"doc_type": "faq"})
        assert all(h.metadata["doc_type"] == "faq" for h in hits)

    def test_duplicate_insert_skipped(self, small_store):
        added = small_store._add_documents([DOCS[0]])
        assert added == []
        assert len(small_store) == 4

    def test_delete_tombstones(self):
        store = VectorStore.from_documents(DOCS, HashingEmbedding(dim=128))
        n = store.delete([DOCS[0].doc_id])
        assert n == 1
        assert len(store) == 3
        hits = store.similarity_search("GMRES nonsymmetric", k=4)
        assert all("GMRES" not in h.text for h in hits)

    def test_delete_unknown_id_noop(self, small_store):
        assert small_store.delete(["doc-unknown"]) == 0

    def test_get(self, small_store):
        doc = small_store.get(DOCS[0].doc_id)
        assert doc.text == DOCS[0].text
        with pytest.raises(VectorStoreError):
            small_store.get("nope")

    def test_k_zero(self, small_store):
        assert small_store.similarity_search("x", k=0) == []

    def test_mmr_diversifies(self):
        near_dupes = [
            Document(text="GMRES restart memory tradeoff", metadata={"i": i})
            for i in range(3)
        ] + [Document(text="conjugate gradient symmetric", metadata={"i": 9})]
        store = VectorStore.from_documents(near_dupes, HashingEmbedding(dim=128))
        # near-dupes share doc_id? texts identical → same id; make unique
        assert len(store) == 2  # identical texts+no source dedupe to one
        out = store.max_marginal_relevance_search("GMRES restart", k=2, lambda_mult=0.5)
        assert len(out) == 2

    def test_mmr_invalid_lambda(self, small_store):
        with pytest.raises(VectorStoreError):
            small_store.max_marginal_relevance_search("x", lambda_mult=1.5)

    def test_persistence_roundtrip(self, tmp_path, small_store):
        d = small_store.save(tmp_path / "db")
        emb = HashingEmbedding(dim=128)
        loaded = VectorStore.load(d, emb)
        assert len(loaded) == len(small_store)
        a = small_store.similarity_search("assembly", k=2)
        b = loaded.similarity_search("assembly", k=2)
        assert [x.doc_id for x in a] == [x.doc_id for x in b]

    def test_persistence_excludes_deleted(self, tmp_path):
        store = VectorStore.from_documents(DOCS, HashingEmbedding(dim=128))
        store.delete([DOCS[1].doc_id])
        d = store.save(tmp_path / "db")
        loaded = VectorStore.load(d, HashingEmbedding(dim=128))
        assert len(loaded) == 3

    def test_load_wrong_model_rejected(self, tmp_path, small_store):
        d = small_store.save(tmp_path / "db")
        other = HashingEmbedding(dim=128, name="other-model")
        with pytest.raises(VectorStoreError):
            VectorStore.load(d, other)

    def test_load_wrong_dim_rejected(self, tmp_path, small_store):
        d = small_store.save(tmp_path / "db")
        # Same registry name but different dim.
        other = HashingEmbedding(dim=64, name=small_store.embedding.name)
        with pytest.raises(VectorStoreError):
            VectorStore.load(d, other)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_k_bounded_by_store(self, k):
        store = VectorStore.from_documents(DOCS, HashingEmbedding(dim=64))
        hits = store.similarity_search("matrix", k=k)
        assert len(hits) <= min(k, len(DOCS))
