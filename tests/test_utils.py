"""Unit tests for timing, RNG, and serialization utilities."""

from __future__ import annotations

import dataclasses
import time

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import derive_seed, rng_for, stable_hash
from repro.utils.serialization import dataclass_to_dict, dump_json, load_json
from repro.utils.timing import StageTimer, Timer, TimingStats


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first > 0.004


class TestTimingStats:
    def test_from_samples(self):
        st_ = TimingStats.from_samples([1.0, 2.0, 3.0])
        assert st_.minimum == 1.0
        assert st_.maximum == 3.0
        assert st_.average == 2.0
        assert st_.count == 3
        assert st_.total == 6.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TimingStats.from_samples([])

    def test_as_row_rounds(self):
        st_ = TimingStats.from_samples([0.4444, 3.1111])
        assert st_.as_row(2) == (0.44, 3.11, round((0.4444 + 3.1111) / 2, 2))


class TestStageTimer:
    def test_record_and_stats(self):
        t = StageTimer()
        t.record("rag", 0.5)
        t.record("rag", 1.5)
        s = t.stats("rag")
        assert s.average == 1.0

    def test_context_manager(self):
        t = StageTimer()
        with t.time("llm"):
            time.sleep(0.005)
        assert t.stats("llm").minimum >= 0.004

    def test_negative_rejected(self):
        t = StageTimer()
        with pytest.raises(ValueError):
            t.record("x", -1.0)

    def test_unknown_stage(self):
        with pytest.raises(KeyError):
            StageTimer().stats("nope")

    def test_merge(self):
        a, b = StageTimer(), StageTimer()
        a.record("s", 1.0)
        b.record("s", 3.0)
        b.record("t", 2.0)
        a.merge(b)
        assert a.stats("s").count == 2
        assert a.stats("t").count == 1
        assert a.stages() == ["s", "t"]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("KSPSolve") == stable_hash("KSPSolve")

    def test_namespace_decorrelates(self):
        assert stable_hash("x", "a") != stable_hash("x", "b")

    @given(st.text(max_size=100))
    def test_in_64bit_range(self, s):
        h = stable_hash(s)
        assert 0 <= h < (1 << 64)

    def test_derive_seed_order_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_rng_for_reproducible(self):
        a = rng_for("seed", 1).random(5)
        b = rng_for("seed", 1).random(5)
        assert (a == b).all()


@dataclasses.dataclass
class _Inner:
    x: int
    y: str


@dataclasses.dataclass
class _Outer:
    inner: _Inner
    values: list[float]
    table: dict[str, int]


class TestSerialization:
    def test_dataclass_roundtrip(self, tmp_path):
        obj = _Outer(inner=_Inner(x=1, y="a"), values=[1.5], table={"k": 2})
        path = tmp_path / "obj.json"
        dump_json(path, obj)
        loaded = load_json(path)
        assert loaded == {"inner": {"x": 1, "y": "a"}, "values": [1.5], "table": {"k": 2}}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            dataclass_to_dict(object())

    def test_tuple_becomes_list(self):
        assert dataclass_to_dict((1, 2)) == [1, 2]

    def test_none_passthrough(self):
        assert dataclass_to_dict(None) is None

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "f.json"
        dump_json(path, {"a": 1})
        assert load_json(path) == {"a": 1}
