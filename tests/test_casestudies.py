"""Tests for the paper's case studies (Figs. 7–8)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.evaluation.casestudies import (
    CASE_STUDY_1_QID,
    CASE_STUDY_2_QID,
    run_case_study,
)


class TestCaseStudies:
    def test_case_study_1_rerank_finds_ksplsqr(self, rag_pipeline, rerank_pipeline, grader):
        res = run_case_study(CASE_STUDY_1_QID, rag_pipeline, rerank_pipeline, grader)
        assert res.marker == "KSPLSQR"
        assert res.marker_in_rerank_context()
        # The shape constraint: reranking never scores below plain RAG.
        assert int(res.rerank_grade.score) >= int(res.rag_grade.score)
        assert "KSPLSQR" in res.rerank.answer

    def test_case_study_2_rerank_finds_info(self, rag_pipeline, rerank_pipeline, grader):
        res = run_case_study(CASE_STUDY_2_QID, rag_pipeline, rerank_pipeline, grader)
        assert res.marker == "-info"
        assert res.marker_in_rerank_context()
        assert int(res.rerank_grade.score) >= 3
        assert "-info" in res.rerank.answer

    def test_render_contains_both_answers(self, rag_pipeline, rerank_pipeline, grader):
        res = run_case_study(CASE_STUDY_1_QID, rag_pipeline, rerank_pipeline, grader)
        text = res.render()
        assert "LLM with RAG" in text
        assert "reranking-enhanced RAG" in text
        assert "contexts in common" in text

    def test_sources_listed(self, rag_pipeline, rerank_pipeline, grader):
        res = run_case_study(CASE_STUDY_1_QID, rag_pipeline, rerank_pipeline, grader)
        assert len(res.rag_sources) == 4
        assert len(res.rerank_sources) == 4

    def test_mode_validation(self, rag_pipeline, rerank_pipeline, grader):
        with pytest.raises(EvaluationError):
            run_case_study(CASE_STUDY_1_QID, rerank_pipeline, rag_pipeline, grader)

    def test_unknown_qid(self, rag_pipeline, rerank_pipeline, grader):
        with pytest.raises(EvaluationError):
            run_case_study("Q99", rag_pipeline, rerank_pipeline, grader)
