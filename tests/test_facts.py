"""Unit tests for the fact registry and detection semantics."""

from __future__ import annotations

import pytest

from repro.corpus.facts import Fact, Falsehood, FactRegistry, default_registry
from repro.errors import CorpusError


def make_fact(**kw):
    defaults = dict(
        fact_id="test.fact",
        statement="KSPLSQR solves rectangular least squares problems.",
        signature=("KSPLSQR", "rectangular"),
        topics=("KSPLSQR",),
    )
    defaults.update(kw)
    return Fact(**defaults)


class TestFact:
    def test_signature_must_occur_in_statement(self):
        with pytest.raises(CorpusError):
            make_fact(signature=("NotThere",))

    def test_empty_signature_rejected(self):
        with pytest.raises(CorpusError):
            make_fact(signature=())

    def test_appears_in_positive(self):
        f = make_fact()
        assert f.appears_in("Use KSPLSQR for rectangular systems.")

    def test_appears_in_case_sensitive_identifier(self):
        f = make_fact()
        assert not f.appears_in("use ksplsqr for rectangular systems.")

    def test_appears_in_word_boundary(self):
        f = make_fact(signature=("KSPLSQR",))
        assert not f.appears_in("KSPLSQRX is something else")

    def test_sentence_scoping(self):
        f = make_fact()
        # Terms split across two sentences must NOT count.
        text = "KSPLSQR is a solver. Other matrices are rectangular."
        assert not f.appears_in(text)

    def test_sentence_scoping_bullets(self):
        f = make_fact()
        text = "- KSPLSQR is a solver\n- some matrices are rectangular"
        assert not f.appears_in(text)

    def test_same_sentence_counts(self):
        f = make_fact()
        assert f.appears_in("Note that KSPLSQR handles rectangular matrices fine.")


class TestFalsehood:
    def test_fabrication_flag(self):
        x = Falsehood(
            false_id="false.x",
            statement="KSPBurb is a block Richardson method.",
            signature=("KSPBurb",),
            fabrication=True,
        )
        assert x.fabrication
        assert x.appears_in("They said KSPBurb is a block Richardson method.")

    def test_bad_signature(self):
        with pytest.raises(CorpusError):
            Falsehood(false_id="f", statement="abc", signature=("missing",))


class TestFactRegistry:
    def test_duplicate_fact_rejected(self):
        reg = FactRegistry()
        reg.add_fact(make_fact())
        with pytest.raises(CorpusError):
            reg.add_fact(make_fact())

    def test_unknown_lookup(self):
        with pytest.raises(CorpusError):
            FactRegistry().fact("nope")
        with pytest.raises(CorpusError):
            FactRegistry().falsehood("nope")

    def test_facts_in(self):
        reg = FactRegistry()
        reg.add_fact(make_fact())
        found = reg.facts_in("KSPLSQR supports rectangular matrices.")
        assert [f.fact_id for f in found] == ["test.fact"]

    def test_facts_about(self):
        reg = FactRegistry()
        reg.add_fact(make_fact())
        assert reg.facts_about("ksplsqr")
        assert not reg.facts_about("pcmg")

    def test_statement_helper(self):
        reg = FactRegistry()
        reg.add_fact(make_fact())
        assert "KSPLSQR" in reg.statement("test.fact")


class TestDefaultRegistry:
    def test_builds_without_error(self, registry):
        assert len(registry.facts) >= 80
        assert len(registry.falsehoods) >= 15

    def test_every_fact_self_detects(self, registry):
        for fact in registry.facts.values():
            assert fact.appears_in(fact.statement), fact.fact_id

    def test_every_falsehood_self_detects(self, registry):
        for f in registry.falsehoods.values():
            assert f.appears_in(f.statement), f.false_id

    def test_no_fact_triggers_falsehood(self, registry):
        """True statements must not be detected as falsehoods."""
        for fact in registry.facts.values():
            hits = registry.falsehoods_in(fact.statement)
            assert not hits, f"{fact.fact_id} triggers {[h.false_id for h in hits]}"

    def test_no_falsehood_triggers_fact(self, registry):
        """Wrong statements must not be detected as true facts."""
        for false in registry.falsehoods.values():
            hits = registry.facts_in(false.statement)
            assert not hits, f"{false.false_id} triggers {[h.fact_id for h in hits]}"

    def test_kspburb_is_fabrication(self, registry):
        assert registry.falsehood("false.kspburb").fabrication

    def test_facts_have_topics(self, registry):
        for fact in registry.facts.values():
            assert fact.topics, fact.fact_id
