"""Tests for the Discord simulation."""

from __future__ import annotations

import pytest

from repro.discordsim import (
    Button,
    ButtonStyle,
    ForumChannel,
    Gateway,
    Message,
    Server,
    TextChannel,
    User,
    Webhook,
)
from repro.discordsim.app import App
from repro.discordsim.server import DEVELOPER_ROLE, MEMBER_ROLE, Permission
from repro.errors import DiscordSimError


def msg(content="hello", author=None):
    return Message(author=author or User(name="u"), content=content)


class TestModels:
    def test_user_needs_name(self):
        with pytest.raises(DiscordSimError):
            User(name="")

    def test_snowflakes_monotonic(self):
        a, b = User(name="a"), User(name="b")
        assert b.user_id > a.user_id

    def test_button_click_and_disable(self):
        clicked = []
        b = Button(label="send", callback=lambda m, u: clicked.append(u.name))
        m = msg()
        m.buttons.append(b)
        user = User(name="dev")
        m.button("send").click(m, user)
        assert clicked == ["dev"]
        m.disable_buttons()
        with pytest.raises(DiscordSimError):
            b.click(m, user)

    def test_unknown_button(self):
        with pytest.raises(DiscordSimError):
            msg().button("nope")


class TestChannels:
    def test_text_send_and_history(self):
        ch = TextChannel(name="general")
        ch.send(msg("one"))
        ch.send(msg("two"))
        assert [m.content for m in ch.history()] == ["one", "two"]
        assert [m.content for m in ch.history(limit=1)] == ["two"]

    def test_delete_message(self):
        ch = TextChannel(name="general")
        m = ch.send(msg())
        ch.delete_message(m.message_id)
        assert ch.history() == []
        with pytest.raises(DiscordSimError):
            ch.delete_message(99999999)

    def test_forum_posts(self):
        forum = ForumChannel(name="emails")
        post = forum.create_post("Subject", msg("first"))
        post.add(msg("second"))
        assert forum.find_post_by_title("Subject") is post
        assert post.starter().content == "first"
        assert len(post.history()) == 2

    def test_forum_unknown_post(self):
        forum = ForumChannel(name="emails")
        with pytest.raises(DiscordSimError):
            forum.post(12345)

    def test_empty_title_rejected(self):
        forum = ForumChannel(name="emails")
        with pytest.raises(DiscordSimError):
            forum.create_post("", msg())


class TestServer:
    def test_membership_and_roles(self):
        srv = Server(name="PETSc")
        dev = srv.add_member(User(name="barry"), DEVELOPER_ROLE)
        assert srv.role_of(dev).permissions & Permission.MANAGE
        with pytest.raises(DiscordSimError):
            srv.add_member(dev)

    def test_privacy(self):
        srv = Server(name="PETSc")
        dev = srv.add_member(User(name="barry"), DEVELOPER_ROLE)
        member = srv.add_member(User(name="alice"), MEMBER_ROLE)
        srv.create_text_channel("private-devs", private=True)
        srv.create_text_channel("public")
        assert srv.can_view(dev, "private-devs")
        assert not srv.can_view(member, "private-devs")
        assert srv.can_view(member, "public")

    def test_duplicate_channel(self):
        srv = Server(name="PETSc")
        srv.create_text_channel("x")
        with pytest.raises(DiscordSimError):
            srv.create_forum_channel("x")

    def test_unknown_channel(self):
        srv = Server(name="PETSc")
        with pytest.raises(DiscordSimError):
            srv.text_channel("missing")


class TestWebhookGateway:
    def test_webhook_posts_and_dispatches(self):
        srv = Server(name="PETSc")
        ch = srv.create_text_channel("notify")
        gw = Gateway()
        events = []
        gw.on_message("notify", events.append)
        hook = Webhook(channel=ch, name="hook", gateway=gw)
        m = hook.execute("payload")
        assert ch.history() == [m]
        assert events and events[0].message.content == "payload"
        assert "discord.sim/api/webhooks" in hook.url

    def test_empty_payload_rejected(self):
        hook = Webhook(channel=TextChannel(name="x"))
        with pytest.raises(DiscordSimError):
            hook.execute("")

    def test_catch_all_listener(self):
        gw = Gateway()
        seen = []
        gw.on_message(None, seen.append)
        ch = TextChannel(name="any")
        gw.publish_message(ch, msg())
        assert len(seen) == 1
        assert gw.events_dispatched == 1


class TestApp:
    def _app(self):
        srv = Server(name="PETSc")
        return App(name="bot", server=srv, gateway=Gateway()), srv

    def test_app_joins_server(self):
        app, srv = self._app()
        assert app.user.user_id in srv.members
        assert app.user.bot

    def test_commands(self):
        app, _ = self._app()
        app.command("ping", "test", lambda invoker: f"pong {invoker.name}")
        out = app.invoke("ping", User(name="alice"))
        assert out == "pong alice"
        assert app.commands["ping"].invocations == 1

    def test_duplicate_command(self):
        app, _ = self._app()
        app.command("x", "d", lambda i: None)
        with pytest.raises(DiscordSimError):
            app.command("x", "d", lambda i: None)

    def test_unknown_command(self):
        app, _ = self._app()
        with pytest.raises(DiscordSimError):
            app.invoke("nope", User(name="a"))
