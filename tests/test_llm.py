"""Tests for the LLM layer: base types, tokens, latency, parametric memory."""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.llm import (
    CHAT_MODEL_NAMES,
    ChatMessage,
    LatencyEngine,
    ParametricKnowledge,
    count_tokens,
    create_chat_model,
)
from repro.llm.base import ChatModel, CompletionResult, TokenUsage


class TestChatMessage:
    def test_roles_validated(self):
        ChatMessage(role="user", content="x")
        with pytest.raises(ModelError):
            ChatMessage(role="robot", content="x")


class TestTokenUsage:
    def test_total(self):
        u = TokenUsage(prompt_tokens=10, completion_tokens=5)
        assert u.total_tokens == 15


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_scales_with_length(self):
        assert count_tokens("word " * 100) > count_tokens("word " * 10)

    def test_long_identifiers_cost_more(self):
        assert count_tokens("KSPGetConvergedReason") > 1

    @given(st.text(max_size=500))
    def test_nonnegative(self, text):
        assert count_tokens(text) >= 0


class _Dummy(ChatModel):
    name = "dummy"
    context_window = 50

    def complete(self, messages, *, ctx=None):
        self._check_messages(messages)
        return CompletionResult(text="ok", model=self.name)


class TestChatModelValidation:
    def test_empty_messages(self):
        with pytest.raises(ModelError):
            _Dummy().complete([])

    def test_assistant_last_rejected(self):
        with pytest.raises(ModelError):
            _Dummy().complete([ChatMessage(role="assistant", content="x")])

    def test_context_overflow(self):
        with pytest.raises(ModelError):
            _Dummy().complete([ChatMessage(role="user", content="word " * 200)])


class TestLatencyEngine:
    def test_zero_cost_is_fast(self):
        eng = LatencyEngine(iterations_per_token=0)
        t0 = time.perf_counter()
        eng.burn(10_000)
        assert time.perf_counter() - t0 < 0.05

    def test_burn_scales(self):
        eng = LatencyEngine(iterations_per_token=4000)
        t0 = time.perf_counter()
        eng.burn(50)
        short = time.perf_counter() - t0
        t0 = time.perf_counter()
        eng.burn(500)
        long = time.perf_counter() - t0
        assert long > short

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            LatencyEngine(iterations_per_token=-1)
        with pytest.raises(ModelError):
            LatencyEngine().burn(-1)


class TestParametricKnowledge:
    def test_deterministic(self, registry):
        a = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.5)
        b = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.5)
        assert {f.fact_id for f in a.known_facts()} == {f.fact_id for f in b.known_facts()}

    def test_rate_zero_and_one(self, registry):
        none = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.0)
        full = ParametricKnowledge(registry, model_name="m", knowledge_rate=1.0)
        assert not none.known_facts()
        assert len(full.known_facts()) == len(registry.facts)

    def test_rate_monotone(self, registry):
        lo = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.2)
        hi = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.8)
        lo_set = {f.fact_id for f in lo.known_facts()}
        hi_set = {f.fact_id for f in hi.known_facts()}
        assert lo_set <= hi_set  # same hash, higher threshold ⇒ superset

    def test_unknown_fact_is_false(self, registry):
        k = ParametricKnowledge(registry, model_name="m", knowledge_rate=1.0)
        assert not k.knows("not.a.fact")

    def test_invalid_rate(self, registry):
        with pytest.raises(ModelError):
            ParametricKnowledge(registry, model_name="m", knowledge_rate=1.5)

    def test_coin_deterministic_and_biased(self, registry):
        k = ParametricKnowledge(registry, model_name="m", knowledge_rate=0.5)
        assert k.coin("ctx", p=0.5) == k.coin("ctx", p=0.5)
        assert k.coin("anything", p=1.0)
        assert not k.coin("anything", p=0.0)

    def test_models_differ(self, registry):
        a = ParametricKnowledge(registry, model_name="a", knowledge_rate=0.4)
        b = ParametricKnowledge(registry, model_name="b", knowledge_rate=0.4)
        assert {f.fact_id for f in a.known_facts()} != {f.fact_id for f in b.known_facts()}


class TestModelRegistry:
    def test_known_models(self):
        assert "gpt-4o-sim" in CHAT_MODEL_NAMES
        assert len(CHAT_MODEL_NAMES) >= 4

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            create_chat_model("gpt-99")

    def test_stronger_models_know_more(self, registry):
        strong = create_chat_model("gpt-4o-sim", registry=registry)
        weak = create_chat_model("llama-3-8b-sim", registry=registry)
        assert len(strong.knowledge.known_facts()) > len(weak.knowledge.known_facts())

    def test_iterations_override(self, registry):
        m = create_chat_model("gpt-4o-sim", registry=registry, iterations_per_token=0)
        assert m.latency.iterations_per_token == 0
