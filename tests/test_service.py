"""The service layer: golden digest equivalence + interceptor contract.

The golden fixtures in ``fixtures/service_golden.json`` were captured
from the PRE-refactor serving code (inline engine paths) on fixed seeds.
The tests here re-run the same workloads through the interceptor chain
and assert the answers/metrics/span digests reproduce those bytes
exactly — a cross-refactor equivalence oracle, not a self-fulfilling
snapshot.  Regenerate (deliberately!) with::

    PYTHONPATH=src:. python scripts/capture_service_golden.py

The rest of the file pins the interceptor contract: chain validation
fails fast with :class:`ServiceConfigurationError`, engine-less services
serve byte-identically to direct pipeline calls, and request-lifecycle
internals stay inside ``repro.service`` (architecture conformance).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

import repro
from repro.engine import QueryEngine
from repro.errors import ReproError, ServiceConfigurationError
from repro.evaluation import krylov_benchmark, run_experiment
from repro.observability import MetricsRegistry, use_registry
from repro.service import (
    CANONICAL_CHAIN,
    AdmissionInterceptor,
    Interceptor,
    ReproService,
    default_chain,
    validate_chain,
)
from tests.golden_workloads import (
    ask_workload,
    batch_workload,
    chaos_workload,
    overload_workload,
    sharded_workload,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "fixtures" / "service_golden.json").read_text()
)


# ---------------------------------------------------------------------------
# Golden digest equivalence: chain output == pre-refactor output, byte for byte
# ---------------------------------------------------------------------------
class TestGoldenDigests:
    def test_single_requests_match_pre_refactor(self, bundle):
        assert ask_workload(bundle) == GOLDEN["ask"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batch_matches_pre_refactor(self, bundle, workers):
        assert batch_workload(bundle, workers=workers) == GOLDEN["batch"][str(workers)]

    def test_batch_digests_invariant_across_worker_counts(self):
        seen = {json.dumps(v, sort_keys=True) for v in GOLDEN["batch"].values()}
        assert len(seen) == 1

    def test_sharded_matches_pre_refactor(self, bundle):
        assert sharded_workload(bundle) == GOLDEN["sharded"]

    def test_chaos_sweep_matches_pre_refactor(self, bundle):
        assert chaos_workload(bundle) == GOLDEN["chaos"]

    def test_overload_matches_pre_refactor(self, bundle):
        assert overload_workload(bundle) == GOLDEN["overload"]


# ---------------------------------------------------------------------------
# Chain validation: malformed chains fail fast, before any request runs
# ---------------------------------------------------------------------------
class TestChainValidation:
    def test_default_chain_is_canonical_and_valid(self):
        chain = default_chain()
        assert tuple(icp.name for icp in chain) == CANONICAL_CHAIN
        validate_chain(chain)

    def test_empty_chain_rejected(self):
        with pytest.raises(ServiceConfigurationError, match="empty"):
            validate_chain([])

    @pytest.mark.parametrize("dropped", list(CANONICAL_CHAIN))
    def test_dropping_any_core_interceptor_rejected(self, dropped):
        chain = [icp for icp in default_chain() if icp.name != dropped]
        with pytest.raises(ServiceConfigurationError, match=f"missing.*{dropped}"):
            validate_chain(chain)

    def test_reordering_core_interceptors_rejected(self):
        chain = default_chain()
        chain[1], chain[2] = chain[2], chain[1]  # dedupe <-> answer-cache
        with pytest.raises(ServiceConfigurationError, match="canonical"):
            validate_chain(chain)

    def test_duplicate_interceptor_rejected(self):
        chain = default_chain() + [AdmissionInterceptor()]
        with pytest.raises(ServiceConfigurationError, match="more than once"):
            validate_chain(chain)

    def test_unnamed_interceptor_rejected(self):
        class Nameless(Interceptor):
            pass

        with pytest.raises(ServiceConfigurationError, match="non-empty"):
            validate_chain(default_chain() + [Nameless()])

    def test_service_constructor_validates_chain(self, rag_pipeline):
        chain = default_chain()
        chain.reverse()
        with pytest.raises(ServiceConfigurationError):
            ReproService.for_pipeline(rag_pipeline, chain=chain)

    def test_service_needs_exactly_one_backend(self, bundle, fast_config, rag_pipeline):
        with pytest.raises(ServiceConfigurationError, match="exactly one backend"):
            ReproService()
        engine = QueryEngine.from_corpus(bundle, fast_config)
        with pytest.raises(ServiceConfigurationError, match="exactly one backend"):
            ReproService(engine=engine, pipeline=rag_pipeline)

    def test_custom_interceptor_may_interleave(self, rag_pipeline):
        observed = []

        class Audit(Interceptor):
            name = "audit"

            def on_request(self, req, state):
                observed.append(req.question)
                return None

        chain = default_chain()
        chain.insert(1, Audit())  # between admission and dedupe
        validate_chain(chain)
        service = ReproService.for_pipeline(rag_pipeline, chain=chain)
        result = service.answer("What does KSPSolve do?")
        assert result.answer
        assert observed == ["What does KSPSolve do?"]


# ---------------------------------------------------------------------------
# Front-door semantics
# ---------------------------------------------------------------------------
class TestFrontDoor:
    def test_engine_service_is_cached_singleton(self, bundle, fast_config):
        engine = QueryEngine.from_corpus(bundle, fast_config)
        assert engine.service is engine.service
        assert engine.service.engine is engine

    def test_engineless_service_matches_direct_pipeline(self, rag_pipeline):
        service = ReproService.for_pipeline(rag_pipeline)
        question = "How do I set the KSP tolerance?"
        via_service = service.answer(question)
        direct = rag_pipeline.answer(question)
        assert via_service.answer == direct.answer
        assert via_service.mode == direct.mode

    def test_engineless_service_rejects_other_modes(self, rag_pipeline):
        service = ReproService.for_pipeline(rag_pipeline)
        with pytest.raises(ServiceConfigurationError, match="bare"):
            service.answer("What is DMDA?", mode="rag+rerank")

    def test_single_is_batch_of_one(self, bundle, fast_config):
        question = "What is the default KSP type?"
        single = QueryEngine(
            QueryEngine.from_corpus(bundle, fast_config).artifact, fast_config
        ).answer(question, mode="rag")
        batch = QueryEngine(
            QueryEngine.from_corpus(bundle, fast_config).artifact, fast_config
        ).answer_many([question], mode="rag")
        assert batch.items[0].result.answer == single.answer
        assert batch.items[0].error == ""
        assert not batch.items[0].cached

    def test_single_answer_serves_cache_hit_on_repeat(self, bundle, fast_config):
        registry = MetricsRegistry()
        engine = QueryEngine.from_corpus(bundle, fast_config)
        engine = QueryEngine(engine.artifact, fast_config, registry=registry)
        first = engine.answer("What is DMDA?", mode="rag")
        second = engine.answer("What is DMDA?", mode="rag")
        assert second.answer == first.answer
        assert registry.counter("repro.engine.answer_cache.hits").value == 1
        assert registry.counter("repro.engine.requests").value == 2

    def test_workflow_and_chatbot_route_through_service(self, bundle, fast_config):
        workflow = repro.open_workflow(fast_config, bundle=bundle, mode="rag")
        assert isinstance(workflow.service, ReproService)
        assert workflow.service.engine is workflow.engine
        system = repro.open_support_system(fast_config, bundle=bundle)
        assert isinstance(system.chatbot.service, ReproService)
        assert system.chatbot.service.engine is system.chatbot.engine

    def test_run_experiment_accepts_service_and_legacy_pipeline(
        self, bundle, fast_config, grader, rag_pipeline
    ):
        questions = krylov_benchmark()[:3]
        service = QueryEngine.from_corpus(bundle, fast_config).service
        via_service = run_experiment(service, grader, mode="rag", questions=questions)
        legacy = run_experiment(rag_pipeline, grader, questions=questions)
        assert via_service.mode == legacy.mode == "rag"
        assert via_service.scores() == legacy.scores()

    def test_evaluate_run_builds_index_exactly_once(self, bundle, fast_config, grader):
        from repro.index import builder

        # Evict the memoized artifacts so the build lands in the scoped
        # registry, then restore them so session fixtures stay warm.
        with builder._cache_lock:
            saved = dict(builder._artifacts)
            builder._artifacts.clear()
        try:
            registry = MetricsRegistry()
            with use_registry(registry):
                service = QueryEngine.from_corpus(bundle, fast_config).service
                run = run_experiment(
                    service, grader, mode="rag", questions=krylov_benchmark()[:6]
                )
            assert len(run.outcomes) == 6
            assert registry.counter("repro.index.builds").value == 1
        finally:
            with builder._cache_lock:
                builder._artifacts.update(saved)


# ---------------------------------------------------------------------------
# Architecture conformance: lifecycle internals stay inside repro.service
# ---------------------------------------------------------------------------
#: Serving internals only the service/interceptor modules may touch.
_SERVICE_ONLY = (
    r"pipeline\.answer\(",
    r"admission\.admit_(?:one|batch)\(",
    r"_answer_lru\.(?:peek|put|touch)\(",
)


def test_lifecycle_internals_confined_to_service_modules():
    src_root = Path(repro.__file__).parent
    offenders = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root)
        if rel.parts[0] == "service":
            continue
        text = path.read_text(encoding="utf-8")
        for pattern in _SERVICE_ONLY:
            for match in re.finditer(pattern, text):
                line = text.count("\n", 0, match.start()) + 1
                offenders.append(f"src/repro/{rel}:{line}: {match.group(0)}")
    assert not offenders, (
        "request-lifecycle internals leaked outside repro.service "
        "(route through ReproService instead):\n" + "\n".join(offenders)
    )
