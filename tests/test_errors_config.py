"""Tests for the error hierarchy and remaining config/module seams."""

from __future__ import annotations

import pytest

import repro.errors as errors
from repro.errors import ReproError
from repro.llm import ChatMessage, create_chat_model
from repro.prompts import RAG_PROMPT


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, ReproError), name

    def test_catching_base_catches_subsystem_errors(self):
        from repro.corpus.facts import FactRegistry

        with pytest.raises(ReproError):
            FactRegistry().fact("nope")


class TestSimulatedEdgePaths:
    @pytest.fixture(scope="class")
    def model(self, bundle, keyword_search):
        return create_chat_model(
            "gpt-4o-sim",
            registry=bundle.registry,
            known_identifiers=keyword_search.known_identifiers(),
            iterations_per_token=0,
        )

    def _complete(self, model, content):
        return model.complete([ChatMessage(role="user", content=content)]).text

    def test_vague_question_without_knowledge(self, model):
        text = self._complete(model, "### Question\n\nsome entirely unrelated topic\n")
        assert text  # vague hedge, never empty

    def test_revision_guidance_changes_answer(self, model, registry):
        from repro.prompts import REVISE_PROMPT

        ctx = registry.statement("gmres.memory_grows")
        base = self._complete(
            model, RAG_PROMPT.format(context=ctx, question="Why does GMRES memory grow?")
        )
        revised = self._complete(
            model,
            REVISE_PROMPT.format(
                guidance="mention the restart tradeoff and stagnation",
                question="Why does GMRES memory grow?",
            ),
        )
        assert revised != base

    def test_multi_turn_uses_last_user_message(self, model):
        msgs = [
            ChatMessage(role="user", content="### Question\n\nfirst question about nothing\n"),
            ChatMessage(role="assistant", content="previous answer"),
            ChatMessage(role="user", content="### Question\n\nWhat does KSPBurb do?\n"),
        ]
        out = model.complete(msgs).text
        assert "KSPBurb" in out

    def test_grounded_blend_adds_parametric_detail(self, model, registry):
        """A grounded answer may fold in confidently-known parametric
        facts beyond the context (the 'braver, not dumber' rule)."""
        ctx = registry.statement("conv.defaults")
        out = self._complete(
            model,
            RAG_PROMPT.format(
                context=ctx,
                question="What are the default tolerances and how do I change them?",
            ),
        )
        assert registry.fact("conv.defaults").appears_in(out)


class TestWorkflowConfigSurface:
    def test_retrieval_config_frozen_semantics(self):
        from repro.config import RetrievalConfig

        rc = RetrievalConfig(first_pass_k=10, final_l=5)
        rc.validate()
        assert rc.first_pass_k == 10

    def test_include_mail_archives_plumbs_through(self, bundle):
        from repro.config import RetrievalConfig, WorkflowConfig
        from repro.pipeline import build_rag_pipeline

        cfg = WorkflowConfig(
            retrieval=RetrievalConfig(include_mail_archives=True),
            iterations_per_token=0,
        )
        pipeline = build_rag_pipeline(bundle, cfg, mode="rag")
        sources = set()
        for q in ("GMRES runs out of memory on a large problem",):
            for c in pipeline.answer(q).candidates:
                sources.add(c.document.metadata.get("doc_type"))
        assert "mail_thread" in sources
