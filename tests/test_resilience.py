"""Unit and property tests for the resilience layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ResilienceConfig, WorkflowConfig
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ModelError,
    ReproError,
    TransientError,
    is_retry_safe,
)
from repro.llm.base import ChatMessage, ChatModel, CompletionResult, TokenUsage
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultConfig,
    FaultInjector,
    RetryPolicy,
)


class FakeClock:
    """Explicitly advanced monotonic clock for breaker/deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------- taxonomy
class TestErrorTaxonomy:
    def test_transient_is_retry_safe(self):
        assert is_retry_safe(TransientError("blip"))

    @pytest.mark.parametrize(
        "exc",
        [
            ReproError("base"),
            ModelError("context overflow"),
            DeadlineExceededError("budget spent"),
            CircuitOpenError("open"),
            ConfigurationError("bad"),
        ],
    )
    def test_permanent_errors_are_not_retry_safe(self, exc):
        assert not is_retry_safe(exc)

    def test_foreign_exceptions_are_never_retry_safe(self):
        assert not is_retry_safe(ValueError("bug"))
        assert not is_retry_safe(KeyboardInterrupt())

    def test_all_errors_derive_from_repro_error(self):
        for cls in (TransientError, DeadlineExceededError, CircuitOpenError):
            assert issubclass(cls, ReproError)


# ---------------------------------------------------------------- retry policy
class TestRetryPolicy:
    @given(
        st.integers(min_value=2, max_value=8),
        st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_backoff_schedule_deterministic_in_key(self, attempts, key):
        policy = RetryPolicy(max_attempts=attempts)
        assert policy.backoff_schedule(key) == policy.backoff_schedule(key)
        assert len(policy.backoff_schedule(key)) == attempts - 1

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_backoff_delays_within_jitter_envelope(self, key):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, max_delay=1.0, multiplier=2.0, jitter=0.25
        )
        for attempt, delay in enumerate(policy.backoff_schedule(key)):
            nominal = min(1.0, 0.1 * 2.0**attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_different_keys_give_different_jitter(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.25)
        assert policy.backoff_schedule("a") != policy.backoff_schedule("b")

    def test_execute_retries_transient_and_counts_attempts(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return "ok"

        outcome = RetryPolicy(max_attempts=4).execute(flaky, key=("t",))
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.backoff_total > 0
        assert len(outcome.errors) == 2

    def test_execute_does_not_retry_permanent_errors(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ModelError("overflow")

        with pytest.raises(ModelError):
            RetryPolicy(max_attempts=4).execute(broken, key=("t",))
        assert calls["n"] == 1

    def test_execute_exhaustion_reraises_last_error(self):
        calls = {"n": 0}

        def always_flaky():
            calls["n"] += 1
            raise TransientError(f"blip {calls['n']}")

        with pytest.raises(TransientError, match="blip 3"):
            RetryPolicy(max_attempts=3).execute(always_flaky, key=("t",))
        assert calls["n"] == 3

    def test_execute_sleep_callback_gets_schedule_delays(self):
        slept: list[float] = []
        policy = RetryPolicy(max_attempts=3)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return "ok"

        policy.execute(flaky, key=("s",), sleep=slept.append)
        assert slept == policy.backoff_schedule("s")[:2]

    def test_deadline_cuts_retry_loop(self):
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)

        def always_flaky():
            clock.advance(0.004)
            raise TransientError("blip")

        with pytest.raises(DeadlineExceededError):
            RetryPolicy(max_attempts=10, base_delay=0.05).execute(
                always_flaky, key=("d",), deadline=deadline
            )

    def test_expired_deadline_rejects_before_first_attempt(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            RetryPolicy().execute(lambda: "never", key=("d",), deadline=deadline)

    def test_from_config_mirrors_resilience_config(self):
        cfg = ResilienceConfig(max_attempts=7, backoff_base_seconds=0.2, jitter=0.1)
        policy = RetryPolicy.from_config(cfg)
        assert policy.max_attempts == 7
        assert policy.base_delay == 0.2
        assert policy.jitter == 0.1

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)


# ---------------------------------------------------------------- deadline
class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        assert not d.expired()
        clock.advance(0.6)
        assert d.remaining() == pytest.approx(0.4)
        d.require(0.3)
        with pytest.raises(DeadlineExceededError):
            d.require(0.5)
        clock.advance(0.5)
        assert d.expired()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)


# ---------------------------------------------------------------- breaker
class TestCircuitBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("recovery_seconds", 10.0)
        return CircuitBreaker(clock=clock, **kw)

    def test_trips_open_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        br = self._breaker(clock)
        for _ in range(2):
            br.record_failure()
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert br.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        br = self._breaker(clock)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state is BreakerState.CLOSED

    def test_open_rejects_calls_fast(self):
        clock = FakeClock()
        br = self._breaker(clock)
        for _ in range(3):
            br.record_failure()
        with pytest.raises(CircuitOpenError):
            br.call(lambda: "never")
        assert br.calls_rejected == 1

    def test_half_open_after_recovery_then_probe_closes(self):
        clock = FakeClock()
        br = self._breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(10.0)
        assert br.state is BreakerState.HALF_OPEN
        assert br.call(lambda: "probe") == "probe"
        assert br.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        br = self._breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(10.0)
        with pytest.raises(TransientError):
            br.call(self._raise_transient)
        assert br.state is BreakerState.OPEN
        assert br.times_opened == 2

    @staticmethod
    def _raise_transient():
        raise TransientError("probe blip")

    def test_permanent_errors_do_not_trip_the_breaker(self):
        clock = FakeClock()
        br = self._breaker(clock, failure_threshold=1)

        def permanent():
            raise ModelError("overflow")

        for _ in range(5):
            with pytest.raises(ModelError):
                br.call(permanent)
        assert br.state is BreakerState.CLOSED

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_state_machine_invariants(self, successes):
        """Whatever the outcome sequence, the breaker is never tripped
        while a success streak is live, and only OPEN rejects calls."""
        clock = FakeClock()
        br = self._breaker(clock, failure_threshold=3)
        streak = 0
        for ok in successes:
            state = br.state
            assert state in (BreakerState.CLOSED, BreakerState.OPEN, BreakerState.HALF_OPEN)
            if state is BreakerState.OPEN:
                with pytest.raises(CircuitOpenError):
                    br.allow()
                clock.advance(10.0)  # wait out the recovery window
                continue
            if ok:
                br.record_success()
                streak += 1
            else:
                br.record_failure()
                streak = 0
            if streak > 0 and state is not BreakerState.HALF_OPEN:
                assert br.state is not BreakerState.OPEN

    def test_from_config(self):
        cfg = ResilienceConfig(
            breaker_failure_threshold=2, breaker_recovery_seconds=5.0
        )
        br = CircuitBreaker.from_config(cfg, name="llm")
        assert br.failure_threshold == 2
        assert br.recovery_seconds == 5.0
        assert br.name == "llm"


# ---------------------------------------------------------------- fault injector
class _EchoModel(ChatModel):
    name = "echo"

    def complete(self, messages: list[ChatMessage], *, ctx=None) -> CompletionResult:
        self._check_messages(messages)
        return CompletionResult(
            text=messages[-1].content, model=self.name, usage=TokenUsage(1, 1)
        )


class TestFaultInjector:
    def test_decisions_deterministic_in_seed(self):
        cfg = FaultConfig(transient_rate=0.3, latency_spike_rate=0.2, truncation_rate=0.1)
        a = FaultInjector(7, cfg)
        b = FaultInjector(7, cfg)
        decisions_a = [a.decide("llm") for _ in range(200)]
        decisions_b = [b.decide("llm") for _ in range(200)]
        assert decisions_a == decisions_b
        assert a.schedule_digest() == b.schedule_digest()

        c = FaultInjector(8, cfg)
        assert [c.decide("llm") for _ in range(200)] != decisions_a

    def test_rates_roughly_respected(self):
        inj = FaultInjector(1, FaultConfig(transient_rate=0.25))
        kinds = [inj.decide("site") for _ in range(2000)]
        rate = kinds.count("transient") / len(kinds)
        assert 0.2 < rate < 0.3

    def test_zero_rates_never_inject(self):
        inj = FaultInjector(1, FaultConfig())
        assert all(inj.decide("s") == "ok" for _ in range(100))
        assert inj.fault_counts()["transient"] == 0

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(transient_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultConfig(transient_rate=0.6, latency_spike_rate=0.6)

    def test_wrapped_model_raises_transient(self):
        inj = FaultInjector(0, FaultConfig(transient_rate=1.0))
        model = inj.wrap_model(_EchoModel())
        with pytest.raises(TransientError):
            model.complete([ChatMessage(role="user", content="hi")])

    def test_wrapped_model_truncates(self):
        inj = FaultInjector(0, FaultConfig(truncation_rate=1.0))
        model = inj.wrap_model(_EchoModel())
        result = model.complete([ChatMessage(role="user", content="a long enough reply")])
        assert result.finish_reason == "length"
        assert len(result.text) < len("a long enough reply")

    def test_wrapped_model_latency_spike_accounted(self):
        inj = FaultInjector(
            0, FaultConfig(latency_spike_rate=1.0, latency_spike_seconds=0.5)
        )
        model = inj.wrap_model(_EchoModel())
        result = model.complete([ChatMessage(role="user", content="hi")])
        assert result.latency_seconds >= 0.5

    def test_wrap_callable_passes_through_and_injects(self):
        inj = FaultInjector(0, FaultConfig(transient_rate=1.0))
        post = inj.wrap_callable("webhook", lambda payload: payload.upper())
        with pytest.raises(TransientError):
            post("hello")
        clean = FaultInjector(0, FaultConfig())
        post = clean.wrap_callable("webhook", lambda payload: payload.upper())
        assert post("hello") == "HELLO"


# ---------------------------------------------------------------- config
class TestResilienceConfig:
    def test_defaults_validate(self):
        WorkflowConfig().validate()

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_attempts": 0},
            {"jitter": 1.0},
            {"backoff_base_seconds": 2.0, "backoff_max_seconds": 1.0},
            {"backoff_multiplier": 0.5},
            {"deadline_seconds": 0.0},
            {"breaker_failure_threshold": 0},
            {"breaker_half_open_max": 0},
        ],
    )
    def test_invalid_values_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kw).validate()
