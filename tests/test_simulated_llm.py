"""Behavioral tests for the simulated chat model.

These pin down the behavioral contract the evaluation relies on:
grounded answers assert the context facts; ungrounded questions about
unknown APIs produce fabrications; grounded ones produce refusals;
answers are deterministic.
"""

from __future__ import annotations

import pytest

from repro.llm import ChatMessage, create_chat_model
from repro.prompts import RAG_PROMPT, RAG_SYSTEM_PROMPT


@pytest.fixture(scope="module")
def model(bundle, keyword_search):
    return create_chat_model(
        "gpt-4o-sim",
        registry=bundle.registry,
        known_identifiers=keyword_search.known_identifiers(),
        iterations_per_token=0,
    )


def ask(model, question, context=None):
    if context is None:
        content = f"### Question\n\n{question}\n"
    else:
        content = RAG_PROMPT.format(context=context, question=question)
    msgs = [
        ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
        ChatMessage(role="user", content=content),
    ]
    return model.complete(msgs)


class TestGrounded:
    def test_context_fact_asserted(self, model, registry):
        stmt = registry.statement("ksplsqr.rectangular")
        res = ask(model, "Can KSP solve rectangular least squares systems?", context=stmt)
        assert registry.fact("ksplsqr.rectangular").appears_in(res.text)

    def test_no_falsehood_when_grounded(self, model, registry):
        stmt = registry.statement("gmres.memory_grows")
        res = ask(model, "Why does GMRES memory grow with iterations?", context=stmt)
        assert not registry.falsehoods_in(res.text)

    def test_refusal_for_unknown_api_with_context(self, model, registry):
        stmt = registry.statement("ksp.naming")
        res = ask(model, "What does KSPBurb do?", context=stmt)
        assert "no PETSc function" in res.text
        assert not registry.falsehoods_in(res.text)

    def test_usage_accounting(self, model):
        res = ask(model, "What is KSP?", context="KSP is the solver interface.")
        assert res.usage.prompt_tokens > 0
        assert res.usage.completion_tokens > 0
        assert res.model == "gpt-4o-sim"


class TestUngrounded:
    def test_fabricates_unknown_api(self, model, registry):
        res = ask(model, "What does KSPBurb do?")
        # The canonical KSPBurb hallucination from the paper.
        assert registry.falsehoods_in(res.text)

    def test_deterministic(self, model):
        a = ask(model, "How do I set solver tolerances?")
        b = ask(model, "How do I set solver tolerances?")
        assert a.text == b.text

    def test_known_fact_recalled(self, model, registry):
        # gpt-4o-sim parametrically knows conv.settolerances (pinned by
        # the stable hash; see test_llm.TestParametricKnowledge).
        assert model.knowledge.knows("conv.settolerances")
        res = ask(model, "How do I change the relative tolerance and maximum iterations of KSP?")
        assert registry.fact("conv.settolerances").appears_in(res.text)


class TestAnchoring:
    def test_tangential_context_degrades(self, model, registry):
        """With only irrelevant context, the model hedges instead of
        answering from its parametric knowledge at full strength."""
        tangential = registry.statement("pcgamg.amg")
        res = ask(model, "How do I change the relative tolerance for a KSP solve?",
                  context=tangential)
        unassisted = ask(model, "How do I change the relative tolerance for a KSP solve?")
        # The grounded-but-useless answer must differ from the unassisted one.
        assert res.text != unassisted.text


class TestRendering:
    def test_bullets_for_many_facts(self, model, registry):
        ctx = "\n\n".join(
            registry.statement(f)
            for f in ("conv.settolerances", "conv.defaults", "conv.monitor")
        )
        res = ask(model, "How do I control KSP tolerances and monitor the residual norm?", context=ctx)
        assert "- " in res.text  # itemized list for >= 3 facts

    def test_option_code_block(self, model, registry):
        ctx = registry.statement("conv.monitor")
        res = ask(model, "How can I print the residual norm at each iteration with -ksp_monitor?", context=ctx)
        assert "```" in res.text
