"""Tests for corpus building, chunking, and fact tagging."""

from __future__ import annotations

import pytest

from repro.corpus.builder import CorpusBuilder, chunk_corpus
from repro.corpus.model import (
    ChapterSpec,
    FaqEntry,
    MailMessageSpec,
    MailThreadSpec,
    ManualPageSpec,
    TutorialSpec,
    resolve_placeholders,
)
from repro.documents import DirectoryLoader


class TestResolvePlaceholders:
    def test_fact_substitution(self, registry):
        out = resolve_placeholders("Before. {fact:ksplsqr.rectangular} After.", registry)
        assert "KSPLSQR" in out
        assert "{fact:" not in out

    def test_false_substitution_with_and_without_prefix(self, registry):
        a = resolve_placeholders("{false:kspburb}", registry)
        b = resolve_placeholders("{false:false.kspburb}", registry)
        assert a == b
        assert "KSPBurb" in a

    def test_unknown_id_raises(self, registry):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            resolve_placeholders("{fact:does.not.exist}", registry)


class TestSpecsRender:
    def test_manual_page_structure(self, registry):
        page = ManualPageSpec(
            name="KSPFake",
            summary="A summary.",
            synopsis="void KSPFake(void);",
            description=["{fact:ksp.abstraction}"],
            options=[("-x", "an option")],
            notes=["note text"],
            see_also=["KSPSolve"],
        )
        md = page.render(registry)
        assert md.startswith("# KSPFake")
        assert "## Synopsis" in md and "## Options Database Keys" in md
        assert "Krylov" in md  # resolved fact

    def test_chapter_render(self, registry):
        chap = ChapterSpec(slug="x", title="T", intro=["i"], sections=[("## S", ["b"])])
        md = chap.render(registry)
        assert "# T" in md and "## S" in md

    def test_faq_and_tutorial_and_mail(self, registry):
        assert "## Q?" in FaqEntry(slug="s", question="Q?", answer=["a"]).render(registry)
        assert "# Tut" in TutorialSpec(slug="s", title="Tut", body=["b"]).render(registry)
        thread = MailThreadSpec(
            slug="s", subject="Subj",
            messages=[MailMessageSpec(sender="a@b.c", body=["hello"])],
        )
        md = thread.render(registry)
        assert "[petsc-users] Subj" in md and "a@b.c" in md


class TestCorpusBundle:
    def test_document_counts(self, bundle):
        assert len(bundle.manual_page_names) >= 100
        by_type = {d.metadata["doc_type"] for d in bundle.documents}
        assert by_type == {"manual_page", "manual_chapter", "faq", "tutorial", "mail_thread"}

    def test_official_excludes_mail(self, bundle):
        assert all(d.metadata["doc_type"] != "mail_thread" for d in bundle.official())
        assert len(bundle.official()) < len(bundle.documents)

    def test_manual_page_lookup(self, bundle):
        assert bundle.manual_page("KSPSolve") is not None
        assert bundle.manual_page("KSPBurb") is None

    def test_every_fact_in_official_corpus(self, bundle, registry):
        text = "\n\n".join(d.text for d in bundle.official())
        for fact in registry.facts.values():
            assert fact.appears_in(text), f"{fact.fact_id} missing from official corpus"

    def test_official_corpus_has_no_falsehoods(self, bundle, registry):
        for doc in bundle.official():
            hits = registry.falsehoods_in(doc.text)
            assert not hits, (doc.metadata["source"], [h.false_id for h in hits])


class TestChunking:
    def test_chunks_tagged_with_facts(self, bundle, chunks):
        tagged = [c for c in chunks if c.metadata.get("facts")]
        assert len(tagged) > 100

    def test_every_fact_reachable_in_some_chunk(self, bundle, chunks):
        covered: set[str] = set()
        for c in chunks:
            covered |= c.fact_ids()
        assert covered == set(bundle.registry.facts)

    def test_manual_pages_stay_whole(self, bundle, chunks):
        page_chunks = [c for c in chunks if c.metadata.get("doc_type") == "manual_page"]
        sources = [c.metadata["source"] for c in page_chunks]
        assert len(sources) == len(set(sources)), "manual pages must not be split"

    def test_include_mail_adds_falsehood_chunks(self, bundle):
        with_mail = chunk_corpus(bundle, include_mail=True)
        assert any(c.metadata.get("falsehoods") for c in with_mail)

    def test_default_chunks_have_no_falsehoods(self, chunks):
        assert not any(c.metadata.get("falsehoods") for c in chunks)

    def test_chunk_size_respected(self, bundle):
        small = chunk_corpus(bundle, chunk_size=400, chunk_overlap=50)
        non_page = [c for c in small if c.metadata.get("doc_type") != "manual_page"]
        # Section headings are prepended, so allow headroom beyond 400+50.
        assert all(len(c.text) <= 600 for c in non_page)


class TestWriteTree:
    def test_tree_roundtrip(self, tmp_path, bundle):
        root = CorpusBuilder().write_tree(tmp_path / "docs", bundle)
        assert (root / "faq.md").exists()
        assert (root / "manualpages" / "KSPSolve.md").exists()
        docs = DirectoryLoader(root, glob="*.md").load()
        assert len(docs) >= len(bundle.documents)

    def test_loaded_tree_preserves_facts(self, tmp_path, bundle, registry):
        root = CorpusBuilder().write_tree(tmp_path / "docs", bundle)
        docs = DirectoryLoader(root / "manualpages").load()
        text = "\n\n".join(d.text for d in docs)
        assert registry.fact("ksplsqr.rectangular").appears_in(text)
