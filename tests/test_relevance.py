"""Tests for the question↔fact relevance model and hallucination generator."""

from __future__ import annotations

import pytest

from repro.llm.hallucination import HallucinationGenerator
from repro.llm.relevance import RelevanceModel


@pytest.fixture(scope="module")
def rel(registry):
    return RelevanceModel(registry)


@pytest.fixture(scope="module")
def halluc(registry):
    return HallucinationGenerator(registry)


class TestRelevanceScoring:
    def test_identifier_mention_scores_high(self, rel, registry):
        fact = registry.fact("ksplsqr.rectangular")
        on = rel.score(fact, "Tell me about KSPLSQR for my problem")
        off = rel.score(fact, "Tell me about multigrid smoothers")
        assert on > off

    def test_prefix_stripped_solver_names(self, rel, registry):
        fact = registry.fact("preonly.check")
        s = rel.score(fact, "I ran with -ksp_type preonly and got a wrong answer")
        assert s > 0.9

    def test_paraphrase_without_identifiers(self, rel, registry):
        fact = registry.fact("mf.shell")
        s = rel.score(
            fact,
            "Can we solve without assembling the matrix, supplying only a routine "
            "that applies the operator?",
        )
        assert s > 0.35

    def test_generic_topic_weighs_less_than_specific(self, rel):
        assert rel.topic_weight("KSP") < rel.topic_weight("KSPLSQR")

    def test_multiword_topic_substring(self, rel, registry):
        fact = registry.fact("ksplsqr.rectangular")
        s = rel.score(fact, "how do I solve a least squares fitting problem?")
        assert s > 1.0


class TestRelevanceSelection:
    def test_select_orders_by_score(self, rel, registry):
        facts = [registry.fact("ksplsqr.rectangular"), registry.fact("pcgamg.amg")]
        picked = rel.select(facts, "Can KSPLSQR handle rectangular least squares systems?")
        assert picked[0].fact.fact_id == "ksplsqr.rectangular"

    def test_select_empty_when_nothing_relevant(self, rel, registry):
        facts = [registry.fact("pcgamg.amg")]
        assert rel.select(facts, "how do I bake sourdough bread") == []

    def test_max_facts_cap(self, rel, registry):
        facts = list(registry.facts.values())
        picked = rel.select(facts, "how do I control KSP convergence tolerances?", max_facts=3)
        assert len(picked) <= 3

    def test_relative_floor_prunes_tail(self, rel, registry):
        facts = list(registry.facts.values())
        strict = rel.select(facts, "What does KSPLSQR do?", relative=0.5)
        loose = rel.select(facts, "What does KSPLSQR do?", relative=0.0, min_score=0.35)
        assert len(strict) <= len(loose)

    def test_deterministic_tiebreak(self, rel, registry):
        facts = list(registry.facts.values())
        a = [sf.fact.fact_id for sf in rel.select(facts, "KSP tolerances?")]
        b = [sf.fact.fact_id for sf in rel.select(facts, "KSP tolerances?")]
        assert a == b


class TestHallucination:
    def test_kspburb_uses_registered_fabrication(self, halluc, registry):
        text, falsehood = halluc.fabricate("KSPBurb", model_name="gpt-4o-sim")
        assert falsehood is not None and falsehood.false_id == "false.kspburb"
        assert registry.falsehood("false.kspburb").appears_in(text)

    def test_unregistered_identifier_gets_template(self, halluc):
        text, falsehood = halluc.fabricate("KSPZorp", model_name="gpt-4o-sim")
        assert falsehood is None
        assert "KSPZorp" in text

    def test_fabrication_deterministic(self, halluc):
        a, _ = halluc.fabricate("KSPZorp", model_name="m")
        b, _ = halluc.fabricate("KSPZorp", model_name="m")
        assert a == b

    def test_topical_falsehood_matches_topic(self, halluc):
        f = halluc.topical_falsehood(
            "why does GMRES memory stay constant with restart?", model_name="m"
        )
        assert f is not None
        assert "KSPGMRES" in f.topics or "memory" in [t.lower() for t in f.topics]

    def test_topical_falsehood_none_for_offtopic(self, halluc):
        assert halluc.topical_falsehood("how do I cook pasta", model_name="m") is None

    def test_fabrications_never_returned_as_topical(self, halluc, registry):
        """Fabrication falsehoods only surface for explicitly named APIs."""
        for q in ("how do I monitor residuals?", "how do I do a direct solve?"):
            f = halluc.topical_falsehood(q, model_name="m")
            if f is not None:
                assert not f.fabrication
