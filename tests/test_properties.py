"""Cross-component property-based tests.

These pin invariants that hold for *any* input, spanning module
boundaries: retrieval consistency between stores and indexes, rerank
ordering stability, grading monotonicity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.documents import Document
from repro.embeddings import HashingEmbedding
from repro.evaluation import BenchmarkQuestion, Score
from repro.rerank import FlashrankLiteReranker
from repro.retrieval import BM25Retriever
from repro.retrieval.base import RetrievedDocument
from repro.vectorstore import VectorStore

_WORDS = st.sampled_from(
    "gmres cg restart memory matrix vector solver preconditioner residual "
    "tolerance iteration parallel krylov assembly nullspace chebyshev".split()
)
_SENTENCE = st.lists(_WORDS, min_size=3, max_size=15).map(" ".join)
_DOCSET = st.lists(_SENTENCE, min_size=2, max_size=8, unique=True)


class TestRetrievalProperties:
    @given(_DOCSET, _SENTENCE)
    @settings(max_examples=25, deadline=None)
    def test_vector_scores_sorted_descending(self, texts, query):
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        store = VectorStore.from_documents(docs, HashingEmbedding(dim=64))
        hits = store.similarity_search_with_score(query, k=len(docs))
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    @given(_DOCSET, _SENTENCE)
    @settings(max_examples=25, deadline=None)
    def test_bm25_self_retrieval(self, texts, query):
        """A document is always retrievable by its own full text."""
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        r = BM25Retriever(docs)
        target = docs[0]
        hits = r.retrieve(target.text, k=len(docs))
        assert any(h.doc_id == target.doc_id for h in hits)

    @given(_DOCSET, _SENTENCE, st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_topk_prefix_property(self, texts, query, k):
        """top-k is always a prefix of top-(k+1)."""
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        store = VectorStore.from_documents(docs, HashingEmbedding(dim=64))
        small = [h.doc_id for h in store.similarity_search(query, k=k)]
        big = [h.doc_id for h in store.similarity_search(query, k=k + 1)]
        assert big[: len(small)] == small


class TestRerankProperties:
    @given(_DOCSET, _SENTENCE)
    @settings(max_examples=25, deadline=None)
    def test_rerank_is_permutation_prefix(self, texts, query):
        """Reranking returns a subset of its candidates, no inventions."""
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        hits = [RetrievedDocument(document=d, score=0.5, origin="v") for d in docs]
        rr = FlashrankLiteReranker(docs)
        out = rr.rerank(query, hits, top_n=3)
        in_ids = {h.doc_id for h in hits}
        assert all(r.doc_id in in_ids for r in out)
        assert len({r.doc_id for r in out}) == len(out)

    @given(_DOCSET, _SENTENCE)
    @settings(max_examples=25, deadline=None)
    def test_rerank_scores_descending(self, texts, query):
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        hits = [RetrievedDocument(document=d, score=0.5, origin="v") for d in docs]
        out = FlashrankLiteReranker(docs).rerank(query, hits, top_n=len(docs))
        scores = [r.rerank_score for r in out]
        assert scores == sorted(scores, reverse=True)


class TestGradingProperties:
    def _question(self):
        return BenchmarkQuestion(
            qid="QP", text="rectangular least squares?",
            key_facts=("ksplsqr.rectangular", "ksplsqr.no_invert"),
            extra_facts=("ksplsqr.normal_equiv",),
        )

    def test_adding_true_facts_never_lowers_score(self, grader, registry):
        """Grading is monotone in correct content (absent falsehoods)."""
        q = self._question()
        fact_ids = ["ksplsqr.rectangular", "ksplsqr.no_invert", "ksplsqr.normal_equiv"]
        prev = Score.NONSENSICAL
        answer = ""
        for fid in fact_ids:
            answer += "\n\n" + registry.statement(fid)
            score = grader.grade(q, answer).score
            assert score >= prev
            prev = score

    def test_adding_falsehood_never_raises_score(self, grader, registry):
        q = self._question()
        good = "\n\n".join(registry.statement(f) for f in q.key_facts)
        bad = good + "\n\n" + registry.falsehood("false.lsqr_square_only").statement
        assert grader.grade(q, bad).score <= grader.grade(q, good).score

    @given(st.text(max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_grader_total_on_arbitrary_text(self, grader, text):
        """The grader never crashes and always returns a rubric score."""
        q = self._question()
        score = grader.grade(q, text).score
        assert 0 <= int(score) <= 4


class TestEmbeddingStoreConsistency:
    @given(_DOCSET)
    @settings(max_examples=20, deadline=None)
    def test_store_search_matches_manual_topk(self, texts):
        docs = [Document(text=t, metadata={"source": str(i)}) for i, t in enumerate(texts)]
        emb = HashingEmbedding(dim=64)
        store = VectorStore.from_documents(docs, emb)
        query = texts[0]
        hits = store.similarity_search_with_score(query, k=len(docs))
        # Manual computation over the same embeddings.
        mat = emb.embed_documents([d.text for d in docs])
        q = emb.embed_query(query)
        manual = sorted((float(mat[i] @ q) for i in range(len(docs))), reverse=True)
        got = [s for _, s in hits]
        # Tolerance, not rounding: the store scores via one vectorized
        # float32 matrix product while this recomputes row-wise dots,
        # and the two accumulation orders/precisions can straddle any
        # fixed rounding boundary.
        assert got == pytest.approx(manual[: len(got)], abs=1e-5)
