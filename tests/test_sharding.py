"""Tests for the sharded index: planner, scatter-gather store, engine."""

from __future__ import annotations

import pytest

from repro.api import open_engine
from repro.config import ReproConfig, RetrievalConfig, ShardingConfig
from repro.corpus.builder import CorpusBundle
from repro.documents import Document
from repro.embeddings import HashingEmbedding
from repro.engine import QueryEngine, ShardedQueryEngine
from repro.errors import ConfigurationError, VectorStoreError
from repro.index import (
    ShardedIndexArtifact,
    build_sharded_index,
    clear_index_cache,
    composite_digest,
    get_or_build_sharded_index,
    plan_shards,
)
from repro.observability import MetricsRegistry, use_registry
from repro.vectorstore import (
    ShardedVectorStore,
    VectorStore,
    shard_for_document,
    shard_for_source,
)


def _cfg(num_shards, *, embedding="petsc-embed-large", scatter_workers=0):
    return ReproConfig(
        iterations_per_token=0,
        retrieval=RetrievalConfig(embedding_model=embedding),
        sharding=ShardingConfig(
            num_shards=num_shards, scatter_workers=scatter_workers
        ),
    )


class TestPlanner:
    def test_partition_is_complete_and_disjoint(self, bundle):
        plan = plan_shards(bundle, _cfg(4))
        assert plan.num_shards == 4
        total = sum(len(s.bundle.documents) for s in plan.shards)
        assert total == len(bundle.documents)
        all_ids = [d.doc_id for s in plan.shards for d in s.bundle.documents]
        assert len(all_ids) == len(set(all_ids))
        pages = sum(len(s.bundle.manual_page_names) for s in plan.shards)
        assert pages == len(bundle.manual_page_names)

    def test_plan_is_deterministic(self, bundle):
        a = plan_shards(bundle, _cfg(4))
        b = plan_shards(bundle, _cfg(4))
        assert [s.digest for s in a.shards] == [s.digest for s in b.shards]
        assert a.composite == b.composite

    def test_routing_is_stable_by_source(self):
        doc = Document(text="x", metadata={"source": "docs/ksp.md"})
        assert shard_for_document(doc, 8) == shard_for_source("docs/ksp.md", 8)
        # Content edits never move a document to another shard.
        edited = Document(text="y", metadata={"source": "docs/ksp.md"})
        assert shard_for_document(edited, 8) == shard_for_document(doc, 8)

    def test_composite_digest_is_order_independent(self):
        assert composite_digest(["b", "a"]) == composite_digest(["a", "b"])
        assert composite_digest(["a"]) != composite_digest(["a", "b"])

    def test_corpus_free_scope_isolates_shards(self, bundle):
        plan = plan_shards(bundle, _cfg(4, embedding="petsc-embed-small"))
        assert plan.embedding_scope == "corpus-free"
        # Corpus-fitted models fold the global corpus digest into every
        # shard fingerprint instead (any edit dirties all shards).
        fitted = plan_shards(bundle, _cfg(4))
        assert fitted.embedding_scope != "corpus-free"

    def test_zero_shards_rejected(self, bundle):
        from repro.errors import IndexBuildError

        with pytest.raises(IndexBuildError):
            plan_shards(bundle, ReproConfig())


class TestShardedStore:
    def _docs(self, n=12):
        return [
            Document(text=f"krylov method number {i} gmres", metadata={"source": f"d{i}"})
            for i in range(n)
        ]

    def _sharded(self, docs, num_shards=3):
        emb = HashingEmbedding(dim=32)
        buckets = [[] for _ in range(num_shards)]
        for d in docs:
            buckets[shard_for_document(d, num_shards)].append(d)
        shards = [VectorStore.from_documents(b, emb) for b in buckets]
        return ShardedVectorStore(shards, emb)

    def test_merge_is_partition_invariant(self):
        # Identical results for every shard count — and score-for-score
        # agreement with the monolithic store (document identity can
        # differ from monolithic only inside an exact score tie at the
        # k boundary, where monolithic breaks by insertion order and the
        # merge breaks by doc id).
        docs = self._docs()
        emb = HashingEmbedding(dim=32)
        mono = VectorStore.from_documents(docs, emb)
        for k in (1, 3, 5, len(docs)):
            m = mono.similarity_search_with_score("krylov gmres", k=k)
            results = [
                self._sharded(docs, num_shards=n).similarity_search_with_score(
                    "krylov gmres", k=k
                )
                for n in (1, 2, 3, 6)
            ]
            first = [(d.doc_id, round(sc, 9)) for d, sc in results[0]]
            for other in results[1:]:
                assert [(d.doc_id, round(sc, 9)) for d, sc in other] == first
            assert [round(sc, 9) for _, sc in m] == [sc for _, sc in first]

    def test_merge_tie_break_is_doc_id(self):
        # Two identical texts in different shards: equal scores, so the
        # merged order must come from the doc-id tie-break, not shard
        # order or insertion order.
        emb = HashingEmbedding(dim=32)
        a = Document(text="gmres restart", metadata={"source": "aaa"})
        b = Document(text="gmres restart", metadata={"source": "zzz"})
        store = ShardedVectorStore(
            [VectorStore.from_documents([b], emb), VectorStore.from_documents([a], emb)],
            emb,
        )
        hits = store.similarity_search_with_score("gmres restart", k=2)
        assert [d.doc_id for d, _ in hits] == sorted(d.doc_id for d in (a, b))

    def test_add_documents_routes_by_shard(self):
        docs = self._docs(6)
        sharded = self._sharded(docs, num_shards=3)
        before = [len(s) for s in sharded.shards]
        extra = Document(text="new cg note", metadata={"source": "d0"})
        ids = sharded._add_documents([extra])
        assert ids == [extra.doc_id]
        target = shard_for_document(extra, 3)
        after = [len(s) for s in sharded.shards]
        assert after[target] == before[target] + 1
        assert sum(after) == sum(before) + 1

    def test_fork_isolates_parent(self):
        sharded = self._sharded(self._docs(6))
        fork = sharded.fork()
        fork._add_documents([Document(text="child only", metadata={"source": "d0"})])
        assert len(fork) == len(sharded) + 1

    def test_add_documents_routes_by_shard_after_fork(self):
        # The fork must keep routing writes by the planner hash — a fork
        # that collapsed shard identity would corrupt partition
        # invariance for every later query.
        sharded = self._sharded(self._docs(6))
        fork = sharded.fork()
        extra = Document(text="routed after fork", metadata={"source": "d5"})
        target = shard_for_document(extra, 3)
        before = [len(s) for s in fork.shards]
        fork._add_documents([extra])
        after = [len(s) for s in fork.shards]
        assert after[target] == before[target] + 1
        assert sum(after) == sum(before) + 1
        assert fork.get(extra.doc_id).text == "routed after fork"

    def test_get_and_delete_work_cross_shard(self):
        docs = self._docs(9)
        sharded = self._sharded(docs, num_shards=3)
        # get() finds documents regardless of which shard holds them.
        for doc in docs:
            assert sharded.get(doc.doc_id).doc_id == doc.doc_id
        with pytest.raises(VectorStoreError):
            sharded.get("no-such-id")
        # One delete call spanning several shards removes them all.
        victims = [docs[0], docs[4], docs[7]]
        assert len({shard_for_document(d, 3) for d in victims}) > 1
        deleted = sharded.delete([d.doc_id for d in victims])
        assert deleted == 3
        assert len(sharded) == len(docs) - 3
        for doc in victims:
            with pytest.raises(VectorStoreError):
                sharded.get(doc.doc_id)

    def test_fetch_doubling_terminates_on_whole_shard_tie(self):
        # Every document in the shard scores identically, so the fetch
        # boundary never strictly separates: the loop must exit via the
        # exhaustion branch, not spin doubling forever.
        from repro.vectorstore.sharded import _shard_top_k

        emb = HashingEmbedding(dim=32)
        docs = [
            Document(text="identical text", metadata={"source": f"tie{i}"})
            for i in range(5)
        ]
        store = VectorStore.from_documents(docs, emb)
        qvec = emb.embed_query("identical text")
        hits = _shard_top_k(store, qvec, 2, None)
        assert len(hits) == 2
        # All scores tie, so the winners are the lowest doc ids.
        assert [d.doc_id for d, _ in hits] == sorted(d.doc_id for d in docs)[:2]

    def test_save_load_unsupported(self, tmp_path):
        sharded = self._sharded(self._docs(3))
        with pytest.raises(VectorStoreError):
            sharded.save(tmp_path)
        with pytest.raises(VectorStoreError):
            ShardedVectorStore.load(tmp_path, HashingEmbedding(dim=32))


class TestShardedBuild:
    def test_build_produces_composite_artifact(self, bundle):
        art = build_sharded_index(bundle, _cfg(4))
        assert isinstance(art, ShardedIndexArtifact)
        assert art.num_shards == 4
        assert art.digest == composite_digest([s.digest for s in art.shards])
        assert len(art.chunks) == sum(len(s.chunks) for s in art.shards)
        rows = art.shard_summaries()
        assert [r["shard"] for r in rows] == [0, 1, 2, 3]
        assert all(r["vectors"] == r["chunks"] for r in rows)

    def test_get_or_build_hits_composite_cache(self, bundle):
        cfg = _cfg(2)
        a = get_or_build_sharded_index(bundle, cfg)
        b = get_or_build_sharded_index(bundle, cfg)
        assert b is a

    def test_one_document_edit_rebuilds_one_shard(self, bundle, tmp_path):
        cfg = _cfg(4, embedding="petsc-embed-small")
        with use_registry(MetricsRegistry()):
            build_sharded_index(bundle, cfg, cache_dir=tmp_path)
        docs = list(bundle.documents)
        docs[0] = Document(
            text=docs[0].text + "\nedited", metadata=dict(docs[0].metadata)
        )
        edited = CorpusBundle(
            registry=bundle.registry,
            documents=docs,
            manual_page_names=dict(bundle.manual_page_names),
        )
        clear_index_cache()
        reg = MetricsRegistry()
        with use_registry(reg):
            build_sharded_index(edited, cfg, cache_dir=tmp_path)
        assert reg.counter("repro.shard.builds").value == 1
        assert reg.counter("repro.shard.disk_hits").value == 3


class TestShardedEngine:
    def test_open_engine_picks_sharded(self, bundle):
        engine = open_engine(_cfg(2), bundle=bundle)
        assert isinstance(engine, ShardedQueryEngine)
        assert engine.num_shards == 2
        mono = open_engine(_cfg(0), bundle=bundle)
        assert isinstance(mono, QueryEngine)
        assert not isinstance(mono, ShardedQueryEngine)

    def test_answers_match_across_shard_counts(self, bundle):
        q = "How do I change the GMRES restart length?"
        answers = {
            n: open_engine(_cfg(n), bundle=bundle).answer(q).answer
            for n in (0, 1, 2, 4)
        }
        assert len(set(answers.values())) == 1

    def test_scatter_span_appears_in_trace(self, bundle):
        engine = open_engine(_cfg(2), bundle=bundle)
        result = engine.answer("What is the default KSP type?")
        assert result.trace is not None
        assert "scatter" in result.trace.span_counts()

    def test_shard_summary(self, bundle):
        engine = open_engine(_cfg(2), bundle=bundle)
        summary = engine.shard_summary()
        assert summary["num_shards"] == 2
        assert len(summary["shards"]) == 2
        assert summary["composite_digest"] == engine.artifact.digest

    def test_sharded_engine_rejects_monolithic_artifact(self, bundle):
        mono = open_engine(_cfg(0), bundle=bundle)
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(mono.artifact, _cfg(2))

    def test_from_corpus_requires_shards(self, bundle):
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine.from_corpus(bundle, _cfg(0))


class TestShardingConfig:
    def test_validate_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ShardingConfig(num_shards=-1).validate()
        with pytest.raises(ConfigurationError):
            ShardingConfig(build_workers=0).validate()
        with pytest.raises(ConfigurationError):
            ShardingConfig(scatter_workers=-2).validate()
        ShardingConfig(num_shards=0, scatter_workers=0).validate()
