"""Fixed serving workloads whose digests pin the request lifecycle.

Every workload here is a pure function of (corpus bundle, fixed seeds)
— no wall-clock, no ambient registry leakage — so its digests are
byte-comparable across processes and across refactors.  The capture
script ``scripts/capture_service_golden.py`` ran these against the
*pre-service* engine (hand-woven ``QueryEngine.answer`` /
``answer_many``) and froze the digests into
``tests/fixtures/service_golden.json``; ``tests/test_service.py`` runs
the same functions against the interceptor-chain service and asserts
equality.  A mismatch means the lifecycle refactor changed observable
behaviour — which the digest-stability contract (DESIGN.md §12) forbids.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.config import ShardingConfig, WorkflowConfig
from repro.engine import QueryEngine, ShardedQueryEngine
from repro.evaluation.benchmark import krylov_benchmark
from repro.evaluation.chaos import _run_overload_phase, run_chaos_experiment
from repro.index import get_or_build_index
from repro.observability import MetricsRegistry
from repro.resilience import FaultConfig

#: Mirrors tests/test_engine.py: small, with one duplicate for dedupe.
QUESTIONS = [
    "What does KSPSolve do?",
    "How do I set the KSP tolerance?",
    "What is DMDA?",
    "What does KSPSolve do?",  # duplicate, exercises dedupe + answer cache
    "How do I monitor the residual?",
    "What is the default KSP type?",
]


def _sha(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode()
    ).hexdigest()


def _fast_config(**kwargs) -> WorkflowConfig:
    return WorkflowConfig(iterations_per_token=0, **kwargs)


def ask_workload(bundle) -> dict:
    """Sequential ``answer()`` calls: answers + spans + metric totals.

    The duplicate question is an answer-cache hit, so the workload pins
    the hit/miss counters and the replayed no-llm span shape too.
    """
    cfg = _fast_config()
    artifact = get_or_build_index(bundle, cfg)  # outside the registry
    registry = MetricsRegistry()
    engine = QueryEngine(artifact, cfg, registry=registry)
    answers, spans = [], []
    for question in QUESTIONS:
        result = engine.answer(question, mode="rag")
        answers.append(
            [
                result.question,
                result.answer,
                result.attempts,
                [str(e) for e in result.degraded],
            ]
        )
        spans.append(
            result.trace.structure_digest() if result.trace is not None else ""
        )
    return {
        "answers": _sha(answers),
        "spans": _sha(spans),
        "metrics": registry.digest(),
    }


def batch_workload(bundle, workers: int) -> dict:
    """``answer_many`` from a cold cache at a given worker count."""
    cfg = _fast_config()
    artifact = get_or_build_index(bundle, cfg)
    registry = MetricsRegistry()
    engine = QueryEngine(artifact, cfg, registry=registry)
    batch = engine.answer_many(QUESTIONS, mode="rag", workers=workers, seed=7)
    return {
        "answers": batch.answers_digest(),
        "spans": batch.span_digest(),
        "metrics": registry.digest(),
    }


def sharded_workload(bundle) -> dict:
    """The same batch through a 2-shard scatter-gather engine."""
    cfg = _fast_config(sharding=ShardingConfig(num_shards=2))
    registry = MetricsRegistry()
    engine = ShardedQueryEngine.from_corpus(bundle, cfg, registry=registry)
    batch = engine.answer_many(QUESTIONS, mode="rag", workers=2, seed=7)
    return {
        "answers": batch.answers_digest(),
        "spans": batch.span_digest(),
        "metrics": registry.digest(),
    }


def chaos_workload(bundle) -> dict:
    """Seeded fault injection over a benchmark slice (cache disabled)."""
    run = run_chaos_experiment(
        bundle,
        _fast_config(),
        seed=3,
        fault_config=FaultConfig(
            transient_rate=0.3, latency_spike_rate=0.1, truncation_rate=0.1
        ),
        mode="rag+rerank",
        questions=krylov_benchmark()[:10],
    )
    return {
        "results": run.results_digest(),
        "schedule": run.schedule_digest,
        "answered": run.answered_count,
    }


def overload_workload(bundle) -> dict:
    """A 4x burst through the admission ladder (sheds, queues, AIMD)."""
    outcome = _run_overload_phase(
        bundle,
        _fast_config(),
        seed=11,
        factor=4,
        questions=krylov_benchmark()[:4],
        mode="rag+rerank",
    )
    return asdict(outcome)


def capture_all(bundle) -> dict:
    """Every golden workload, in a fixed order."""
    return {
        "ask": ask_workload(bundle),
        "batch": {
            str(workers): batch_workload(bundle, workers) for workers in (1, 2, 4)
        },
        "sharded": sharded_workload(bundle),
        "chaos": chaos_workload(bundle),
        "overload": overload_workload(bundle),
    }
