"""Unit and property tests for the embedding models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import (
    EMBEDDING_MODEL_NAMES,
    HashingEmbedding,
    TfidfEmbedding,
    cosine_similarity_matrix,
    create_embedding_model,
    top_k_indices,
)
from repro.errors import EmbeddingError

CORPUS = [
    "GMRES is a Krylov method for nonsymmetric systems",
    "Conjugate gradient requires symmetric positive definite matrices",
    "Preallocation makes matrix assembly fast",
    "The Chebyshev iteration avoids global reductions",
]


class TestHashingEmbedding:
    def test_shape_and_dtype(self):
        emb = HashingEmbedding(dim=64)
        mat = emb.embed_documents(CORPUS)
        assert mat.shape == (4, 64)
        assert mat.dtype == np.float32

    def test_rows_normalized(self):
        emb = HashingEmbedding(dim=64)
        mat = emb.embed_documents(CORPUS)
        norms = np.linalg.norm(mat, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_deterministic(self):
        a = HashingEmbedding(dim=64).embed_documents(CORPUS)
        b = HashingEmbedding(dim=64).embed_documents(CORPUS)
        assert np.array_equal(a, b)

    def test_query_matches_self(self):
        emb = HashingEmbedding(dim=256)
        docs = emb.embed_documents(CORPUS)
        q = emb.embed_query(CORPUS[0])
        sims = docs @ q
        assert int(np.argmax(sims)) == 0

    def test_empty_text_is_zero_vector(self):
        emb = HashingEmbedding(dim=64)
        mat = emb.embed_documents(["", "word"])
        assert np.allclose(mat[0], 0.0)

    def test_empty_list(self):
        emb = HashingEmbedding(dim=64)
        assert emb.embed_documents([]).shape == (0, 64)

    def test_invalid_inputs(self):
        emb = HashingEmbedding(dim=64)
        with pytest.raises(EmbeddingError):
            emb.embed_documents("not a list")  # type: ignore[arg-type]
        with pytest.raises(EmbeddingError):
            emb.embed_documents([1])  # type: ignore[list-item]

    def test_invalid_params(self):
        with pytest.raises(EmbeddingError):
            HashingEmbedding(dim=4)
        with pytest.raises(EmbeddingError):
            HashingEmbedding(ngram_max=0)

    @given(st.lists(st.text(max_size=80), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_norm_at_most_one(self, texts):
        emb = HashingEmbedding(dim=32)
        mat = emb.embed_documents(texts)
        norms = np.linalg.norm(mat, axis=1)
        assert np.all(norms <= 1.0 + 1e-5)


class TestTfidfEmbedding:
    def test_requires_fit(self):
        emb = TfidfEmbedding(dim=64)
        with pytest.raises(EmbeddingError):
            emb.embed_documents(["x"])

    def test_fit_and_embed(self):
        emb = TfidfEmbedding(dim=64).fit(CORPUS)
        assert emb.is_fitted
        assert emb.vocabulary_size() > 10
        mat = emb.embed_documents(CORPUS)
        assert mat.shape == (4, 64)

    def test_fit_empty_raises(self):
        with pytest.raises(EmbeddingError):
            TfidfEmbedding().fit([])

    def test_self_similarity_highest(self):
        emb = TfidfEmbedding(dim=256).fit(CORPUS)
        docs = emb.embed_documents(CORPUS)
        for i in range(len(CORPUS)):
            sims = docs @ emb.embed_query(CORPUS[i])
            assert int(np.argmax(sims)) == i

    def test_oov_only_query_is_zero(self):
        emb = TfidfEmbedding(dim=64).fit(CORPUS)
        q = emb.embed_query("zzz qqq www")
        assert np.allclose(q, 0.0)

    def test_deterministic_across_instances(self):
        a = TfidfEmbedding(dim=64).fit(CORPUS).embed_documents(CORPUS)
        b = TfidfEmbedding(dim=64).fit(CORPUS).embed_documents(CORPUS)
        assert np.array_equal(a, b)


class TestRegistry:
    def test_names(self):
        assert "petsc-embed-large" in EMBEDDING_MODEL_NAMES

    def test_large_requires_corpus(self):
        with pytest.raises(EmbeddingError):
            create_embedding_model("petsc-embed-large")

    def test_small_and_mini(self):
        small = create_embedding_model("petsc-embed-small")
        mini = create_embedding_model("petsc-embed-mini")
        assert small.dim > mini.dim

    def test_unknown(self):
        with pytest.raises(EmbeddingError):
            create_embedding_model("nope")


class TestSimilarity:
    def test_cosine_self_is_one(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        sims = cosine_similarity_matrix(a, a)
        assert np.allclose(np.diag(sims), 1.0)

    def test_orthogonal_is_zero(self):
        a = np.array([[1.0, 0.0]], dtype=np.float32)
        b = np.array([[0.0, 1.0]], dtype=np.float32)
        assert abs(cosine_similarity_matrix(a, b)[0, 0]) < 1e-6

    def test_dim_mismatch(self):
        with pytest.raises(EmbeddingError):
            cosine_similarity_matrix(np.ones((1, 2)), np.ones((1, 3)))

    def test_zero_vector_safe(self):
        a = np.zeros((1, 4), dtype=np.float32)
        sims = cosine_similarity_matrix(a, np.ones((1, 4), dtype=np.float32))
        assert np.isfinite(sims).all()

    def test_top_k_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_top_k_exceeds_length(self):
        assert len(top_k_indices(np.array([1.0, 2.0]), 10)) == 2

    def test_top_k_zero(self):
        assert len(top_k_indices(np.array([1.0]), 0)) == 0

    def test_top_k_tie_break_deterministic(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert top_k_indices(scores, 2).tolist() == [0, 1]

    def test_top_k_rejects_2d(self):
        with pytest.raises(EmbeddingError):
            top_k_indices(np.ones((2, 2)), 1)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_top_k_returns_maxima(self, values, k):
        scores = np.array(values)
        idx = top_k_indices(scores, k)
        got = sorted(scores[idx].tolist(), reverse=True)
        want = sorted(values, reverse=True)[: len(idx)]
        assert got == want
