"""The engine layer: shared caches, batched serving, digest stability."""

from __future__ import annotations

import json

import pytest

from repro.config import EngineConfig, WorkflowConfig
from repro.engine import LRUCache, QueryEngine
from repro.errors import ConfigurationError
from repro.index import clear_index_cache, get_or_build_index
from repro.observability import MetricsRegistry, use_registry

QUESTIONS = [
    "What does KSPSolve do?",
    "How do I set the KSP tolerance?",
    "What is DMDA?",
    "What does KSPSolve do?",  # duplicate, exercises batch dedupe
    "How do I monitor the residual?",
    "What is the default KSP type?",
]


@pytest.fixture(scope="module")
def artifact(bundle, fast_config):
    return get_or_build_index(bundle, fast_config)


def fresh_engine(artifact, fast_config, **kwargs):
    return QueryEngine(artifact, fast_config, **kwargs)


class TestLRUCache:
    def test_eviction_is_lru(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.touch("a")  # b is now least recent
        c.put("c", 3)
        assert "a" in c and "c" in c and "b" not in c

    def test_capacity_zero_disables(self):
        c = LRUCache(0)
        c.put("a", 1)
        assert len(c) == 0
        assert c.peek("a") is None

    def test_peek_does_not_reorder(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.peek("a")  # must NOT refresh "a"
        c.put("c", 3)
        assert "a" not in c

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestSequentialAnswer:
    def test_answer_matches_pipeline_answer(self, artifact, fast_config):
        engine = fresh_engine(artifact, fast_config, registry=MetricsRegistry())
        direct = engine.pipeline("rag+rerank").answer(QUESTIONS[0])
        via_engine = fresh_engine(
            artifact, fast_config, registry=MetricsRegistry()
        ).answer(QUESTIONS[0])
        assert via_engine.answer == direct.answer
        assert via_engine.mode == direct.mode

    def test_answer_cache_hit_skips_llm_span(self, artifact, fast_config):
        reg = MetricsRegistry()
        engine = fresh_engine(artifact, fast_config, registry=reg)
        first = engine.answer(QUESTIONS[0])
        second = engine.answer(QUESTIONS[0])
        assert second.answer == first.answer
        assert first.trace.find("llm"), "miss must run the llm stage"
        assert second.trace.find("llm") == [], "hit must not re-run the llm"
        assert any(e.name == "cache:answer-hit" for e in second.trace.root.events)
        assert reg.counter("repro.engine.answer_cache.hits").value == 1
        assert reg.counter("repro.engine.answer_cache.misses").value == 1

    def test_modes_are_cached_separately(self, artifact, fast_config):
        reg = MetricsRegistry()
        engine = fresh_engine(artifact, fast_config, registry=reg)
        engine.answer(QUESTIONS[0], mode="rag")
        engine.answer(QUESTIONS[0], mode="rag+rerank")
        assert reg.counter("repro.engine.answer_cache.hits").value == 0

    def test_retrieval_cache_warms_across_requests(self, artifact, fast_config):
        reg = MetricsRegistry()
        cfg = WorkflowConfig(
            iterations_per_token=0, engine=EngineConfig(answer_cache_size=0)
        )
        engine = fresh_engine(artifact, cfg, registry=reg)
        engine.answer(QUESTIONS[0])
        engine.answer(QUESTIONS[0])  # answer cache off → pipeline reruns
        assert reg.counter("repro.engine.retrieval_cache.hits").value >= 1

    def test_embedding_cache_warms_when_retrieval_cache_off(self, artifact):
        # The retrieval cache sits in front of the vector store, so
        # embed_query only re-runs — and can only hit its cache — when
        # retrieval itself recomputes.
        reg = MetricsRegistry()
        cfg = WorkflowConfig(
            iterations_per_token=0,
            engine=EngineConfig(answer_cache_size=0, retrieval_cache_size=0),
        )
        engine = fresh_engine(artifact, cfg, registry=reg)
        engine.answer(QUESTIONS[0])
        engine.answer(QUESTIONS[0])
        assert reg.counter("repro.engine.embedding_cache.hits").value >= 1

    def test_clear_query_caches(self, artifact, fast_config):
        engine = fresh_engine(artifact, fast_config, registry=MetricsRegistry())
        engine.answer(QUESTIONS[0])
        assert any(engine.cache_sizes().values())
        engine.clear_query_caches()
        assert not any(engine.cache_sizes().values())


class TestBatchDeterminism:
    def run_batch(self, artifact, fast_config, *, workers, seed=7):
        reg = MetricsRegistry()
        engine = fresh_engine(artifact, fast_config, registry=reg)
        batch = engine.answer_many(QUESTIONS, workers=workers, seed=seed)
        view = json.dumps(reg.deterministic_view(), sort_keys=True)
        return batch, view

    def test_worker_count_invariance(self, artifact, fast_config):
        batches = {
            w: self.run_batch(artifact, fast_config, workers=w) for w in (1, 2, 4)
        }
        answers = {b.answers_digest() for b, _ in batches.values()}
        spans = {b.span_digest() for b, _ in batches.values()}
        metrics = {view for _, view in batches.values()}
        assert len(answers) == 1, "answers must not depend on worker count"
        assert len(spans) == 1, "span structure must not depend on worker count"
        assert len(metrics) == 1, "metric digests must not depend on worker count"

    def test_same_seed_same_digests(self, artifact, fast_config):
        a, va = self.run_batch(artifact, fast_config, workers=4, seed=3)
        b, vb = self.run_batch(artifact, fast_config, workers=4, seed=3)
        assert a.answers_digest() == b.answers_digest()
        assert a.span_digest() == b.span_digest()
        assert va == vb

    def test_batch_dedupes_repeats(self, artifact, fast_config):
        reg = MetricsRegistry()
        engine = fresh_engine(artifact, fast_config, registry=reg)
        batch = engine.answer_many(QUESTIONS, workers=2)
        assert reg.counter("repro.engine.batch_deduped").value == 1
        dup = batch.items[3]
        assert dup.cached and dup.result.answer == batch.items[0].result.answer

    def test_batch_commits_answer_cache(self, artifact, fast_config):
        reg = MetricsRegistry()
        engine = fresh_engine(artifact, fast_config, registry=reg)
        engine.answer_many(QUESTIONS, workers=2)
        rerun = engine.answer_many(QUESTIONS, workers=2)
        assert rerun.cached_count == len(QUESTIONS)
        assert all(it.result.trace.find("llm") == [] for it in rerun.items)

    def test_results_keep_input_order(self, artifact, fast_config):
        engine = fresh_engine(artifact, fast_config, registry=MetricsRegistry())
        batch = engine.answer_many(QUESTIONS, workers=4)
        assert [it.question for it in batch.items] == QUESTIONS
        assert [it.index for it in batch.items] == list(range(len(QUESTIONS)))

    def test_invalid_worker_count(self, artifact, fast_config):
        engine = fresh_engine(artifact, fast_config, registry=MetricsRegistry())
        with pytest.raises(ConfigurationError):
            engine.answer_many(QUESTIONS, workers=0)

    def test_batch_defers_token_burn(self, artifact, bundle):
        cfg = WorkflowConfig()  # latency simulation ON
        engine = QueryEngine(
            get_or_build_index(bundle, cfg), cfg, registry=MetricsRegistry()
        )
        batch = engine.answer_many(QUESTIONS[:2], workers=2)
        assert batch.deferred_tokens > 0
        assert batch.burn_seconds > 0


class TestSharedArtifact:
    def test_every_entry_point_shares_one_build(self, bundle, fast_config, grader):
        """The acceptance check: workflow, chatbot, evaluation, and the
        engine (the CLI ``ask`` path) all answer through one cached
        artifact — ``repro.index.builds`` stays at 1."""
        from repro.bots.system import build_support_system
        from repro.discordsim.models import User
        from repro.evaluation import run_experiment
        from repro.evaluation.benchmark import krylov_benchmark
        from repro.pipeline.workflow import build_workflow

        clear_index_cache()
        reg = MetricsRegistry()
        try:
            with use_registry(reg):
                # CLI `ask` path.
                engine = QueryEngine.from_corpus(bundle, fast_config)
                engine.answer(QUESTIONS[0])
                # Augmented workflow.
                workflow = build_workflow(bundle, fast_config)
                workflow.ask(QUESTIONS[1])
                # Support system / chatbot.
                system = build_support_system(bundle, fast_config)
                system.chatbot.direct_message(User(name="visitor"), QUESTIONS[2])
                # Evaluation.
                run_experiment(
                    engine.pipeline("rag"), grader, questions=krylov_benchmark()[:3]
                )
        finally:
            clear_index_cache()
        assert reg.counter("repro.index.builds").value == 1
        assert reg.counter("repro.index.memory_hits").value >= 2

    def test_workflow_feed_history_invalidates_caches(self, bundle, fast_config):
        from repro.pipeline.workflow import build_workflow

        from repro.history.records import ScoreRecord

        workflow = build_workflow(bundle, fast_config)
        assert workflow.engine is not None
        answer = workflow.ask("What is the default KSP type?")
        workflow.store.add_score(
            answer.interaction_id, ScoreRecord(scorer="dev", score=4)
        )
        assert any(workflow.engine.cache_sizes().values())
        added = workflow.feed_history_into_rag(min_mean_score=3.0)
        assert added == 1
        sizes = workflow.engine.cache_sizes()
        # Scoped invalidation (DESIGN.md §14.3): the stale answer and
        # retrieval entries are dropped, but query-embedding entries
        # stay valid — the embedding model did not change.
        assert sizes["answer"] == 0
        assert sizes["retrieval"] == 0
        assert sizes["embedding"] >= 1
