"""Snapshot tests for the consolidated public API surface.

The point of ``repro.api`` is that the public surface stops drifting:
``repro.__all__``, the facade signatures, and the ``ReproConfig``
round-trip are contracts.  A failure here means a PR changed the public
API — update the snapshot *deliberately* or revert the change.
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.config import ReproConfig, ShardingConfig, WorkflowConfig
from repro.errors import ConfigurationError

#: The public surface.  Additions belong at the right spot in this list
#: (and in ``repro/__init__.py``); removals are breaking changes.
PUBLIC_API = [
    "EngineConfig",
    "IngestConfig",
    "ReplicationConfig",
    "ReproConfig",
    "RetrievalConfig",
    "ShardingConfig",
    "WorkflowConfig",
    "build_default_corpus",
    "IndexArtifact",
    "ShardedIndexArtifact",
    "QueryEngine",
    "ReproService",
    "ShardedQueryEngine",
    "CorpusDelta",
    "IngestReport",
    "apply_documents",
    "get_or_build_index",
    "ingest_corpus",
    "open_engine",
    "open_pipeline",
    "open_service",
    "open_support_system",
    "open_workflow",
    "resolve_artifact",
    "AugmentedWorkflow",
    "RAGPipeline",
    "build_rag_pipeline",
    "build_workflow",
    "build_support_system",
    "BlindGrader",
    "compare_modes",
    "krylov_benchmark",
    "run_experiment",
    "__version__",
]


class TestPublicSurface:
    def test_all_snapshot(self):
        assert repro.__all__ == PUBLIC_API

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_open_engine_signature(self):
        params = inspect.signature(repro.open_engine).parameters
        assert list(params) == ["config", "bundle", "fault_injector", "registry"]
        assert params["config"].default is None
        assert params["config"].kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
        for name in ("bundle", "fault_injector", "registry"):
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY
            assert params[name].default is None

    def test_open_pipeline_and_workflow_signatures(self):
        pipeline = inspect.signature(repro.open_pipeline).parameters
        assert list(pipeline) == ["config", "bundle", "mode", "fault_injector"]
        workflow = inspect.signature(repro.open_workflow).parameters
        assert list(workflow) == ["config", "bundle", "mode", "store"]

    def test_repro_config_fields(self):
        import dataclasses

        names = [f.name for f in dataclasses.fields(ReproConfig)]
        # New sections append; existing sections are load-bearing.
        for required in (
            "chat_model",
            "retrieval",
            "resilience",
            "engine",
            "admission",
            "durability",
            "observability",
            "sharding",
            "replication",
        ):
            assert required in names, required

    def test_workflow_config_is_repro_config(self):
        # Pre-facade name: must stay importable and identical.
        assert WorkflowConfig is ReproConfig


class TestReproConfigRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        cfg = ReproConfig(
            chat_model="gpt-4o-sim",
            iterations_per_token=0,
            sharding=ShardingConfig(num_shards=4, scatter_workers=2),
        )
        clone = ReproConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.to_dict() == cfg.to_dict()

    def test_from_dict_partial_keeps_defaults(self):
        cfg = ReproConfig.from_dict({"sharding": {"num_shards": 2}})
        assert cfg.sharding.num_shards == 2
        assert cfg.sharding.build_workers == ShardingConfig().build_workers
        assert cfg.chat_model == ReproConfig().chat_model

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown config key"):
            ReproConfig.from_dict({"shardingg": {}})
        with pytest.raises(ConfigurationError, match="sharding"):
            ReproConfig.from_dict({"sharding": {"num_shard": 1}})


class TestWrapperDelegation:
    """The pre-facade builders are thin wrappers over repro.api."""

    def test_build_workflow_delegates(self, monkeypatch, bundle, fast_config):
        import repro.api as api
        from repro.pipeline import build_workflow

        calls = {}
        real = api.open_workflow

        def recording(config=None, **kwargs):
            calls["config"] = config
            return real(config, **kwargs)

        monkeypatch.setattr(api, "open_workflow", recording)
        wf = build_workflow(bundle, fast_config, mode="rag")
        assert calls["config"] is fast_config
        from repro.pipeline.workflow import AugmentedWorkflow

        assert isinstance(wf, AugmentedWorkflow)
        assert wf.pipeline.mode.value == "rag"

    def test_build_rag_pipeline_delegates(self, monkeypatch, bundle, fast_config):
        import repro.api as api
        from repro.pipeline import build_rag_pipeline

        calls = {}
        real = api.open_pipeline

        def recording(config=None, **kwargs):
            calls["config"] = config
            return real(config, **kwargs)

        monkeypatch.setattr(api, "open_pipeline", recording)
        pipe = build_rag_pipeline(bundle, fast_config, mode="baseline")
        assert calls["config"] is fast_config
        from repro.pipeline.rag import RAGPipeline

        assert isinstance(pipe, RAGPipeline)
        assert pipe.mode.value == "baseline"

    def test_build_support_system_uses_open_engine(
        self, monkeypatch, bundle, fast_config
    ):
        import repro.api as api
        from repro.bots import build_support_system

        calls = {}
        real = api.open_engine

        def recording(config=None, **kwargs):
            calls["config"] = config
            return real(config, **kwargs)

        monkeypatch.setattr(api, "open_engine", recording)
        system = build_support_system(bundle, fast_config)
        assert calls["config"] is fast_config
        assert system.chatbot.pipeline is not None

    def test_open_engine_sharded_support_system(self, bundle):
        # The facade threads sharding through to the bots' engine.
        from repro.bots import build_support_system
        from repro.engine import ShardedQueryEngine

        cfg = ReproConfig(
            iterations_per_token=0, sharding=ShardingConfig(num_shards=2)
        )
        system = build_support_system(bundle, cfg)
        assert isinstance(system.chatbot.engine, ShardedQueryEngine)
