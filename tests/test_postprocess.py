"""Tests for Markdown parsing, HTML rendering, code checking, JSON output."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PostprocessError
from repro.postprocess import (
    CodeBlock,
    Heading,
    ListBlock,
    Paragraph,
    answer_to_json,
    check_code_block,
    extract_code_blocks,
    extract_lists,
    json_to_answer,
    parse_markdown,
    render_html,
)

SAMPLE = """# Answer

Intro paragraph here.

- first item
- second item

1. step one
2. step two

```c
KSPCreate(PETSC_COMM_WORLD, &ksp);
```

Closing words.
"""


class TestParseMarkdown:
    def test_block_types(self):
        blocks = parse_markdown(SAMPLE)
        kinds = [type(b).__name__ for b in blocks]
        assert kinds == ["Heading", "Paragraph", "ListBlock", "ListBlock", "CodeBlock", "Paragraph"]

    def test_bullet_items(self):
        lists = extract_lists(SAMPLE)
        assert lists[0].items == ["first item", "second item"]
        assert not lists[0].ordered

    def test_numbered_items(self):
        lists = extract_lists(SAMPLE)
        assert lists[1].ordered
        assert lists[1].items == ["step one", "step two"]

    def test_code_block_language(self):
        (code,) = extract_code_blocks(SAMPLE)
        assert code.language == "c"
        assert "KSPCreate" in code.code

    def test_unterminated_fence_graceful(self):
        blocks = parse_markdown("```c\nint x;\n")
        assert isinstance(blocks[0], CodeBlock)

    def test_multiline_paragraph_joined(self):
        blocks = parse_markdown("line one\nline two\n")
        assert blocks == [Paragraph(text="line one line two")]

    def test_empty(self):
        assert parse_markdown("") == []

    @given(st.text(max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_never_raises(self, text):
        parse_markdown(text)


class TestRenderHtml:
    def test_paragraph(self):
        assert render_html("hello") == "<p>hello</p>"

    def test_heading_levels(self):
        assert render_html("## Two") == "<h2>Two</h2>"

    def test_list(self):
        html = render_html("- a\n- b")
        assert html == "<ul><li>a</li><li>b</li></ul>"

    def test_ordered_list(self):
        assert render_html("1. a\n2. b") == "<ol><li>a</li><li>b</li></ol>"

    def test_code_escaped(self):
        html = render_html("```c\nif (a < b) {}\n```")
        assert "&lt;" in html
        assert 'class="language-c"' in html

    def test_inline_markup(self):
        html = render_html("use `KSPSolve` and **bold** and *em*")
        assert "<code>KSPSolve</code>" in html
        assert "<strong>bold</strong>" in html
        assert "<em>em</em>" in html

    def test_links(self):
        html = render_html("[docs](https://petsc.org)")
        assert '<a href="https://petsc.org">docs</a>' in html

    def test_html_escaped_in_paragraph(self):
        assert "<script>" not in render_html("<script>alert(1)</script>")


class TestCodeCheck:
    def _check(self, code, language="c", known=frozenset()):
        return check_code_block(CodeBlock(code=code, language=language), known_identifiers=known)

    def test_valid_c(self):
        res = self._check("KSPCreate(PETSC_COMM_WORLD, &ksp);\nKSPSolve(ksp, b, x);\n",
                          known=frozenset({"KSPCreate", "KSPSolve"}))
        assert res.ok

    def test_unbalanced_brace(self):
        res = self._check("int main() { return 0;\n")
        assert not res.ok
        assert any("unclosed" in e for e in res.errors)

    def test_unbalanced_paren(self):
        res = self._check("foo(bar;\n")
        assert not res.ok

    def test_unterminated_string(self):
        res = self._check('printf("hello;\n')
        assert not res.ok

    def test_missing_semicolon(self):
        res = self._check("KSPSolve(ksp, b, x)")
        assert not res.ok
        assert any("missing ';'" in e for e in res.errors)

    def test_unknown_identifier_flagged(self):
        res = self._check("KSPBurbSet(ksp);", known=frozenset({"KSPSolve"}))
        assert not res.ok
        assert "KSPBurbSet" in res.unknown_identifiers

    def test_comments_ignored(self):
        res = self._check("/* unbalanced ( in comment */\nKSPSolve(a, b, c);",
                          known=frozenset({"KSPSolve"}))
        assert res.ok

    def test_console_quotes(self):
        res = self._check('mpiexec -n 4 ./app -ksp_type gmres', language="console")
        assert res.ok
        bad = self._check('echo "oops', language="bash")
        assert not bad.ok

    def test_console_comments_ok(self):
        res = self._check("# a comment\n./app -pc_type lu", language="sh")
        assert res.ok


class TestJsonOutput:
    def test_roundtrip(self):
        payload = answer_to_json(SAMPLE)
        back = json_to_answer(payload)
        reparsed = parse_markdown(back)
        original = parse_markdown(SAMPLE)
        assert [type(b).__name__ for b in reparsed] == [type(b).__name__ for b in original]

    def test_content_preserved(self):
        back = json_to_answer(answer_to_json(SAMPLE))
        assert "KSPCreate" in back
        assert "first item" in back

    def test_invalid_json(self):
        with pytest.raises(PostprocessError):
            json_to_answer("not json")

    def test_missing_blocks_key(self):
        with pytest.raises(PostprocessError):
            json_to_answer('{"other": []}')

    def test_unknown_block_type(self):
        with pytest.raises(PostprocessError):
            json_to_answer('{"blocks": [{"type": "video"}]}')

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_structure_stable(self, text):
        payload = answer_to_json(text)
        back = json_to_answer(payload)
        # A second pass must be a fixed point structurally.
        assert answer_to_json(back) == answer_to_json(json_to_answer(answer_to_json(back)))
