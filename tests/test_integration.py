"""Cross-module integration tests pinning the paper's headline claims."""

from __future__ import annotations

import pytest

from repro.evaluation import compare_modes, krylov_benchmark, run_experiment


@pytest.fixture(scope="module")
def runs(baseline_pipeline, rag_pipeline, rerank_pipeline, grader):
    qs = krylov_benchmark()
    return {
        "baseline": run_experiment(baseline_pipeline, grader, questions=qs),
        "rag": run_experiment(rag_pipeline, grader, questions=qs),
        "rag+rerank": run_experiment(rerank_pipeline, grader, questions=qs),
    }


class TestPaperShape:
    """The qualitative claims of Section V must hold on the full benchmark."""

    def test_rag_beats_baseline(self, runs):
        assert runs["rag"].mean_score() > runs["baseline"].mean_score() + 1.0

    def test_rerank_beats_rag(self, runs):
        assert runs["rag+rerank"].mean_score() >= runs["rag"].mean_score()

    def test_fig6b_no_negative_impact(self, runs):
        """Reranking-enhanced RAG never scores below baseline (paper: no
        negative impact observed on any question's score)."""
        cmp_ = compare_modes(runs["baseline"], runs["rag+rerank"])
        assert cmp_.worsened == []

    def test_fig6b_improves_majority(self, runs):
        cmp_ = compare_modes(runs["baseline"], runs["rag+rerank"])
        assert len(cmp_.improved) >= 25  # paper: 25 of 37

    def test_rerank_final_distribution(self, runs):
        """Paper: score 4 for 33/37 and 3 for the rest; ours must be all
        3s and 4s with a strong majority of 4s."""
        hist = runs["rag+rerank"].score_histogram()
        assert hist[0] == hist[1] == hist[2] == 0
        assert hist[4] >= 24

    def test_fig6c_rerank_improves_over_rag(self, runs):
        cmp_ = compare_modes(runs["rag"], runs["rag+rerank"])
        assert len(cmp_.improved) >= 2
        assert cmp_.worsened == []

    def test_fig6c_has_plus_three_jumps(self, runs):
        """Paper: two questions improved by 3 points under reranking."""
        cmp_ = compare_modes(runs["rag"], runs["rag+rerank"])
        assert len(cmp_.improvements_of(3)) >= 2

    def test_kspburb_hallucination_fixed_by_rag(self, runs):
        base = runs["baseline"].scores()["Q01"]
        rerank = runs["rag+rerank"].scores()["Q01"]
        assert base == 0   # confident fabrication, paper scored it 0
        assert rerank == 4  # grounded refusal

    def test_latency_ordering(self, runs):
        """RAG stage must be far cheaper than the (simulated) LLM stage
        even with the latency burn disabled, and rerank adds RAG time."""
        rag_t = runs["rag"].rag_stats()
        rerank_t = runs["rag+rerank"].rag_stats()
        assert rag_t is not None and rerank_t is not None
        assert rerank_t.average > rag_t.average


class TestDeterminism:
    def test_full_run_reproducible(self, rerank_pipeline, grader):
        qs = krylov_benchmark()[:6]
        a = run_experiment(rerank_pipeline, grader, questions=qs).scores()
        b = run_experiment(rerank_pipeline, grader, questions=qs).scores()
        assert a == b


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name == "__version__"
