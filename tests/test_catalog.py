"""Tests for the multi-database catalog (III-A: choosing vector DBs)."""

from __future__ import annotations

import pytest

from repro.corpus.builder import chunk_corpus
from repro.embeddings import HashingEmbedding
from repro.errors import VectorStoreError
from repro.vectorstore import CatalogRetriever, DatabaseCatalog, VectorStore


@pytest.fixture(scope="module")
def catalog(bundle):
    emb = HashingEmbedding(dim=256)
    docs_chunks = chunk_corpus(bundle, include_mail=False)
    all_chunks = chunk_corpus(bundle, include_mail=True)
    mail_chunks = [c for c in all_chunks if c.metadata.get("doc_type") == "mail_thread"]
    cat = DatabaseCatalog()
    cat.register("docs", VectorStore.from_documents(docs_chunks, emb))
    cat.register("mail", VectorStore.from_documents(mail_chunks, emb))
    return cat


class TestCatalog:
    def test_names(self, catalog):
        assert catalog.names() == ["docs", "mail"]

    def test_duplicate_register(self, catalog):
        with pytest.raises(VectorStoreError):
            catalog.register("docs", catalog.get("docs"))

    def test_unknown_get(self, catalog):
        with pytest.raises(VectorStoreError):
            catalog.get("publications")

    def test_search_all_tags_origin(self, catalog):
        hits = catalog.search("GMRES restart memory", k=8)
        origins = {h.origin for h in hits}
        assert origins <= {"db:docs", "db:mail"}
        assert "db:docs" in origins

    def test_search_subset(self, catalog):
        hits = catalog.search("GMRES runs out of memory", databases=["mail"], k=5)
        assert all(h.origin == "db:mail" for h in hits)
        assert all(
            h.document.metadata["doc_type"] == "mail_thread" for h in hits
        )

    def test_empty_selection_rejected(self, catalog):
        with pytest.raises(VectorStoreError):
            catalog.search("x", databases=[])

    def test_unregister(self):
        cat = DatabaseCatalog()
        store = VectorStore.from_documents([], HashingEmbedding(dim=64))
        cat.register("tmp", store)
        assert cat.unregister("tmp") is store
        with pytest.raises(VectorStoreError):
            cat.unregister("tmp")

    def test_retriever_view(self, catalog):
        r = CatalogRetriever(catalog, databases=["docs"])
        hits = r.retrieve("What does KSPLSQR do?", k=4)
        assert len(hits) == 4
        assert all(h.origin == "db:docs" for h in hits)

    def test_fusion_rewards_agreement(self, catalog):
        """A chunk found by both databases cannot rank below a chunk
        found by only one at the same per-list rank."""
        hits = catalog.search("zero pivot in the ILU factorization", k=8)
        assert hits  # smoke: fusion produces output on a topical query
