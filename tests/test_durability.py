"""Durability layer: atomic writes, journal recovery, torn-write sweeps."""

from __future__ import annotations

import json

import pytest

from repro.config import WorkflowConfig
from repro.durability import (
    Journal,
    atomic_write,
    atomic_write_json,
    encode_record,
    recover_journal,
    scan_journal,
)
from repro.durability.journal import encode_json_record
from repro.errors import IndexBuildError, SimulatedCrashError
from repro.history import Interaction, InteractionStore
from repro.mail import AppsScriptPoller, GmailAccount
from repro.observability import MetricsRegistry, Tracer, use_registry
from repro.resilience import CrashPointInjector, TornWriteInjector


# ------------------------------------------------------------------ atomic
class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write(target, "v1")
        atomic_write(target, "v2")
        assert target.read_text() == "v2"
        assert not list(tmp_path.glob(".*.tmp"))

    def test_crash_before_write_leaves_nothing(self, tmp_path):
        target = tmp_path / "state.json"
        fault = CrashPointInjector([("atomic:pre-write", 0)])
        with pytest.raises(SimulatedCrashError):
            atomic_write(target, "new", fault=fault)
        assert not target.exists()

    def test_crash_before_rename_keeps_old_content(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write(target, "old")
        fault = CrashPointInjector([("atomic:pre-rename", 0)])
        with pytest.raises(SimulatedCrashError):
            atomic_write(target, "new", fault=fault)
        # The temp file exists but the target is byte-for-byte the old one.
        assert target.read_text() == "old"

    def test_later_call_index_survives_earlier_writes(self, tmp_path):
        target = tmp_path / "state.json"
        fault = CrashPointInjector([("atomic:pre-rename", 1)])
        atomic_write(target, "first", fault=fault)
        with pytest.raises(SimulatedCrashError):
            atomic_write(target, "second", fault=fault)
        assert target.read_text() == "first"

    def test_json_helper_roundtrip(self, tmp_path):
        target = tmp_path / "obj.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}

    def test_counts_writes(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            atomic_write(tmp_path / "x", "data")
        assert registry.counter("repro.durability.atomic_writes").value == 1


# ------------------------------------------------------------------ journal
RECORDS = [
    {"seq": 0, "kind": "greeting", "text": "hello"},
    {"seq": 1, "kind": "data", "text": "x" * 37},
    {"seq": 2, "kind": "unicode", "text": "café ∑ ≈"},
    {"seq": 3, "kind": "empty", "text": ""},
]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            for rec in RECORDS:
                journal.append(rec)
        report = scan_journal(path)
        assert report.records == RECORDS
        assert not report.truncated
        assert report.reason == ""

    def test_missing_file_scans_clean(self, tmp_path):
        report = scan_journal(tmp_path / "absent.log")
        assert report.records == []
        assert not report.truncated

    def test_appends_after_reopen(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            journal.append(RECORDS[0])
        with Journal(path) as journal:
            journal.append(RECORDS[1])
        assert scan_journal(path).records == RECORDS[:2]

    def test_checksum_detects_flipped_byte(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            for rec in RECORDS:
                journal.append(rec)
        data = bytearray(path.read_bytes())
        # Flip one payload byte inside the second record.
        second_start = len(encode_json_record(RECORDS[0]))
        header_end = data.index(b"\n", second_start) + 1
        data[header_end + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        report = scan_journal(path)
        assert report.records == RECORDS[:1]
        assert "checksum mismatch" in report.reason

    def test_garbage_prefix_recovers_nothing(self, tmp_path):
        path = tmp_path / "j.log"
        path.write_bytes(b"not a journal at all\n" + encode_record(b"{}"))
        report = recover_journal(path)
        assert report.records == []
        assert path.read_bytes() == b""

    def test_recover_truncates_and_counts(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            for rec in RECORDS:
                journal.append(rec)
        intact = len(path.read_bytes())
        path.write_bytes(path.read_bytes() + b"J1 999")  # torn header
        registry = MetricsRegistry()
        with use_registry(registry):
            report = recover_journal(path)
        assert report.records == RECORDS
        assert len(path.read_bytes()) == intact
        assert registry.counter("repro.durability.journal_truncations").value == 1
        assert registry.counter("repro.durability.journal_bytes_dropped").value == 6
        assert (
            registry.counter("repro.durability.journal_records_recovered").value
            == len(RECORDS)
        )

    def test_recover_dry_run_leaves_file(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            journal.append(RECORDS[0])
        torn = path.read_bytes() + b"J1 torn"
        path.write_bytes(torn)
        report = recover_journal(path, truncate=False)
        assert report.truncated
        assert path.read_bytes() == torn


def _torn_write_cases():
    """Every (record, cut) boundary for a small journal — exhaustive."""
    frames = [encode_json_record(r) for r in RECORDS]
    cases = []
    for record_index, frame in enumerate(frames):
        for cut_at in range(len(frame) + 1):
            cases.append((record_index, cut_at))
    return cases


class TestTornWriteSweep:
    @pytest.mark.parametrize("record_index,cut_at", _torn_write_cases())
    def test_recovers_exact_intact_prefix(self, tmp_path, record_index, cut_at):
        """Kill the journal at every byte boundary of every record; the
        recovered records must be exactly the acknowledged prefix."""
        path = tmp_path / "j.log"
        injector = TornWriteInjector(record_index=record_index, cut_at=cut_at)
        journal = Journal(path, fault=injector)
        wrote = 0
        try:
            for rec in RECORDS:
                journal.append(rec)
                wrote += 1
        except SimulatedCrashError:
            pass
        finally:
            journal.close()
        assert injector.fired
        assert wrote == record_index  # the torn append was never acked
        frame = encode_json_record(RECORDS[record_index])
        report = recover_journal(path)
        if cut_at == len(frame):
            # The "torn" write completed in full: the record is intact
            # on disk (just unacked), so recovery keeps it.
            assert report.records == RECORDS[: record_index + 1]
            assert not report.truncated
        else:
            assert report.records == RECORDS[:record_index]
            assert report.dropped_bytes == cut_at
            # cut_at == 0 writes nothing: a clean journal, no tail.
            assert report.truncated == (cut_at > 0)

    def test_full_frame_cut_is_recoverable_record(self, tmp_path):
        """cut_at == len(frame) writes the whole frame before the crash;
        recovery keeps it (it is intact on disk, even if unacked)."""
        path = tmp_path / "j.log"
        frame_len = len(encode_json_record(RECORDS[0]))
        injector = TornWriteInjector(record_index=0, cut_at=frame_len)
        journal = Journal(path, fault=injector)
        with pytest.raises(SimulatedCrashError):
            journal.append(RECORDS[0])
        report = recover_journal(path)
        assert report.records == [RECORDS[0]]


# ------------------------------------------------------------------ history
def _interaction(i: int) -> Interaction:
    return Interaction(
        interaction_id=f"int-{i:06d}",
        question=f"What is KSP variant {i}?",
        answer=f"Answer body {i}",
        timestamp=1000.0 + i,
        chat_model="gpt-4o-sim",
        mode="rag+rerank",
    )


class TestHistoryJournal:
    def test_journaled_adds_recover(self, tmp_path):
        path = tmp_path / "history.journal"
        store = InteractionStore()
        store.attach_journal(path)
        for i in range(1, 4):
            store.add(_interaction(i))
        store.detach_journal()
        recovered, report = InteractionStore.recover(path)
        assert len(recovered) == 3
        assert not report.truncated
        assert recovered.get("int-000002").question == "What is KSP variant 2?"
        # The id counter resumes past the recovered records.
        assert recovered.new_id() == "int-000004"

    @pytest.mark.parametrize("cut_fraction", (0.0, 0.3, 0.7, 0.999))
    def test_torn_tail_drops_only_last(self, tmp_path, cut_fraction):
        path = tmp_path / "history.journal"
        records = [_interaction(i) for i in range(1, 5)]
        from repro.history.store import _interaction_to_dict

        frame = encode_json_record(_interaction_to_dict(records[-1]))
        injector = TornWriteInjector(
            record_index=3, cut_at=int(cut_fraction * len(frame))
        )
        store = InteractionStore()
        journal = store.attach_journal(path)
        journal.fault = injector
        with pytest.raises(SimulatedCrashError):
            for rec in records:
                store.add(rec)
        recovered, report = InteractionStore.recover(path)
        assert [r.interaction_id for r in recovered.all()] == [
            "int-000001", "int-000002", "int-000003",
        ]
        # cut_fraction 0.0 writes no bytes of the torn record at all —
        # the journal on disk is clean, just short one record.
        assert report.truncated == (cut_fraction > 0)

    def test_crashed_add_never_entered_memory(self, tmp_path):
        path = tmp_path / "history.journal"
        store = InteractionStore()
        journal = store.attach_journal(path)
        journal.fault = TornWriteInjector(record_index=0, cut_at=5)
        with pytest.raises(SimulatedCrashError):
            store.add(_interaction(1))
        assert len(store) == 0  # journal-first: memory matches disk

    def test_save_is_atomic(self, tmp_path):
        target = tmp_path / "history.jsonl"
        store = InteractionStore()
        store.add(_interaction(1))
        store.save(target)
        loaded = InteractionStore.load(target)
        assert len(loaded) == 1


# ------------------------------------------------------------------ poller
def _poller(tmp_path, *, max_dead_letters=3, tracer=None):
    account = GmailAccount("assistant@petsc.dev")
    calls = {"fail": True}

    def webhook(payload: str) -> None:
        if calls["fail"]:
            raise ConnectionError("webhook down")

    poller = AppsScriptPoller(
        account=account,
        webhook_post=webhook,
        max_dead_letters=max_dead_letters,
        tracer=tracer,
    )
    return poller, account, calls


class TestPollerDeadLetters:
    def test_overflow_drops_oldest_with_counter(self, tmp_path):
        poller, account, _ = _poller(tmp_path, max_dead_letters=2)
        registry = MetricsRegistry()
        with use_registry(registry):
            for i in range(4):
                poller._post(f"notification {i}")
        assert list(poller.dead_letters) == ["notification 2", "notification 3"]
        assert registry.counter("repro.poller.dead_letter_dropped").value == 2

    def test_overflow_emits_span_event(self, tmp_path):
        tracer = Tracer()
        poller, _, _ = _poller(tmp_path, max_dead_letters=1, tracer=tracer)
        with tracer.trace("poller-tick") as trace:
            poller._post("first")
            poller._post("second")  # overflows, drops "first"
        assert "dead-letter:dropped" in trace.event_names()

    def test_journal_restores_queue_after_crash(self, tmp_path):
        path = tmp_path / "dlq.journal"
        poller, _, calls = _poller(tmp_path, max_dead_letters=2)
        poller.attach_journal(path)
        for i in range(4):
            poller._post(f"n{i}")  # two drops, queue = [n2, n3]
        # Redeliver one successfully: queue = [n3].
        calls["fail"] = False
        poller.tick()
        survivor = AppsScriptPoller(account=GmailAccount("assistant@petsc.dev"), webhook_post=lambda p: None)
        report = survivor.restore_dead_letters(path)
        assert list(survivor.dead_letters) == []  # tick drained the queue
        assert not report.truncated

    def test_journal_restore_mid_outage(self, tmp_path):
        path = tmp_path / "dlq.journal"
        poller, _, _ = _poller(tmp_path, max_dead_letters=8)
        poller.attach_journal(path)
        for i in range(3):
            poller._post(f"n{i}")
        survivor = AppsScriptPoller(account=GmailAccount("assistant@petsc.dev"), webhook_post=lambda p: None)
        survivor.restore_dead_letters(path)
        assert list(survivor.dead_letters) == ["n0", "n1", "n2"]

    @pytest.mark.parametrize("cut_fraction", (0.1, 0.5, 0.9))
    def test_torn_dead_letter_journal_recovers_prefix(self, tmp_path, cut_fraction):
        path = tmp_path / "dlq.journal"
        poller, _, _ = _poller(tmp_path, max_dead_letters=8)
        journal = poller.attach_journal(path)
        frame = encode_json_record({"op": "push", "payload": "n2"})
        journal.fault = TornWriteInjector(
            record_index=2, cut_at=max(1, int(cut_fraction * len(frame)))
        )
        with pytest.raises(SimulatedCrashError):
            for i in range(4):
                poller._dead_letter(f"n{i}")
        survivor = AppsScriptPoller(account=GmailAccount("assistant@petsc.dev"), webhook_post=lambda p: None)
        report = survivor.restore_dead_letters(path)
        assert list(survivor.dead_letters) == ["n0", "n1"]
        assert report.truncated


# ------------------------------------------------------------------ index cache
class TestIndexCacheChecksums:
    def test_manifest_carries_payload_checksums(self, bundle, tmp_path):
        from repro.index.builder import build_index, save_artifact

        artifact = build_index(bundle, WorkflowConfig(iterations_per_token=0))
        root = save_artifact(artifact, tmp_path)
        manifest = json.loads((root / "artifact.json").read_text())
        sums = manifest["payload_checksums"]
        assert set(sums) == {"vectors.npz", "documents.jsonl", "manifest.json"}
        assert all(len(v) == 64 for v in sums.values())

    def test_corrupt_payload_fails_load_then_rebuilds(self, bundle, tmp_path):
        from repro.index.builder import (
            build_index,
            get_or_build_index,
            load_artifact,
            save_artifact,
            clear_index_cache,
        )

        cfg = WorkflowConfig(iterations_per_token=0)
        artifact = build_index(bundle, cfg)
        root = save_artifact(artifact, tmp_path)
        payload = root / "store" / "documents.jsonl"
        payload.write_bytes(payload.read_bytes()[:-10] + b"corruption")
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(IndexBuildError, match="checksum"):
                load_artifact(bundle, cfg, tmp_path)
        assert registry.counter("repro.index.checksum_failures").value == 1
        # The entry point falls back to a fresh build over the bad cache.
        clear_index_cache()
        try:
            rebuilt = get_or_build_index(bundle, cfg, cache_dir=tmp_path)
        finally:
            clear_index_cache()
        assert rebuilt.digest == artifact.digest
        fresh = load_artifact(bundle, cfg, tmp_path)
        assert fresh.digest == artifact.digest

    def test_clean_cache_loads_with_verification(self, bundle, tmp_path):
        from repro.index.builder import build_index, load_artifact, save_artifact

        cfg = WorkflowConfig(iterations_per_token=0)
        artifact = build_index(bundle, cfg)
        save_artifact(artifact, tmp_path)
        loaded = load_artifact(bundle, cfg, tmp_path)
        assert loaded.digest == artifact.digest

    def test_verification_can_be_disabled(self, bundle, tmp_path):
        from repro.index.builder import build_index, load_artifact, save_artifact

        cfg = WorkflowConfig(iterations_per_token=0)
        artifact = build_index(bundle, cfg)
        root = save_artifact(artifact, tmp_path)
        manifest_file = root / "store" / "manifest.json"
        # Cosmetic corruption that keeps the JSON loadable.
        manifest_file.write_text(manifest_file.read_text() + " ")
        cfg.durability.verify_index_checksums = False
        loaded = load_artifact(bundle, cfg, tmp_path)
        assert loaded.digest == artifact.digest
