"""Tests for prompt templates and the prompt library."""

from __future__ import annotations

import pytest

from repro.documents import Document
from repro.errors import PromptError
from repro.prompts import (
    BASELINE_PROMPT,
    RAG_PROMPT,
    ChatPromptTemplate,
    PromptTemplate,
    format_context,
    parse_rag_prompt,
)
from repro.retrieval.base import RetrievedDocument


class TestPromptTemplate:
    def test_variables_discovered(self):
        t = PromptTemplate("Hello {name}, you are {role}.")
        assert t.input_variables == {"name", "role"}

    def test_format(self):
        t = PromptTemplate("{a}-{b}")
        assert t.format(a="1", b="2") == "1-2"

    def test_missing_variable(self):
        with pytest.raises(PromptError):
            PromptTemplate("{a}").format()

    def test_unexpected_variable(self):
        with pytest.raises(PromptError):
            PromptTemplate("{a}").format(a="1", b="2")

    def test_repeated_variable(self):
        t = PromptTemplate("{x} and {x}")
        assert t.format(x="y") == "y and y"


class TestChatPromptTemplate:
    def test_format_messages(self):
        t = ChatPromptTemplate.from_strings([
            ("system", "You are {persona}."),
            ("user", "{question}"),
        ])
        msgs = t.format_messages(persona="helpful", question="why?")
        assert msgs[0].role == "system"
        assert msgs[0].content == "You are helpful."
        assert msgs[1].content == "why?"

    def test_input_variables_union(self):
        t = ChatPromptTemplate.from_strings([("system", "{a}"), ("user", "{b}")])
        assert t.input_variables == {"a", "b"}


class TestFormatContext:
    def test_numbered_with_sources(self):
        hits = [
            RetrievedDocument(
                document=Document(text="text one", metadata={"source": "a.md"}),
                score=1.0, origin="vector",
            ),
            RetrievedDocument(
                document=Document(text="text two", metadata={"source": "b.md"}),
                score=0.9, origin="vector",
            ),
        ]
        ctx = format_context(hits)
        assert "[1] source: a.md" in ctx
        assert "[2] source: b.md" in ctx
        assert "text two" in ctx


class TestParseRagPrompt:
    def test_roundtrip_rag(self):
        rendered = RAG_PROMPT.format(context="CTX HERE", question="Q HERE")
        parsed = parse_rag_prompt(rendered)
        assert parsed.has_context
        assert parsed.context == "CTX HERE"
        assert parsed.question == "Q HERE"

    def test_roundtrip_baseline(self):
        rendered = BASELINE_PROMPT.format(question="just the question")
        parsed = parse_rag_prompt(rendered)
        assert not parsed.has_context
        assert parsed.question == "just the question"

    def test_bare_text_is_question(self):
        parsed = parse_rag_prompt("no markers at all")
        assert parsed.question == "no markers at all"
        assert parsed.context is None

    def test_guidance_parsed(self):
        from repro.prompts import REVISE_PROMPT

        rendered = REVISE_PROMPT.format(guidance="be brief", question="q")
        parsed = parse_rag_prompt(rendered)
        assert parsed.guidance == "be brief"
        assert parsed.question == "q"
