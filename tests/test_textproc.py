"""Unit tests for repro.utils.textproc."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.textproc import (
    STOPWORDS,
    code_tokens,
    is_petsc_api_identifier,
    normalize_text,
    sentences,
    stem,
    stemmed_tokens,
    tokenize,
    tokenize_with_stopwords,
    truncate_words,
    word_ngrams,
)


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize_text("a   b\t\nc") == "a b c"

    def test_strips_ends(self):
        assert normalize_text("  hello  ") == "hello"

    def test_empty(self):
        assert normalize_text("   ") == ""

    def test_preserves_case(self):
        assert normalize_text("KSPSolve") == "KSPSolve"


class TestTokenize:
    def test_basic(self):
        assert "gmres" in tokenize("the GMRES method")

    def test_stopwords_removed(self):
        toks = tokenize("the and of a method")
        assert toks == ["method"]

    def test_hyphen_compound_split(self):
        toks = tokenize("a low-memory method")
        assert "low-memory" in toks
        assert "memory" in toks
        assert "low" in toks

    def test_camel_case_split(self):
        toks = tokenize("call KSPGetConvergedReason please")
        assert "kspgetconvergedreason" in toks
        assert "converged" in toks
        assert "reason" in toks
        assert "ksp" in toks

    def test_option_key_split(self):
        toks = tokenize("-ksp_converged_reason")
        assert "converged" in toks and "reason" in toks

    def test_with_stopwords_keeps_them(self):
        toks = tokenize_with_stopwords("the method")
        assert toks == ["the", "method"]

    def test_empty_string(self):
        assert tokenize("") == []

    @given(st.text(max_size=200))
    def test_never_raises_and_lowercase(self, text):
        for tok in tokenize(text):
            assert tok == tok.lower()

    @given(st.text(max_size=200))
    def test_no_stopwords_leak(self, text):
        assert not (set(tokenize(text)) & STOPWORDS)


class TestStem:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("converged", "convergence"),
            ("failed", "failure"),
            ("iteration", "iterations"),
            ("tolerance", "tolerances"),
            ("solve", "solver"),
            ("preconditioner", "preconditioning"),
        ],
    )
    def test_inflection_pairs_unify(self, a, b):
        assert stem(a) == stem(b)

    def test_short_tokens_untouched(self):
        assert stem("ksp") == "ksp"

    def test_identifiers_untouched(self):
        assert stem("KSPSolve") == "KSPSolve"

    def test_plural_y(self):
        assert stem("libraries") == "library"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
    def test_stem_idempotent_enough(self, token):
        # Stemming twice must not diverge wildly: the second application
        # may shorten further, but output is always a prefix-ish of input.
        once = stem(token)
        assert len(once) >= 1
        assert once[:3] == token[:3] or len(token) <= 4

    def test_stemmed_tokens(self):
        assert "converg" in stemmed_tokens("the solver converged quickly")


class TestCodeTokens:
    def test_api_names(self):
        assert code_tokens("What does KSPSolve do?") == ["KSPSolve"]

    def test_option_keys(self):
        assert "-ksp_monitor" in code_tokens("use -ksp_monitor here")

    def test_hyphenated_word_not_option(self):
        assert code_tokens("a low-memory method") == []

    def test_mixed(self):
        toks = code_tokens("KSPSetType plus -pc_type jacobi")
        assert "KSPSetType" in toks and "-pc_type" in toks
        assert code_tokens("-pc_factor_levels")[0] == "-pc_factor_levels"

    def test_plain_words_ignored(self):
        assert code_tokens("the quick brown fox") == []


class TestIsPetscApiIdentifier:
    @pytest.mark.parametrize("ident", ["KSPSolve", "KSPBurb", "MatSetValues", "-ksp_rtol", "PetscMalloc1"])
    def test_positive(self, ident):
        assert is_petsc_api_identifier(ident)

    @pytest.mark.parametrize("ident", ["BiCGStab", "GMRES", "OpenMP", "low-memory", "hello"])
    def test_negative(self, ident):
        assert not is_petsc_api_identifier(ident)


class TestSentences:
    def test_split_on_period(self):
        s = sentences("One sentence. Another one.")
        assert len(s) == 2

    def test_newlines_are_boundaries(self):
        s = sentences("- first bullet with GMRES\n- second bullet with restart")
        assert len(s) == 2

    def test_empty(self):
        assert sentences("") == []

    def test_abbrev_not_oversplit(self):
        # No capital after the period → no split.
        s = sentences("see e.g. the manual")
        assert len(s) == 1


class TestNgrams:
    def test_bigrams(self):
        assert list(word_ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_order_too_large(self):
        assert list(word_ngrams(["a"], 2)) == []

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            list(word_ngrams(["a"], 0))


class TestTruncate:
    def test_no_truncation_needed(self):
        assert truncate_words("a b", 5) == "a b"

    def test_truncates(self):
        assert truncate_words("a b c d", 2) == "a b ..."

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            truncate_words("a", -1)
