"""Unit and property tests for the text splitters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documents import (
    Document,
    MarkdownHeaderTextSplitter,
    RecursiveCharacterTextSplitter,
    SentenceWindowSplitter,
)
from repro.errors import DocumentError


class TestRecursiveCharacterTextSplitter:
    def test_short_text_single_chunk(self):
        sp = RecursiveCharacterTextSplitter(chunk_size=100, chunk_overlap=10)
        assert sp.split_text("short") == ["short"]

    def test_empty_text(self):
        sp = RecursiveCharacterTextSplitter()
        assert sp.split_text("   \n ") == []

    def test_respects_chunk_size(self):
        text = "\n\n".join(f"paragraph number {i} with some words" for i in range(40))
        sp = RecursiveCharacterTextSplitter(chunk_size=120, chunk_overlap=20)
        for chunk in sp.split_text(text):
            assert len(chunk) <= 120 + 20  # overlap seeds may extend slightly

    def test_content_preserved(self):
        text = "\n\n".join(f"para{i}" for i in range(30))
        sp = RecursiveCharacterTextSplitter(chunk_size=50, chunk_overlap=0)
        joined = " ".join(sp.split_text(text))
        for i in range(30):
            assert f"para{i}" in joined

    def test_overlap_repeats_content(self):
        text = "\n".join(f"line {i:03d}" for i in range(100))
        sp = RecursiveCharacterTextSplitter(chunk_size=100, chunk_overlap=30)
        chunks = sp.split_text(text)
        assert len(chunks) >= 2
        # The tail of chunk i must appear at the head of chunk i+1.
        assert chunks[0][-10:] in chunks[1][:60]

    def test_invalid_params(self):
        with pytest.raises(DocumentError):
            RecursiveCharacterTextSplitter(chunk_size=0)
        with pytest.raises(DocumentError):
            RecursiveCharacterTextSplitter(chunk_size=10, chunk_overlap=10)
        with pytest.raises(DocumentError):
            RecursiveCharacterTextSplitter(separators=("\n\n", "\n"))

    def test_split_documents_metadata(self):
        sp = RecursiveCharacterTextSplitter(chunk_size=50, chunk_overlap=0)
        docs = [Document(text="\n\n".join(f"para {i} text here" for i in range(10)),
                         metadata={"source": "s.md"})]
        out = sp.split_documents(docs)
        assert all(d.metadata["source"] == "s.md" for d in out)
        assert [d.metadata["chunk"] for d in out] == list(range(len(out)))

    @given(st.text(alphabet="abc \n", min_size=0, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_never_empty_chunks(self, text):
        sp = RecursiveCharacterTextSplitter(chunk_size=64, chunk_overlap=8)
        for chunk in sp.split_text(text):
            assert chunk.strip()

    @given(
        st.integers(min_value=20, max_value=400),
        st.integers(min_value=0, max_value=19),
    )
    @settings(max_examples=30, deadline=None)
    def test_character_fallback_bounds(self, size, overlap):
        sp = RecursiveCharacterTextSplitter(chunk_size=size, chunk_overlap=overlap)
        # A single unbroken token longer than chunk_size forces the
        # character-level fallback.
        text = "x" * (size * 3 + 7)
        chunks = sp.split_text(text)
        assert all(len(c) <= size + overlap for c in chunks)


class TestMarkdownHeaderTextSplitter:
    MD = (
        "# Title\n\nintro text\n\n## Section One\n\nbody one\n\n"
        "## Section Two\n\nbody two\n\n### Deep\n\ndeep body\n"
    )

    def test_sections_found(self):
        sp = MarkdownHeaderTextSplitter(max_depth=2)
        sections = sp.split_sections(self.MD)
        paths = [p for p, _ in sections]
        assert "Title" in paths
        assert "Title / Section One" in paths

    def test_deeper_headers_stay_in_body(self):
        sp = MarkdownHeaderTextSplitter(max_depth=2)
        sections = dict(sp.split_sections(self.MD))
        assert "### Deep" in sections["Title / Section Two"]

    def test_code_fence_headers_ignored(self):
        md = "# T\n\n```\n# not a header\n```\n"
        sp = MarkdownHeaderTextSplitter()
        sections = sp.split_sections(md)
        assert len(sections) == 1
        assert "# not a header" in sections[0][1]

    def test_section_metadata_and_heading_in_text(self):
        sp = MarkdownHeaderTextSplitter(max_depth=2)
        docs = sp.split_documents([Document(text=self.MD, metadata={"source": "m"})])
        tagged = [d for d in docs if d.metadata.get("section") == "Title / Section One"]
        assert len(tagged) == 1
        assert tagged[0].text.startswith("Title / Section One")

    def test_invalid_depth(self):
        with pytest.raises(DocumentError):
            MarkdownHeaderTextSplitter(max_depth=0)


class TestSentenceWindowSplitter:
    TEXT = "One here. Two here. Three here. Four here. Five here."

    def test_window_and_stride(self):
        sp = SentenceWindowSplitter(window=2, stride=2)
        chunks = sp.split_text(self.TEXT)
        assert chunks[0] == "One here. Two here."
        assert len(chunks) == 3

    def test_overlapping_stride(self):
        sp = SentenceWindowSplitter(window=3, stride=1)
        chunks = sp.split_text(self.TEXT)
        assert "Two here." in chunks[0] and "Two here." in chunks[1]

    def test_empty(self):
        assert SentenceWindowSplitter().split_text("") == []

    def test_invalid_params(self):
        with pytest.raises(DocumentError):
            SentenceWindowSplitter(window=0)
        with pytest.raises(DocumentError):
            SentenceWindowSplitter(window=2, stride=3)

    def test_all_sentences_covered(self):
        sp = SentenceWindowSplitter(window=2, stride=2)
        joined = " ".join(sp.split_text(self.TEXT))
        for word in ("One", "Two", "Three", "Four", "Five"):
            assert word in joined


class TestChunkIdentityStability:
    """Satellite of ISSUE 10: chunk identity is stable under
    whitespace-only edits — the property the delta ingest lane leans on
    to classify a reflowed paragraph as *modified* (same content
    address) instead of removed + added."""

    def test_split_is_deterministic(self):
        from repro.ingest import chunk_id

        text = "\n\n".join(f"Paragraph {i} about KSP solvers." for i in range(30))
        doc = Document(text=text, metadata={"source": "s.md"})
        sp = RecursiveCharacterTextSplitter(chunk_size=120, chunk_overlap=20)
        first = sp.split_documents([doc])
        second = sp.split_documents([doc])
        assert [c.doc_id for c in first] == [c.doc_id for c in second]
        assert [chunk_id(c) for c in first] == [chunk_id(c) for c in second]

    @given(st.text(alphabet="abcd .\n", min_size=1, max_size=300), st.data())
    @settings(max_examples=60, deadline=None)
    def test_whitespace_normalized_equal_text_implies_equal_ids(self, text, data):
        import re

        from repro.ingest import chunk_address, normalized_text

        # Rewrite every whitespace run as a different whitespace run:
        # the canonical whitespace-only edit.
        parts = re.split(r"(\s+)", text)
        perturbed = "".join(
            data.draw(st.text(alphabet=" \t\n", min_size=1, max_size=3))
            if part and part.isspace()
            else part
            for part in parts
        )
        assert normalized_text(text) == normalized_text(perturbed)
        assert chunk_address(text, "s.md") == chunk_address(perturbed, "s.md")

    @given(st.sampled_from(["café", "café", "Ω", "Ω"]))
    @settings(max_examples=10, deadline=None)
    def test_unicode_normalization_forms_share_an_address(self, word):
        import unicodedata

        from repro.ingest import chunk_address

        nfc = unicodedata.normalize("NFC", word)
        nfd = unicodedata.normalize("NFD", word)
        assert chunk_address(nfc, "s.md") == chunk_address(nfd, "s.md")

    def test_reflowed_chunk_is_modified_not_new(self):
        from repro.ingest import diff_chunks

        old = [Document(text="use  KSPSolve\tnow", metadata={"source": "s.md"})]
        new = [Document(text="use KSPSolve now", metadata={"source": "s.md"})]
        delta = diff_chunks(old, new)
        assert [d.text for d in delta.modified] == ["use KSPSolve now"]
        assert not delta.added
