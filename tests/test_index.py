"""The index layer: content-hashed artifacts, memory and disk caches."""

from __future__ import annotations

import json

import pytest

from repro.config import RetrievalConfig, WorkflowConfig
from repro.errors import IndexBuildError
from repro.index import (
    IndexArtifact,
    build_index,
    clear_index_cache,
    compute_digest,
    get_or_build_index,
    load_artifact,
    save_artifact,
)
from repro.observability import MetricsRegistry, use_registry


@pytest.fixture()
def fresh_cache():
    """Run the test against an empty in-process artifact cache, then
    leave it empty so test order never leaks cached artifacts."""
    clear_index_cache()
    yield
    clear_index_cache()


class TestDigests:
    def test_digest_is_deterministic(self, bundle, fast_config):
        assert compute_digest(bundle, fast_config) == compute_digest(bundle, fast_config)

    def test_digest_tracks_index_relevant_config(self, bundle, fast_config):
        base = compute_digest(bundle, fast_config)
        chunked = WorkflowConfig(
            retrieval=RetrievalConfig(chunk_size=500), iterations_per_token=0
        )
        assert compute_digest(bundle, chunked) != base

    def test_digest_ignores_serving_config(self, bundle):
        # Serving knobs (chat model, latency, resilience) don't change
        # what gets indexed, so they must not fragment the cache.
        a = compute_digest(bundle, WorkflowConfig(iterations_per_token=0))
        b = compute_digest(bundle, WorkflowConfig(chat_model="llama-3-sim"))
        assert a == b

    def test_build_stamps_matching_digest(self, bundle, fast_config, fresh_cache):
        artifact = build_index(bundle, fast_config)
        assert artifact.digest == compute_digest(bundle, fast_config)
        assert len(artifact.chunks) > 0
        assert len(artifact.store) == len(artifact.chunks)


class TestMemoryCache:
    def test_one_build_many_consumers(self, bundle, fast_config, fresh_cache):
        reg = MetricsRegistry()
        with use_registry(reg):
            first = get_or_build_index(bundle, fast_config)
            second = get_or_build_index(bundle, fast_config)
            third = get_or_build_index(bundle, fast_config)
        assert first is second is third
        assert reg.counter("repro.index.builds").value == 1
        assert reg.counter("repro.index.memory_hits").value == 2

    def test_different_config_builds_again(self, bundle, fast_config, fresh_cache):
        reg = MetricsRegistry()
        other = WorkflowConfig(
            retrieval=RetrievalConfig(chunk_size=500), iterations_per_token=0
        )
        with use_registry(reg):
            a = get_or_build_index(bundle, fast_config)
            b = get_or_build_index(bundle, other)
        assert a is not b
        assert a.digest != b.digest
        assert reg.counter("repro.index.builds").value == 2


class TestDiskCache:
    def test_rebuild_from_disk_same_digest(self, bundle, fast_config, tmp_path, fresh_cache):
        reg = MetricsRegistry()
        with use_registry(reg):
            built = get_or_build_index(bundle, fast_config, cache_dir=tmp_path)
            clear_index_cache()  # force the next call past the memory tier
            loaded = get_or_build_index(bundle, fast_config, cache_dir=tmp_path)
        assert reg.counter("repro.index.builds").value == 1
        assert reg.counter("repro.index.disk_writes").value == 1
        assert reg.counter("repro.index.disk_hits").value == 1
        assert loaded.digest == built.digest
        assert len(loaded.chunks) == len(built.chunks)
        # The restored store answers identically to the built one.
        query = "How do I set the KSP tolerance?"
        a = [(d.doc_id, round(s, 9)) for d, s in built.store.similarity_search_with_score(query, k=5)]
        b = [(d.doc_id, round(s, 9)) for d, s in loaded.store.similarity_search_with_score(query, k=5)]
        assert a == b

    def test_save_load_roundtrip(self, bundle, fast_config, tmp_path, fresh_cache):
        artifact = build_index(bundle, fast_config)
        root = save_artifact(artifact, tmp_path)
        manifest = json.loads((root / "artifact.json").read_text())
        assert manifest["digest"] == artifact.digest
        restored = load_artifact(bundle, fast_config, tmp_path)
        assert isinstance(restored, IndexArtifact)
        assert restored.digest == artifact.digest

    def test_missing_entry_raises(self, bundle, fast_config, tmp_path):
        with pytest.raises(IndexBuildError):
            load_artifact(bundle, fast_config, tmp_path)

    def test_corrupt_manifest_falls_back_to_build(
        self, bundle, fast_config, tmp_path, fresh_cache
    ):
        artifact = build_index(bundle, fast_config)
        root = save_artifact(artifact, tmp_path)
        (root / "artifact.json").write_text('{"digest": "tampered"}')
        with pytest.raises(IndexBuildError):
            load_artifact(bundle, fast_config, tmp_path)
        reg = MetricsRegistry()
        with use_registry(reg):
            rebuilt = get_or_build_index(bundle, fast_config, cache_dir=tmp_path)
        assert rebuilt.digest == artifact.digest
        assert reg.counter("repro.index.builds").value == 1
        # The corrupt entry was overwritten with a valid one.
        assert json.loads((root / "artifact.json").read_text())["digest"] == artifact.digest


class TestArtifactImmutability:
    def test_fork_isolates_mutations(self, bundle, fast_config, fresh_cache):
        from repro.documents import Document

        artifact = get_or_build_index(bundle, fast_config)
        before = len(artifact.store)
        fork = artifact.fork_store()
        fork._add_documents([Document(text="scratch note", metadata={"source": "x"})])
        assert len(fork) == before + 1
        assert len(artifact.store) == before

    def test_keyword_search_from_artifact(self, bundle, fast_config, fresh_cache):
        artifact = get_or_build_index(bundle, fast_config)
        hits = artifact.keyword_search().retrieve("What does KSPSolve do?", k=2)
        assert any(
            h.document.metadata.get("source") == "manualpages/KSPSolve.md" for h in hits
        )
