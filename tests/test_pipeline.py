"""Tests for the RAG pipelines and the augmented workflow."""

from __future__ import annotations

import pytest

from repro.config import RetrievalConfig, WorkflowConfig
from repro.errors import ConfigurationError
from repro.pipeline import build_rag_pipeline, build_workflow
from repro.prompts import parse_rag_prompt


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkflowConfig().validate()

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            RetrievalConfig(first_pass_k=0).validate()

    def test_l_greater_than_k(self):
        with pytest.raises(ConfigurationError):
            RetrievalConfig(first_pass_k=4, final_l=8).validate()

    def test_unknown_reranker(self):
        with pytest.raises(ConfigurationError):
            RetrievalConfig(reranker="bogus").validate()

    def test_bad_chunking(self):
        with pytest.raises(ConfigurationError):
            RetrievalConfig(chunk_size=100, chunk_overlap=100).validate()


class TestModes:
    def test_mode_names(self, baseline_pipeline, rag_pipeline, rerank_pipeline):
        assert baseline_pipeline.mode == "baseline"
        assert rag_pipeline.mode == "rag"
        assert rerank_pipeline.mode == "rag+rerank"

    def test_unknown_mode(self, bundle, fast_config):
        with pytest.raises(ConfigurationError):
            build_rag_pipeline(bundle, fast_config, mode="turbo")

    def test_baseline_has_no_contexts(self, baseline_pipeline):
        res = baseline_pipeline.answer("What is the default KSP type?")
        assert res.contexts == []
        assert res.rag_seconds == 0.0
        assert not parse_rag_prompt(res.prompt).has_context

    def test_rag_contexts_bounded_by_l(self, rag_pipeline):
        res = rag_pipeline.answer("What is the default KSP type?")
        assert 0 < len(res.contexts) <= rag_pipeline.final_l
        assert len(res.candidates) >= len(res.contexts)

    def test_rerank_origin_tagged(self, rerank_pipeline):
        res = rerank_pipeline.answer("What is the default KSP type?")
        assert all(c.origin.startswith("rerank[") for c in res.contexts)

    def test_keyword_hits_included(self, rag_pipeline):
        res = rag_pipeline.answer("What does KSPSolve do?")
        sources = [c.document.metadata.get("source") for c in res.candidates]
        assert "manualpages/KSPSolve.md" in sources

    def test_timing_recorded(self, rerank_pipeline):
        res = rerank_pipeline.answer("How do I set tolerances?")
        assert res.rag_seconds > 0
        assert res.llm_seconds > 0
        # total derives from the root pipeline span, which also covers
        # work between the stage spans — never less than their sum.
        assert res.total_seconds >= res.rag_seconds + res.llm_seconds
        assert res.total_seconds == res.trace.root.duration

    def test_prompt_contains_contexts(self, rag_pipeline):
        res = rag_pipeline.answer("How do I monitor the residual?")
        parsed = parse_rag_prompt(res.prompt)
        assert parsed.has_context
        for c in res.contexts:
            assert c.document.text[:40] in parsed.context


class TestInvalidConstruction:
    def test_keyword_without_retriever(self, bundle, keyword_search, fast_config):
        from repro.llm import create_chat_model
        from repro.pipeline.rag import RAGPipeline

        chat = create_chat_model("gpt-4o-sim", registry=bundle.registry, iterations_per_token=0)
        # The deprecated keyword_search= shim is gone; the constructor
        # rejects the kwarg outright instead of warning and mapping it.
        with pytest.raises(TypeError):
            RAGPipeline(chat, keyword_search=keyword_search)
        with pytest.raises(ConfigurationError):
            RAGPipeline(chat, priority_retrievers=[keyword_search])

    def test_bad_l(self, bundle, fast_config):
        from repro.llm import create_chat_model
        from repro.pipeline.rag import RAGPipeline
        from repro.retrieval import VectorRetriever

        chat = create_chat_model("gpt-4o-sim", registry=bundle.registry, iterations_per_token=0)
        with pytest.raises(ConfigurationError):
            RAGPipeline(chat, retriever=None, first_pass_k=8, final_l=0)


class TestWorkflow:
    @pytest.fixture(scope="class")
    def workflow(self, bundle, fast_config):
        return build_workflow(bundle, fast_config, mode="rag+rerank")

    def test_ask_returns_html(self, workflow):
        ans = workflow.ask("How do I print the residual norm at each iteration?")
        assert "<p>" in ans.html or "<ul>" in ans.html

    def test_history_recorded(self, workflow):
        before = len(workflow.store)
        workflow.ask("What is the default preconditioner?")
        assert len(workflow.store) == before + 1
        rec = workflow.store.all()[-1]
        assert rec.mode == "rag+rerank"
        assert rec.chat_model == "gpt-4o-sim"
        assert rec.embedding_model == "petsc-embed-large"
        assert rec.context_sources

    def test_code_blocks_checked(self, workflow):
        ans = workflow.ask("How do I monitor the residual with -ksp_monitor?")
        # The simulated model emits a console example for option answers.
        assert ans.code_checks
        assert ans.all_code_ok

    def test_tags_stored(self, workflow):
        ans = workflow.ask("What is KSPGMRES?", tags=["unit-test"])
        rec = workflow.store.get(ans.interaction_id)
        assert "unit-test" in rec.tags

    def test_no_record_when_disabled(self, bundle):
        wf = build_workflow(
            bundle,
            WorkflowConfig(iterations_per_token=0, record_history=False),
            mode="baseline",
        )
        wf.ask("anything")
        assert len(wf.store) == 0
