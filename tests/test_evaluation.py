"""Tests for rubric, benchmark, grader, experiments, and reporting."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.evaluation import (
    BenchmarkQuestion,
    BlindGrader,
    Score,
    compare_modes,
    krylov_benchmark,
    render_comparison,
    render_latency_table,
    render_score_histogram,
    rubric_label,
    run_experiment,
)
from repro.evaluation.benchmark import validate_benchmark
from repro.evaluation.experiments import ExperimentRun
from repro.utils.timing import TimingStats


class TestRubric:
    def test_labels(self):
        assert "Nonsensical" in rubric_label(0)
        assert "Ideal" in rubric_label(4)

    def test_out_of_range(self):
        with pytest.raises(EvaluationError):
            rubric_label(5)

    def test_ordering(self):
        assert Score.IDEAL > Score.CORRECT > Score.MINOR_INACCURACIES


class TestBenchmark:
    def test_exactly_37_questions(self):
        assert len(krylov_benchmark()) == 37

    def test_gold_facts_resolve(self, registry):
        validate_benchmark(registry)

    def test_one_nonexistent_probe(self):
        kinds = [q.kind for q in krylov_benchmark()]
        assert kinds.count("nonexistent") == 1

    def test_standard_needs_key_facts(self):
        with pytest.raises(EvaluationError):
            BenchmarkQuestion(qid="QX", text="t")

    def test_invalid_kind(self):
        with pytest.raises(EvaluationError):
            BenchmarkQuestion(qid="QX", text="t", kind="weird")


class TestGraderStandard:
    @pytest.fixture()
    def question(self, registry):
        return BenchmarkQuestion(
            qid="QT", text="Can KSP solve rectangular systems?",
            key_facts=("ksplsqr.rectangular", "ksplsqr.no_invert"),
            extra_facts=("ksplsqr.normal_equiv",),
        )

    def test_ideal_answer(self, grader, registry, question):
        answer = "\n\n".join(registry.statement(f) for f in question.all_facts())
        assert grader.grade(question, answer).score == Score.IDEAL

    def test_correct_without_extras(self, grader, registry, question):
        answer = "\n\n".join(registry.statement(f) for f in question.key_facts)
        g = grader.grade(question, answer)
        assert g.score == Score.CORRECT
        assert g.extra_missing == ("ksplsqr.normal_equiv",)

    def test_half_coverage(self, grader, registry, question):
        g = grader.grade(question, registry.statement("ksplsqr.rectangular"))
        assert g.score == Score.MINOR_INACCURACIES

    def test_falsehood_scores_one(self, grader, registry, question):
        answer = (
            registry.statement("ksplsqr.rectangular")
            + "\n\n"
            + registry.falsehood("false.lsqr_square_only").statement
        )
        g = grader.grade(question, answer)
        assert g.score == Score.INCORRECT
        assert "false.lsqr_square_only" in g.falsehoods

    def test_pure_fabrication_scores_zero(self, grader, registry, question):
        answer = registry.falsehood("false.kspburb").statement
        g = grader.grade(question, answer)
        assert g.score == Score.NONSENSICAL

    def test_off_topic_scores_one(self, grader, registry, question):
        g = grader.grade(question, registry.statement("pcgamg.amg"))
        assert g.score == Score.INCORRECT

    def test_generic_fabrication_detected(self, grader, question):
        g = grader.grade(question, "KSPQuux is a new solver that handles this.")
        assert "KSPQuux" in g.fabrications

    def test_non_string_rejected(self, grader, question):
        with pytest.raises(EvaluationError):
            grader.grade(question, None)  # type: ignore[arg-type]


class TestGraderNonexistent:
    @pytest.fixture()
    def question(self):
        return next(q for q in krylov_benchmark() if q.kind == "nonexistent")

    def test_refusal_is_ideal(self, grader, question):
        g = grader.grade(question, "There is no PETSc function or object named KSPBurb.")
        assert g.score == Score.IDEAL
        assert g.refusal

    def test_fabrication_is_nonsensical(self, grader, registry, question):
        g = grader.grade(question, registry.falsehood("false.kspburb").statement)
        assert g.score == Score.NONSENSICAL

    def test_neither_is_incorrect(self, grader, question):
        g = grader.grade(question, "It configures the solver in some way.")
        assert g.score == Score.INCORRECT


class TestExperiments:
    @pytest.fixture(scope="class")
    def subset(self):
        return krylov_benchmark()[:5]

    def test_run_experiment(self, baseline_pipeline, grader, subset):
        run = run_experiment(baseline_pipeline, grader, questions=subset)
        assert len(run.outcomes) == 5
        assert run.mode == "baseline"
        assert set(run.scores()) == {q.qid for q in subset}
        assert sum(run.score_histogram().values()) == 5
        assert 0 <= run.mean_score() <= 4

    def test_compare(self, baseline_pipeline, rerank_pipeline, grader, subset):
        base = run_experiment(baseline_pipeline, grader, questions=subset)
        new = run_experiment(rerank_pipeline, grader, questions=subset)
        cmp_ = compare_modes(base, new)
        assert len(cmp_.deltas) == 5
        assert set(cmp_.improved) | set(cmp_.worsened) | set(cmp_.unchanged) == set(cmp_.deltas)

    def test_compare_mismatched_rejected(self, baseline_pipeline, grader):
        a = run_experiment(baseline_pipeline, grader, questions=krylov_benchmark()[:2])
        b = run_experiment(baseline_pipeline, grader, questions=krylov_benchmark()[2:4])
        with pytest.raises(EvaluationError):
            compare_modes(a, b)

    def test_timing_collected(self, rerank_pipeline, grader, subset):
        run = run_experiment(rerank_pipeline, grader, questions=subset)
        assert run.rag_stats() is not None
        assert run.llm_stats().count == 5

    def test_baseline_has_no_rag_stats(self, baseline_pipeline, grader, subset):
        run = run_experiment(baseline_pipeline, grader, questions=subset)
        assert run.rag_stats() is None

    def test_empty_mean_rejected(self):
        with pytest.raises(EvaluationError):
            ExperimentRun(mode="x", model="y").mean_score()


class TestReporting:
    def test_render_comparison(self, baseline_pipeline, rerank_pipeline, grader):
        subset = krylov_benchmark()[:3]
        base = run_experiment(baseline_pipeline, grader, questions=subset)
        new = run_experiment(rerank_pipeline, grader, questions=subset)
        text = render_comparison(compare_modes(base, new), title="Fig 6x")
        assert "Fig 6x" in text
        assert "improved:" in text
        for q in subset:
            assert q.qid in text

    def test_render_histogram(self, baseline_pipeline, grader):
        run = run_experiment(baseline_pipeline, grader, questions=krylov_benchmark()[:3])
        text = render_score_histogram(run, title="baseline")
        assert "score 4" in text and "mean score" in text

    def test_render_latency_table(self):
        rag = TimingStats.from_samples([0.16, 0.44, 3.11])
        rerank = TimingStats.from_samples([0.48, 1.05, 5.71])
        llm_a = TimingStats.from_samples([2.74, 9.56, 16.47])
        llm_b = TimingStats.from_samples([2.28, 9.63, 15.62])
        text = render_latency_table(rag, rerank, llm_a, llm_b)
        assert "RAG time" in text and "LLM response" in text
        assert "multiplies RAG time" in text
