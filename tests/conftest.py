"""Shared fixtures: one corpus / store / pipeline set per test session."""

from __future__ import annotations

import pytest

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus import build_default_corpus
from repro.corpus.builder import chunk_corpus
from repro.embeddings import create_embedding_model
from repro.evaluation import BlindGrader
from repro.pipeline import build_rag_pipeline
from repro.retrieval import ManualPageKeywordSearch
from repro.vectorstore import VectorStore


@pytest.fixture(scope="session")
def bundle():
    return build_default_corpus()


@pytest.fixture(scope="session")
def registry(bundle):
    return bundle.registry


@pytest.fixture(scope="session")
def chunks(bundle):
    return chunk_corpus(bundle)


@pytest.fixture(scope="session")
def embedding(chunks):
    return create_embedding_model(
        "petsc-embed-large", corpus_texts=[c.text for c in chunks]
    )


@pytest.fixture(scope="session")
def store(chunks, embedding):
    return VectorStore.from_documents(chunks, embedding)


@pytest.fixture(scope="session")
def keyword_search(bundle):
    return ManualPageKeywordSearch(bundle)


@pytest.fixture(scope="session")
def fast_config():
    """Workflow config with the latency burn disabled."""
    return WorkflowConfig(iterations_per_token=0)


@pytest.fixture(scope="session")
def grader(bundle, keyword_search):
    return BlindGrader(
        registry=bundle.registry, known_identifiers=keyword_search.known_identifiers()
    )


@pytest.fixture(scope="session")
def baseline_pipeline(bundle, fast_config):
    return build_rag_pipeline(bundle, fast_config, mode="baseline")


@pytest.fixture(scope="session")
def rag_pipeline(bundle, fast_config):
    return build_rag_pipeline(bundle, fast_config, mode="rag")


@pytest.fixture(scope="session")
def rerank_pipeline(bundle, fast_config):
    return build_rag_pipeline(bundle, fast_config, mode="rag+rerank")
