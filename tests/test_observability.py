"""Observability layer: span trees, metrics registry, typed pipeline enums.

Covers the determinism contract (structure digests and metric digests
are pure functions of the workload and seed), the degradation-ladder ×
tracing matrix (every rung shows up as a span event), and the enum
round-trips that keep the history JSONL schema unchanged.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WorkflowConfig
from repro.errors import ConfigurationError, ObservabilityError, TransientError
from repro.history import InteractionStore
from repro.llm.base import ChatMessage, ChatModel, CompletionResult, TokenUsage
from repro.observability import (
    MetricsRegistry,
    TickClock,
    Trace,
    Tracer,
    get_registry,
    stage,
    use_registry,
)
from repro.pipeline import (
    DegradationEvent,
    PipelineMode,
    build_rag_pipeline,
)
from repro.pipeline.rag import RAGPipeline
from repro.rerank.base import Reranker
from repro.resilience import FaultConfig, FaultInjector, RetryPolicy
from repro.retrieval import VectorRetriever
from repro.retrieval.base import RetrievedDocument, Retriever


# ---------------------------------------------------------------- test doubles
class OkModel(ChatModel):
    name = "ok"

    def complete(self, messages: list[ChatMessage], *, ctx=None) -> CompletionResult:
        self._check_messages(messages)
        return CompletionResult(text="the answer", model=self.name, usage=TokenUsage(3, 2))


class FlakyModel(ChatModel):
    name = "flaky"

    def __init__(self, fail_first: int = 0) -> None:
        self.fail_first = fail_first
        self.calls = 0

    def complete(self, messages: list[ChatMessage], *, ctx=None) -> CompletionResult:
        self._check_messages(messages)
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransientError(f"flaky transport (call {self.calls})")
        return CompletionResult(text="the answer", model=self.name, usage=TokenUsage(3, 2))


class TruncatingModel(ChatModel):
    name = "truncating"

    def complete(self, messages: list[ChatMessage], *, ctx=None) -> CompletionResult:
        self._check_messages(messages)
        return CompletionResult(
            text="cut sh", model=self.name, usage=TokenUsage(3, 1), finish_reason="length"
        )


class FailingRetriever(Retriever):
    name = "failing"

    def retrieve(self, query: str, *, k: int = 8, ctx=None) -> list[RetrievedDocument]:
        raise TransientError("retrieval backend down")


class FailingReranker(Reranker):
    name = "failing"

    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        raise TransientError("reranker backend down")


# ---------------------------------------------------------------- trace core
class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=TickClock())
        with tracer.trace("pipeline") as trace:
            with tracer.span("locate"):
                with tracer.span("vector"):
                    pass
            with tracer.span("llm"):
                pass
        root = trace.root
        assert [c.name for c in root.children] == ["locate", "llm"]
        assert [c.name for c in root.children[0].children] == ["vector"]
        assert trace.validate() == []

    def test_tick_clock_gives_exact_durations(self):
        tracer = Tracer(clock=TickClock(step=1.0))
        with tracer.trace("pipeline") as trace:
            with tracer.span("llm"):
                pass
        # root opens at 0, llm spans [1, 2], root closes at 3.
        assert trace.stage_seconds("llm") == 1.0
        assert trace.root.duration == 3.0

    def test_exception_marks_span_error_with_event(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(ValueError):
            with tracer.trace("pipeline") as trace:
                with tracer.span("llm"):
                    raise ValueError("boom")
        llm = trace.find("llm")[0]
        assert llm.status == "error"
        assert llm.event_names() == ["error:ValueError"]
        assert trace.root.status == "error"
        assert trace.validate() == []

    def test_nested_trace_rejected(self):
        tracer = Tracer(clock=TickClock())
        with tracer.trace("pipeline"):
            with pytest.raises(ObservabilityError):
                with tracer.trace("pipeline"):
                    pass

    def test_span_requires_active_trace(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(ObservabilityError):
            with tracer.span("orphan"):
                pass

    def test_event_is_noop_outside_trace(self):
        Tracer(clock=TickClock()).event("nobody-listening")  # must not raise

    def test_validate_flags_malformed_trees(self):
        tracer = Tracer(clock=TickClock())
        with tracer.trace("pipeline") as trace:
            with tracer.span("llm"):
                pass
        llm = trace.find("llm")[0]
        llm.end = None
        assert any("never finished" in p for p in trace.validate())
        llm.end = llm.start - 1.0
        assert any("before start" in p for p in trace.validate())
        llm.end = trace.root.end + 99.0
        assert any("escapes parent" in p for p in trace.validate())

    def test_roundtrip_preserves_structure_and_relative_times(self):
        tracer = Tracer(clock=TickClock(start=100.0, step=0.5))
        with tracer.trace("pipeline", mode="rag") as trace:
            with tracer.span("llm", model="ok") as span:
                span.add_event("llm:retried", at=tracer.clock(), attempts=2)
        restored = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert restored.structure_digest() == trace.structure_digest()
        assert restored.root.start == 0.0  # times are origin-relative
        assert restored.root.attributes == {"mode": "rag"}
        assert restored.find("llm")[0].events[0].attributes == {"attempts": 2}
        assert restored.root.duration == pytest.approx(trace.root.duration)

    def test_structure_digest_ignores_timing(self):
        def build(step: float) -> Trace:
            tracer = Tracer(clock=TickClock(step=step))
            with tracer.trace("pipeline") as trace:
                with tracer.span("locate"):
                    pass
                tracer.event("rerank:truncate")
            return trace

        assert build(1.0).structure_digest() == build(37.5).structure_digest()

    def test_structure_digest_sees_shape_changes(self):
        tracer = Tracer(clock=TickClock())
        with tracer.trace("pipeline") as a:
            with tracer.span("locate"):
                pass
        tracer2 = Tracer(clock=TickClock())
        with tracer2.trace("pipeline") as b:
            with tracer2.span("locate"):
                pass
            with tracer2.span("llm"):
                pass
        assert a.structure_digest() != b.structure_digest()

    def test_render_shows_tree_and_events(self):
        tracer = Tracer(clock=TickClock(step=0.001))
        with tracer.trace("pipeline") as trace:
            with tracer.span("llm", model="ok"):
                tracer.event("llm:retried", attempts=2)
        text = trace.render()
        assert "pipeline" in text and "└─ llm" in text
        assert "• llm:retried attempts=2" in text


# ---------------------------------------------------------------- metrics core
class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.test.calls")
        c.inc(2)
        assert reg.counter("repro.test.calls").value == 2

    def test_name_convention_enforced(self):
        reg = MetricsRegistry()
        for bad in ("calls", "repro.calls", "repro.Test.calls", "other.test.calls"):
            with pytest.raises(ObservabilityError):
                reg.counter(bad)

    def test_cross_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.thing")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro.test.thing")

    def test_counter_cannot_decrease(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("repro.test.calls").inc(-1)

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro.test.sizes", (1.0, 10.0), deterministic=True)
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "inf": 1}
        assert snap["count"] == 3

    def test_digest_excludes_wall_clock_histograms(self):
        def run(duration: float) -> str:
            reg = MetricsRegistry()
            reg.counter("repro.test.calls").inc()
            reg.histogram("repro.test.duration_ms").observe(duration)
            return reg.digest()

        assert run(1.0) == run(999.0)

    def test_digest_sees_deterministic_values(self):
        def run(attempts: int) -> str:
            reg = MetricsRegistry()
            reg.histogram("repro.test.attempts", (1.0, 4.0), deterministic=True).observe(attempts)
            return reg.digest()

        assert run(1) != run(3)

    def test_use_registry_scopes_lookups(self):
        inner = MetricsRegistry()
        with use_registry(inner):
            assert get_registry() is inner
            get_registry().counter("repro.test.calls").inc()
        assert get_registry() is not inner
        assert inner.counter("repro.test.calls").value == 1

    def test_render_text_lists_instruments(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.calls").inc(3)
        reg.gauge("repro.test.depth").set(2)
        text = reg.render_text()
        assert "repro.test.calls" in text and "3" in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"


# ---------------------------------------------------------------- stage helper
class TestStageHelper:
    def test_stage_registers_all_three_instruments(self):
        reg = MetricsRegistry()
        tracer = Tracer(clock=TickClock())
        with tracer.trace("pipeline"):
            with stage("hop", metric="repro.test.hop", tracer=tracer, registry=reg) as span:
                assert span is not None and span.name == "hop"
        assert reg.counter("repro.test.hop.requests").value == 1
        assert reg.histogram("repro.test.hop.duration_ms").count == 1
        assert reg.counter("repro.test.hop.failures").value == 0

    def test_stage_counts_failures_and_reraises(self):
        reg = MetricsRegistry()
        with pytest.raises(TransientError):
            with stage("hop", metric="repro.test.hop", registry=reg):
                raise TransientError("down")
        assert reg.counter("repro.test.hop.failures").value == 1
        assert reg.histogram("repro.test.hop.duration_ms").count == 1

    def test_stage_without_tracer_yields_none(self):
        with stage("hop", metric="repro.test.hop", registry=MetricsRegistry()) as span:
            assert span is None


# ---------------------------------------------------------------- typed enums
class TestTypedEnums:
    def test_mode_round_trips_by_value(self):
        for mode in PipelineMode:
            assert PipelineMode(str(mode)) is mode
            assert PipelineMode.coerce(mode.value) is mode

    def test_mode_compares_and_serializes_as_string(self):
        assert PipelineMode.RAG_RERANK == "rag+rerank"
        assert f"{PipelineMode.BASELINE}" == "baseline"
        assert json.dumps({"mode": PipelineMode.RAG}) == '{"mode": "rag"}'

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineMode.coerce("turbo")

    def test_degradation_event_round_trips(self):
        for event in DegradationEvent:
            assert DegradationEvent.coerce(str(event)) is event
        assert DegradationEvent.RERANK_TRUNCATE == "rerank:truncate"
        with pytest.raises(ConfigurationError):
            DegradationEvent.coerce("llm:exploded")

    def test_metric_suffix_is_a_valid_segment(self):
        reg = MetricsRegistry()
        for event in DegradationEvent:
            reg.counter(f"repro.pipeline.degradation.{event.metric_suffix}")

    def test_build_pipeline_accepts_enum_and_string(self, bundle, fast_config):
        by_str = build_rag_pipeline(bundle, fast_config, mode="baseline")
        by_enum = build_rag_pipeline(bundle, fast_config, mode=PipelineMode.BASELINE)
        assert by_str.mode is PipelineMode.BASELINE
        assert by_enum.mode is PipelineMode.BASELINE
        with pytest.raises(ConfigurationError):
            build_rag_pipeline(bundle, fast_config, mode="turbo")

    def test_history_schema_unchanged_on_disk(self, tmp_path):
        store = InteractionStore()
        pipeline = RAGPipeline(
            FlakyModel(fail_first=1),
            retriever=FailingRetriever(),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        store.record_pipeline_result(pipeline.answer("q"))
        path = tmp_path / "history.jsonl"
        store.save(path)
        obj = json.loads(path.read_text().splitlines()[0])
        # Wire strings exactly as the resilience PR wrote them.
        assert obj["mode"] == "rag"
        assert obj["degraded"] == ["retrieval:baseline-fallback"]
        loaded = InteractionStore.load(path)
        rec = loaded.all()[0]
        assert rec.degraded == ["retrieval:baseline-fallback"]
        assert rec.trace is not None

    def test_old_records_without_trace_still_load(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(
            json.dumps(
                {
                    "interaction_id": "int-000001",
                    "question": "q",
                    "answer": "a",
                    "timestamp": 1.0,
                    "mode": "rag",
                    "degraded": [],
                }
            )
            + "\n"
        )
        rec = InteractionStore.load(path).all()[0]
        assert rec.trace is None


# ---------------------------------------------------------------- pipeline tracing
class TestPipelineTracing:
    def test_clean_run_span_tree_shape(self, store, keyword_search):
        pipeline = RAGPipeline(
            OkModel(),
            retriever=VectorRetriever(store),
            priority_retrievers=[keyword_search],
            metrics=MetricsRegistry(),
        )
        result = pipeline.answer("What restart does GMRES use?")
        trace = result.trace
        assert trace is not None and trace.validate() == []
        assert [c.name for c in trace.root.children] == ["locate", "refine", "llm"]
        locate = trace.find("locate")[0]
        assert [c.name for c in locate.children] == ["keyword", "vector"]
        assert trace.find("llm")[0].children[0].name == "attempt"
        assert trace.root.attributes["mode"] == "rag"

    def test_timing_properties_derive_from_trace(self, store):
        pipeline = RAGPipeline(
            OkModel(), retriever=VectorRetriever(store), metrics=MetricsRegistry()
        )
        result = pipeline.answer("q")
        trace = result.trace
        expected_rag = trace.stage_seconds("locate") + trace.stage_seconds("refine")
        assert result.rag_seconds == expected_rag
        assert result.llm_seconds == trace.stage_seconds("llm")
        # total is the root span's duration: at least the stage sum,
        # plus whatever ran between the stages.
        assert result.total_seconds == trace.root.duration
        assert result.total_seconds >= result.rag_seconds + result.llm_seconds
        assert result.rag_seconds > 0 and result.llm_seconds > 0

    def test_baseline_has_no_rag_spans(self):
        result = RAGPipeline(OkModel(), metrics=MetricsRegistry()).answer("q")
        assert result.rag_seconds == 0.0
        assert result.trace.find("locate") == []

    def test_trace_persists_into_history(self, tmp_path):
        store = InteractionStore()
        result = RAGPipeline(OkModel(), metrics=MetricsRegistry()).answer("q")
        store.record_pipeline_result(result)
        path = tmp_path / "h.jsonl"
        store.save(path)
        rec = InteractionStore.load(path).all()[0]
        restored = Trace.from_dict(rec.trace)
        assert restored.structure_digest() == result.trace.structure_digest()

    def test_trace_recording_can_be_disabled(self):
        store = InteractionStore()
        result = RAGPipeline(OkModel(), metrics=MetricsRegistry()).answer("q")
        rec = store.record_pipeline_result(result, include_trace=False)
        assert rec.trace is None

    def test_pipeline_metrics_reach_registry(self, store):
        reg = MetricsRegistry()
        pipeline = RAGPipeline(OkModel(), retriever=VectorRetriever(store), metrics=reg)
        pipeline.answer("q")
        snap = reg.snapshot()["counters"]
        assert snap["repro.pipeline.requests"] == 1
        assert snap["repro.pipeline.locate.requests"] == 1
        assert snap["repro.retrieval.vector.requests"] == 1
        assert snap["repro.llm.completions"] == 1
        assert snap["repro.llm.prompt_tokens"] == 3

    def test_failure_counts_into_registry(self):
        reg = MetricsRegistry()
        pipeline = RAGPipeline(FlakyModel(fail_first=10), metrics=reg)
        with pytest.raises(TransientError):
            pipeline.answer("q")
        assert reg.counter("repro.pipeline.failures").value == 1
        assert reg.counter("repro.pipeline.llm.failures").value == 1


# ---------------------------------------------------------------- ladder × tracing
class TestDegradationLadderTracing:
    def test_retrieval_fallback_is_a_root_event(self):
        pipeline = RAGPipeline(
            OkModel(), retriever=FailingRetriever(), metrics=MetricsRegistry()
        )
        result = pipeline.answer("q")
        assert result.degraded == [DegradationEvent.RETRIEVAL_BASELINE_FALLBACK]
        trace = result.trace
        assert "retrieval:baseline-fallback" in trace.root.event_names()
        locate = trace.find("locate")[0]
        assert locate.status == "error"
        assert trace.validate() == []

    def test_rerank_truncate_is_a_root_event(self, store):
        pipeline = RAGPipeline(
            OkModel(),
            retriever=VectorRetriever(store),
            reranker=FailingReranker(),
            metrics=MetricsRegistry(),
        )
        result = pipeline.answer("q")
        assert result.degraded == [DegradationEvent.RERANK_TRUNCATE]
        assert "rerank:truncate" in result.trace.root.event_names()
        assert result.trace.find("refine")[0].status == "error"
        assert result.trace.validate() == []

    def test_llm_truncation_is_a_root_event(self):
        result = RAGPipeline(TruncatingModel(), metrics=MetricsRegistry()).answer("q")
        assert result.degraded == [DegradationEvent.LLM_TRUNCATED]
        assert "llm:truncated" in result.trace.root.event_names()

    def test_retries_appear_as_attempt_spans_and_event(self):
        reg = MetricsRegistry()
        pipeline = RAGPipeline(
            FlakyModel(fail_first=2), retry_policy=RetryPolicy(max_attempts=4), metrics=reg
        )
        # The resilience layer reports via the ambient registry.
        with use_registry(reg):
            result = pipeline.answer("q")
        assert result.attempts == 3
        llm = result.trace.find("llm")[0]
        attempts = [c for c in llm.children if c.name == "attempt"]
        assert [a.attributes["index"] for a in attempts] == [1, 2, 3]
        assert [a.status for a in attempts] == ["error", "error", "ok"]
        assert "llm:retried" in llm.event_names()
        assert reg.counter("repro.resilience.retries").value == 2
        assert result.trace.validate() == []

    def test_degradation_counters_per_rung(self):
        reg = MetricsRegistry()
        RAGPipeline(
            TruncatingModel(), retriever=FailingRetriever(), metrics=reg
        ).answer("q")
        snap = reg.snapshot()["counters"]
        assert snap["repro.pipeline.degradations"] == 2
        assert snap["repro.pipeline.degradation.retrieval_baseline_fallback"] == 1
        assert snap["repro.pipeline.degradation.llm_truncated"] == 1

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        transient=st.floats(min_value=0.0, max_value=0.45),
        truncate=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_span_trees_well_formed_under_any_faults(self, seed, transient, truncate):
        """Property: whatever the fault schedule does, every produced
        trace is a well-formed tree and every degradation rung taken is
        also a root span event."""
        injector = FaultInjector(
            seed, FaultConfig(transient_rate=transient, truncation_rate=truncate)
        )
        model = injector.wrap_model(FlakyModel())
        pipeline = RAGPipeline(
            model,
            retriever=injector.wrap_retriever(FailingRetriever() if seed % 7 == 0 else _EchoRetriever()),
            retry_policy=RetryPolicy(max_attempts=3),
            metrics=MetricsRegistry(),
        )
        for q in ("q1", "q2"):
            try:
                result = pipeline.answer(q)
            except TransientError:
                continue
            assert result.trace is not None
            assert result.trace.validate() == []
            root_events = set(result.trace.root.event_names())
            for rung in result.degraded:
                assert str(rung) in root_events


class _EchoRetriever(Retriever):
    name = "echo"

    def retrieve(self, query: str, *, k: int = 8, ctx=None) -> list[RetrievedDocument]:
        return []


# ---------------------------------------------------------------- determinism
class TestEndToEndDeterminism:
    def test_same_seed_same_digests(self, bundle, fast_config):
        from repro.index import get_or_build_index

        # Resolve the shared artifact before scoping a registry: whether
        # a call builds or hits the cache depends on process history, so
        # those counters must stay out of the compared registries.
        get_or_build_index(bundle, fast_config)

        def run(seed: int) -> tuple[str, list[str]]:
            injector = FaultInjector(seed, FaultConfig(transient_rate=0.3))
            reg = MetricsRegistry()
            with use_registry(reg):
                pipeline = build_rag_pipeline(
                    bundle, fast_config, fault_injector=injector
                )
                digests = []
                for q in ("How do I set the KSP tolerance?", "What is GMRES?"):
                    result = pipeline.answer(q)
                    digests.append(result.trace.structure_digest())
            return reg.digest(), digests

        assert run(3) == run(3)
        # A different seed perturbs the metric digest (different fault mix).
        assert run(3)[0] != run(4)[0]


# ---------------------------------------------------------------- deprecation
class TestRemovedKeywordShim:
    def test_keyword_search_kwarg_rejected(self, store, keyword_search):
        # The deprecation window is over: the old kwarg fails cleanly
        # instead of warning and mapping to priority_retrievers.
        with pytest.raises(TypeError, match="keyword_search"):
            RAGPipeline(
                OkModel(),
                retriever=VectorRetriever(store),
                keyword_search=keyword_search,
                metrics=MetricsRegistry(),
            )

    def test_new_shape_does_not_warn(self, store, keyword_search):
        import warnings as w

        with w.catch_warnings():
            w.simplefilter("error", DeprecationWarning)
            pipeline = RAGPipeline(
                OkModel(),
                retriever=VectorRetriever(store),
                priority_retrievers=[keyword_search],
                metrics=MetricsRegistry(),
            )
        assert pipeline.priority_retrievers == [keyword_search]
