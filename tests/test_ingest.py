"""The unified ingestion lifecycle: one write path for the knowledge base.

Covers the full staged lane (ISSUE 10): content-addressed chunk
identity, typed corpus deltas, lineage-aware delta builds that re-embed
only changed chunks, artifact epochs on the live engine, scoped cache
invalidation, the live-store insertion path, and the deprecation of
direct ``VectorStore.add_documents`` mutation.
"""

from __future__ import annotations

import copy
import json
import warnings

import pytest

from repro.api import open_engine
from repro.config import IngestConfig, ReproConfig, RetrievalConfig, ShardingConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus, overlay_tree
from repro.documents import Document
from repro.errors import ConfigurationError, IngestError
from repro.index import (
    build_index,
    build_index_from_parent,
    cache_artifact,
    clear_index_cache,
    config_fingerprint,
    get_or_build_index,
    lineage_parent,
)
from repro.index.builder import compute_digest
from repro.ingest import (
    CorpusDelta,
    apply_documents,
    chunk_address,
    chunk_id,
    delta_from_added_documents,
    diff_chunks,
    ingest_corpus,
    normalized_text,
    source_digest,
)
from repro.observability import MetricsRegistry, use_registry
from repro.vectorstore import VectorStore


EMBED = "petsc-embed-small"  # corpus-free: the delta lane's precondition


@pytest.fixture()
def fresh_cache():
    clear_index_cache()
    yield
    clear_index_cache()


def _cfg(shards: int = 0, **ingest_kw) -> ReproConfig:
    return ReproConfig(
        iterations_per_token=0,
        retrieval=RetrievalConfig(embedding_model=EMBED),
        sharding=ShardingConfig(num_shards=shards),
        ingest=IngestConfig(**ingest_kw),
    )


def _edit_source(bundle, source: str, suffix: str) -> CorpusBundle:
    docs = list(bundle.documents)
    for i, doc in enumerate(docs):
        if doc.metadata.get("source") == source:
            docs[i] = Document(text=doc.text + suffix, metadata=dict(doc.metadata))
            break
    else:
        raise AssertionError(f"no document with source {source!r}")
    return CorpusBundle(
        registry=bundle.registry,
        documents=docs,
        manual_page_names=dict(bundle.manual_page_names),
    )


def _edited(bundle) -> CorpusBundle:
    return _edit_source(
        bundle, "faq.md", "\n\nRevision note: clarified the guidance above.\n"
    )


class TestChunkIdentity:
    def test_normalization_collapses_whitespace(self):
        assert normalized_text("a  b\n\nc\t") == normalized_text(" a b c ")

    def test_address_ignores_whitespace_only_edits(self):
        assert chunk_address("solve with\n KSP", "m.md") == chunk_address(
            "solve  with KSP", "m.md"
        )

    def test_address_separates_text_and_source(self):
        # The separator prevents (text+source) concatenation collisions.
        assert chunk_address("ab", "c.md") != chunk_address("a", "bc.md")
        assert chunk_address("x", "a.md") != chunk_address("x", "b.md")

    def test_chunk_id_reads_document_metadata(self):
        doc = Document(text="KSP solves Ax=b", metadata={"source": "ksp.md"})
        assert chunk_id(doc) == chunk_address("KSP solves Ax=b", "ksp.md")

    def test_source_digest_is_exact(self):
        # Unlike the chunk address, the per-source digest is byte-exact:
        # it decides *re-chunking*, not embedding reuse.
        assert source_digest("a b") != source_digest("a  b")


class TestCorpusDelta:
    def _chunks(self, texts, source="s.md"):
        return [
            Document(text=t, metadata={"source": source, "chunk": str(i)})
            for i, t in enumerate(texts)
        ]

    def test_identical_chunks_is_noop(self):
        old = self._chunks(["alpha", "beta"])
        new = self._chunks(["alpha", "beta"])
        delta = diff_chunks(old, new)
        assert delta.is_noop
        assert delta.unchanged == 2
        assert delta.embed_count == 0

    def test_classification(self):
        old = self._chunks(["alpha", "beta", "gamma"])
        # beta edited in place (new bytes, same position), gamma dropped,
        # delta added; alpha untouched.
        new = [
            old[0],
            Document(text="beta revised", metadata=dict(old[1].metadata)),
            Document(text="delta", metadata={"source": "s.md", "chunk": "3"}),
        ]
        delta = diff_chunks(old, new)
        assert delta.unchanged == 1
        assert {d.text for d in delta.added} == {"beta revised", "delta"}
        removed = {r.doc_id for r in delta.removed}
        assert removed == {old[1].doc_id, old[2].doc_id}

    def test_whitespace_edit_is_modified_not_added(self):
        old = self._chunks(["use  KSPSolve"])
        new = self._chunks(["use KSPSolve"])
        delta = diff_chunks(old, new)
        # Same content address, different bytes: a modification.
        assert [d.text for d in delta.modified] == ["use KSPSolve"]
        assert not delta.added
        assert [r.doc_id for r in delta.removed] == [old[0].doc_id]

    def test_digest_is_order_independent(self):
        old = self._chunks(["a", "b"])
        new = self._chunks(["a", "c"])
        d1 = diff_chunks(old, new)
        d2 = diff_chunks(list(reversed(old)), list(reversed(new)))
        assert d1.digest == d2.digest

    def test_delta_from_added_documents(self):
        docs = self._chunks(["history note"])
        delta = delta_from_added_documents(docs)
        assert [d.text for d in delta.added] == ["history note"]
        assert not delta.removed and not delta.modified
        assert not delta.is_noop


class TestLineage:
    def test_cache_artifact_evicts_superseded_digest(self, bundle, fresh_cache):
        """Satellite 1: a lineage successor evicts its parent from the
        in-process cache instead of letting dead epochs accumulate."""
        from repro.index.builder import cached_artifact

        cfg = _cfg()
        reg = MetricsRegistry()
        with use_registry(reg):
            parent = get_or_build_index(bundle, cfg)
            child = get_or_build_index(_edited(bundle), cfg)
        assert child.digest != parent.digest
        assert cached_artifact(child.digest) is child
        assert cached_artifact(parent.digest) is None
        assert reg.counter("repro.index.lineage_evictions").value == 1

    def test_lineage_parent_tracks_latest(self, bundle, fresh_cache):
        cfg = _cfg()
        artifact = get_or_build_index(bundle, cfg)
        assert lineage_parent(config_fingerprint(cfg)) is artifact


class TestDeltaBuild:
    def test_reembeds_only_changed_chunks(self, bundle, fresh_cache):
        cfg = _cfg()
        reg = MetricsRegistry()
        with use_registry(reg):
            parent = build_index(bundle, cfg)
            cache_artifact(parent)
            builds_before = reg.counter("repro.index.builds").value
            built = build_index_from_parent(_edited(bundle), cfg, parent)
        assert built is not None
        artifact, delta = built
        assert artifact.parent_digest == parent.digest
        assert artifact.delta_digest == delta.digest
        embedded = reg.counter("repro.ingest.chunks_embedded").value
        reused = reg.counter("repro.ingest.chunks_reused").value
        assert embedded == delta.embed_count
        assert 0 < embedded < len(artifact.chunks) / 10
        assert embedded + reused == len(artifact.chunks)
        # A delta build is not a full build.
        assert reg.counter("repro.index.builds").value == builds_before
        assert reg.counter("repro.ingest.delta_builds").value == 1

    def test_delta_equals_scratch_byte_for_byte(self, bundle, fresh_cache):
        import numpy as np

        cfg = _cfg()
        edited = _edited(bundle)
        parent = build_index(bundle, cfg)
        artifact, _delta = build_index_from_parent(edited, cfg, parent)
        scratch = build_index(edited, cfg)
        assert artifact.digest == scratch.digest
        assert [c.doc_id for c in artifact.chunks] == [
            c.doc_id for c in scratch.chunks
        ]
        assert np.array_equal(
            artifact.store.index.matrix, scratch.store.index.matrix
        )

    def test_corpus_fitted_embedding_declines(self, bundle, fresh_cache):
        cfg = ReproConfig(
            iterations_per_token=0,
            retrieval=RetrievalConfig(embedding_model="petsc-embed-large"),
        )
        parent = build_index(bundle, cfg)
        assert build_index_from_parent(_edited(bundle), cfg, parent) is None

    def test_delta_disabled_declines(self, bundle, fresh_cache):
        cfg = _cfg(delta_enabled=False)
        parent = build_index(bundle, cfg)
        assert build_index_from_parent(_edited(bundle), cfg, parent) is None

    def test_large_delta_falls_back_to_full_build(self, bundle, fresh_cache):
        cfg = _cfg(max_delta_fraction=0.0001)
        reg = MetricsRegistry()
        with use_registry(reg):
            parent = build_index(bundle, cfg)
            assert build_index_from_parent(_edited(bundle), cfg, parent) is None
        assert reg.counter("repro.ingest.delta_fallbacks").value == 1

    def test_get_or_build_resolves_via_delta(self, bundle, fresh_cache):
        cfg = _cfg()
        reg = MetricsRegistry()
        with use_registry(reg):
            get_or_build_index(bundle, cfg)
            builds = reg.counter("repro.index.builds").value
            successor = get_or_build_index(_edited(bundle), cfg)
        assert reg.counter("repro.index.builds").value == builds
        assert reg.counter("repro.ingest.delta_builds").value == 1
        assert successor.digest == compute_digest(_edited(bundle), cfg)

    def test_bad_ingest_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ReproConfig(ingest=IngestConfig(max_delta_fraction=0.0)).validate()
        with pytest.raises(ConfigurationError):
            ReproConfig(ingest=IngestConfig(max_delta_fraction=1.5)).validate()


class TestEpochSwap:
    def test_same_digest_swap_is_noop(self, bundle, fresh_cache):
        engine = open_engine(_cfg(), bundle=bundle)
        engine.answer("What does KSPGMRES do?")
        sizes = engine.cache_sizes()
        assert engine.swap_artifact(engine.artifact) is False
        assert engine.epoch == 0
        assert engine.cache_sizes() == sizes

    def test_swap_advances_epoch_and_serves_new_artifact(
        self, bundle, fresh_cache
    ):
        cfg = _cfg()
        engine = open_engine(cfg, bundle=bundle)
        old_store = engine.pipeline().retriever.store
        successor = get_or_build_index(_edited(bundle), cfg)
        assert engine.swap_artifact(successor) is True
        assert engine.epoch == 1
        assert engine.artifact is successor
        assert engine.pipeline().retriever.store is not old_store
        # Serving still works on the new epoch.
        assert engine.answer("What does KSPGMRES do?").answer


class TestIngestCorpus:
    def test_noop_ingest_changes_nothing(self, bundle, fresh_cache):
        reg = MetricsRegistry()
        with use_registry(reg):
            engine = open_engine(_cfg(), bundle=bundle)
            engine.answer("What does KSPGMRES do?")
            sizes = engine.cache_sizes()
            report = ingest_corpus(engine, bundle)
        assert report.noop and not report.swapped
        assert report.resolution == "noop"
        assert report.digest == report.previous_digest == engine.artifact.digest
        assert engine.epoch == 0
        assert engine.cache_sizes() == sizes
        assert reg.counter("repro.ingest.noops").value == 1

    def test_edit_resolves_via_delta_and_swaps(self, bundle, fresh_cache):
        reg = MetricsRegistry()
        with use_registry(reg):
            engine = open_engine(_cfg(), bundle=bundle)
            answer_before = engine.answer("What does KSPGMRES do?").answer
            report = ingest_corpus(engine, _edited(bundle))
            answer_after = engine.answer("What does KSPGMRES do?").answer
        assert not report.noop and report.swapped
        assert report.resolution == "delta"
        assert report.delta["embedded"] < report.delta["total"] / 10
        assert engine.epoch == 1
        assert reg.counter("repro.ingest.epoch_swaps").value == 1
        # The FAQ edit cannot change a KSPGMRES answer.
        assert answer_after == answer_before

    def test_scoped_invalidation_retains_unaffected_entries(
        self, bundle, fresh_cache
    ):
        engine = open_engine(_cfg(), bundle=bundle)
        engine.answer("What does KSPGMRES do?")
        report = ingest_corpus(engine, _edited(bundle))
        inv = report.invalidation
        assert inv["scoped"] is True
        # The warm KSPGMRES retrieval survives an FAQ edit; its answer
        # entry is re-keyed by digest and therefore reclaimed.
        assert inv["retained_retrieval"] == 1
        assert inv["invalidated_retrieval"] == 0
        assert engine.cache_sizes()["retrieval"] == 1

    def test_blunt_invalidation_when_scoping_disabled(self, bundle, fresh_cache):
        engine = open_engine(_cfg(scoped_invalidation=False), bundle=bundle)
        engine.answer("What does KSPGMRES do?")
        report = ingest_corpus(engine, _edited(bundle))
        assert report.invalidation["scoped"] is False
        assert engine.cache_sizes()["retrieval"] == 0

    def test_removed_source_evicts_dependent_retrievals(self, bundle, fresh_cache):
        engine = open_engine(_cfg(), bundle=bundle)
        engine.answer("What does KSPGMRES do?")
        assert engine.cache_sizes()["retrieval"] == 1
        docs = [
            d
            for d in bundle.documents
            if d.metadata.get("source") != "manualpages/KSPGMRES.md"
        ]
        gutted = CorpusBundle(
            registry=bundle.registry,
            documents=docs,
            manual_page_names={
                k: v
                for k, v in bundle.manual_page_names.items()
                if k != "KSPGMRES"
            },
        )
        report = ingest_corpus(engine, gutted)
        assert report.swapped
        assert report.invalidation["invalidated_retrieval"] == 1
        assert engine.cache_sizes()["retrieval"] == 0

    def test_sharded_engine_ingest(self, bundle, fresh_cache):
        reg = MetricsRegistry()
        with use_registry(reg):
            engine = open_engine(_cfg(shards=2), bundle=bundle)
            report = ingest_corpus(engine, _edited(bundle))
        assert report.swapped and engine.epoch == 1
        assert engine.shard_summary()["epoch"] == 1
        # One edited source dirties one shard; that shard delta-builds.
        assert reg.counter("repro.shard.delta_builds").value == 1
        assert reg.counter("repro.ingest.delta_builds").value == 1
        assert engine.answer("What does KSPGMRES do?").answer

    def test_delta_and_scratch_engines_answer_identically(
        self, bundle, fresh_cache
    ):
        cfg = _cfg()
        edited = _edited(bundle)
        engine = open_engine(cfg, bundle=bundle)
        report = ingest_corpus(engine, edited)
        assert report.resolution == "delta"
        swapped_answer = engine.answer("What does KSPCG do?").answer

        clear_index_cache()
        scratch = open_engine(cfg, bundle=edited)
        assert scratch.artifact.digest == report.digest
        assert scratch.answer("What does KSPCG do?").answer == swapped_answer


class TestApplyDocuments:
    def _doc(self, text="Vetted interaction: KSPFOO usage note."):
        return Document(
            text=text, metadata={"source": "history/note.md", "doc_type": "interaction"}
        )

    def test_insertion_and_scoped_invalidation(self, bundle, fresh_cache):
        engine = open_engine(_cfg(), bundle=bundle)
        engine.answer("What does KSPGMRES do?")
        report = apply_documents(engine, [self._doc()])
        assert report.resolution == "live-store"
        assert not report.swapped and engine.epoch == 0
        assert len(report.added_ids) == 1
        assert report.invalidation["scoped"] is True

    def test_duplicate_insertion_is_noop(self, bundle, fresh_cache):
        engine = open_engine(_cfg(), bundle=bundle)
        doc = self._doc()
        assert len(apply_documents(engine, [doc]).added_ids) == 1
        second = apply_documents(engine, [doc])
        assert second.noop and not second.added_ids

    def test_requires_engine_or_store(self):
        with pytest.raises(IngestError):
            apply_documents(None, [self._doc()])

    def test_explicit_store_without_engine(self, chunks, embedding):
        store = VectorStore.from_documents(chunks[:5], embedding)
        report = apply_documents(None, [self._doc()], store=store)
        assert len(report.added_ids) == 1
        assert report.epoch == 0 and report.digest == ""


class TestDeprecatedWritePath:
    def test_public_add_documents_warns(self, chunks, embedding):
        store = VectorStore.from_documents(chunks[:5], embedding)
        doc = Document(text="late addition", metadata={"source": "x.md"})
        with pytest.warns(DeprecationWarning, match="repro.ingest"):
            store.add_documents([doc])

    def test_internal_paths_do_not_warn(self, bundle, fresh_cache):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = open_engine(_cfg(), bundle=bundle)
            apply_documents(
                engine,
                [Document(text="quiet insert", metadata={"source": "h.md"})],
            )
            ingest_corpus(engine, _edited(bundle))
            engine.answer("What does KSPGMRES do?")

    def test_workflow_feed_routes_through_ingest(self, fresh_cache):
        from repro.api import open_workflow

        wf = open_workflow(_cfg())
        wf.ask("What is the default KSP type?")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            added = wf.feed_history_into_rag(min_mean_score=0.0)
        assert added >= 0  # the reroute is warning-free either way


class TestOverlayTree:
    def test_unedited_tree_is_digest_identical(self, bundle, tmp_path):
        from repro.corpus.builder import CorpusBuilder
        from repro.index.artifact import corpus_digest

        root = CorpusBuilder().write_tree(tmp_path / "docs", bundle)
        revised = overlay_tree(bundle, root)
        assert corpus_digest(revised) == corpus_digest(bundle)

    def test_edit_and_new_file_overlay(self, bundle, tmp_path):
        from repro.corpus.builder import CorpusBuilder

        root = CorpusBuilder().write_tree(tmp_path / "docs", bundle)
        faq = root / "faq.md"
        faq.write_text(faq.read_text() + "\nNew FAQ entry.\n", encoding="utf-8")
        extra = root / "manual" / "zz-new-chapter.md"
        extra.write_text("# New Chapter\n\nFresh content.\n", encoding="utf-8")
        revised = overlay_tree(bundle, root)
        by_source = {d.metadata["source"]: d for d in revised.documents}
        assert by_source["faq.md"].text.endswith("New FAQ entry.\n")
        assert by_source["manual/zz-new-chapter.md"].metadata["doc_type"] == (
            "manual_chapter"
        )
        assert len(revised.documents) == len(bundle.documents) + 1

    def test_missing_tree_rejected(self, bundle, tmp_path):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            overlay_tree(bundle, tmp_path / "nope")


class TestCliIngest:
    def test_noop_ingest(self, capsys, fresh_cache):
        from repro.cli import main

        rc = main(["--fast", "--embedding", EMBED, "ingest"])
        assert rc == 0
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert payload["noop"] is True
        assert "no-op" in out.err

    def test_edited_tree_ingest(self, capsys, tmp_path, fresh_cache):
        from repro.cli import main

        docs = tmp_path / "docs"
        assert main(["corpus", "--out", str(docs)]) == 0
        capsys.readouterr()
        faq = docs / "faq.md"
        faq.write_text(faq.read_text() + "\nRevised entry.\n", encoding="utf-8")
        rc = main([
            "--fast", "--embedding", EMBED, "ingest",
            "--docs", str(docs), "--warm", "1",
        ])
        assert rc == 0
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert payload["noop"] is False
        assert payload["resolution"] == "delta"
        assert payload["epoch"] == 1
        assert 0 < payload["delta"]["embedded"] < payload["delta"]["total"]
        assert "embedded" in out.err
