"""Tests for the interaction history store and blind scoring."""

from __future__ import annotations

import pytest

from repro.errors import HistoryError
from repro.history import BlindScoringSession, Interaction, InteractionStore, ScoreRecord


def make_interaction(store, q="How do I set tolerances?", a="Use KSPSetTolerances().", **kw):
    rec = Interaction(
        interaction_id=store.new_id(),
        question=q,
        answer=a,
        timestamp=kw.pop("timestamp", 1000.0),
        **kw,
    )
    return store.add(rec)


class TestScoreRecord:
    def test_valid_range(self):
        ScoreRecord(scorer="alice", score=4)
        with pytest.raises(HistoryError):
            ScoreRecord(scorer="alice", score=5)
        with pytest.raises(HistoryError):
            ScoreRecord(scorer="", score=3)


class TestInteractionStore:
    def test_add_and_get(self):
        store = InteractionStore()
        rec = make_interaction(store)
        assert store.get(rec.interaction_id) is rec
        assert len(store) == 1

    def test_duplicate_id_rejected(self):
        store = InteractionStore()
        rec = make_interaction(store)
        with pytest.raises(HistoryError):
            store.add(rec)

    def test_unknown_get(self):
        with pytest.raises(HistoryError):
            InteractionStore().get("int-999999")

    def test_search_by_text(self):
        store = InteractionStore()
        make_interaction(store, q="GMRES restart question", a="answer")
        make_interaction(store, q="nullspace question", a="answer")
        hits = store.search("gmres restart")
        assert len(hits) == 1

    def test_search_filters(self):
        store = InteractionStore()
        a = make_interaction(store, chat_model="gpt-4o-sim", mode="rag")
        make_interaction(store, chat_model="llama-3-8b-sim", mode="baseline")
        assert store.search(chat_model="gpt-4o-sim") == [a]
        assert store.search(mode="baseline")[0].chat_model == "llama-3-8b-sim"

    def test_search_min_score(self):
        store = InteractionStore()
        rec = make_interaction(store)
        make_interaction(store)
        rec.add_score(ScoreRecord(scorer="a", score=4))
        hits = store.search(min_mean_score=3.0)
        assert hits == [rec]

    def test_human_answers(self):
        store = InteractionStore()
        store.record_human_answer("q?", "expert answer", developer="barry")
        hits = store.search(human_only=True)
        assert len(hits) == 1
        assert "developer:barry" in hits[0].tags

    def test_double_scoring_rejected(self):
        store = InteractionStore()
        rec = make_interaction(store)
        rec.add_score(ScoreRecord(scorer="a", score=3))
        with pytest.raises(HistoryError):
            rec.add_score(ScoreRecord(scorer="a", score=4))

    def test_mean_score(self):
        store = InteractionStore()
        rec = make_interaction(store)
        assert rec.mean_score() is None
        rec.add_score(ScoreRecord(scorer="a", score=2))
        rec.add_score(ScoreRecord(scorer="b", score=4))
        assert rec.mean_score() == 3.0

    def test_as_documents_thresholds(self):
        store = InteractionStore()
        good = make_interaction(store, q="good q")
        bad = make_interaction(store, q="bad q")
        good.add_score(ScoreRecord(scorer="a", score=4))
        bad.add_score(ScoreRecord(scorer="a", score=1))
        docs = store.as_documents(min_mean_score=3.0)
        assert len(docs) == 1
        assert "good q" in docs[0].text
        assert docs[0].metadata["doc_type"] == "history"

    def test_persistence_roundtrip(self, tmp_path):
        store = InteractionStore()
        rec = make_interaction(store, chat_model="gpt-4o-sim", mode="rag")
        rec.add_score(ScoreRecord(scorer="a", score=3, incorrect_spans=[], comment="ok"))
        path = tmp_path / "history.jsonl"
        store.save(path)
        loaded = InteractionStore.load(path)
        assert len(loaded) == 1
        rec2 = loaded.get(rec.interaction_id)
        assert rec2.scores[0].scorer == "a"
        # Counter continues after the highest loaded id.
        assert loaded.new_id() != rec.interaction_id

    def test_record_pipeline_result(self, baseline_pipeline):
        store = InteractionStore()
        result = baseline_pipeline.answer("What is KSP?")
        rec = store.record_pipeline_result(result, embedding_model="none")
        assert rec.mode == "baseline"
        assert rec.question == "What is KSP?"


class TestBlindScoring:
    def test_blinded_items_hide_provenance(self):
        store = InteractionStore()
        make_interaction(store, chat_model="gpt-4o-sim", mode="rag")
        session = BlindScoringSession(store, scorer="alice")
        items = session.pending_items()
        assert len(items) == 1
        assert not hasattr(items[0], "chat_model")

    def test_submit_and_disappear(self):
        store = InteractionStore()
        rec = make_interaction(store)
        session = BlindScoringSession(store, scorer="alice")
        session.submit(rec.interaction_id, 3, comment="fine")
        assert session.pending_items() == []
        assert rec.scores[0].score == 3

    def test_span_validation(self):
        store = InteractionStore()
        rec = make_interaction(store, a="the answer text")
        session = BlindScoringSession(store, scorer="alice")
        with pytest.raises(HistoryError):
            session.submit(rec.interaction_id, 2, incorrect_spans=["not present"])
        session.submit(rec.interaction_id, 2, correct_spans=["answer text"])

    def test_order_deterministic_per_scorer(self):
        store = InteractionStore()
        for i in range(10):
            make_interaction(store, q=f"q{i}", timestamp=float(i))
        a1 = [i.item_id for i in BlindScoringSession(store, scorer="a").pending_items()]
        a2 = [i.item_id for i in BlindScoringSession(store, scorer="a").pending_items()]
        b = [i.item_id for i in BlindScoringSession(store, scorer="b").pending_items()]
        assert a1 == a2
        assert a1 != b  # different scorers see different orders

    def test_empty_scorer_rejected(self):
        with pytest.raises(HistoryError):
            BlindScoringSession(InteractionStore(), scorer="")
