"""Tests for the email bot and chatbot (the Fig. 5 workflow)."""

from __future__ import annotations

import pytest

from repro.bots import build_support_system
from repro.config import WorkflowConfig
from repro.discordsim.models import User
from repro.errors import BotError
from repro.mail.message import Attachment


@pytest.fixture(scope="module")
def system(bundle):
    return build_support_system(bundle, WorkflowConfig(iterations_per_token=0))


@pytest.fixture(scope="module")
def developer(system):
    return next(u for u in system.server.members.values() if u.name == "barry")


@pytest.fixture(scope="module")
def outsider(system):
    user = User(name="random-user")
    system.server.add_member(user)
    return user


def _fresh_post(system, developer, subject, body="How do I set -ksp_rtol?"):
    system.user_sends_email("someone@uni.edu", subject, body)
    system.poll()
    post = system.find_post(subject)
    assert post is not None
    return post


class TestEmailBot:
    def test_mirror_creates_post(self, system):
        system.user_sends_email("a@b.edu", "Unique subject one", "body text")
        assert system.poll()
        post = system.find_post("Unique subject one")
        assert post is not None
        assert "body text" in post.starter().content
        assert "a@b.edu" in post.starter().content

    def test_replies_append_to_thread(self, system):
        system.user_sends_email("a@b.edu", "Thread subject", "first")
        system.poll()
        system.user_sends_email("c@d.edu", "Re: Thread subject", "second message")
        system.poll()
        post = system.find_post("Thread subject")
        assert len(post.history()) == 2

    def test_quotes_stripped_in_mirror(self, system):
        system.user_sends_email(
            "a@b.edu", "Quoted subject",
            "new part\n\nOn Jan 1, Barry wrote:\n> old part",
        )
        system.poll()
        post = system.find_post("Quoted subject")
        assert "old part" not in post.starter().content

    def test_attachments_carried(self, system):
        from repro.mail.message import EmailMessage

        email = EmailMessage(
            sender="a@b.edu", subject="With attachment", body="see attached",
            attachments=[Attachment(filename="log.txt", content=b"data")],
        )
        system.mailing_list.post(email)
        system.poll()
        post = system.find_post("With attachment")
        assert post.starter().attachments[0].filename == "log.txt"

    def test_no_unread_no_mirror(self, system):
        before = system.email_bot.emails_mirrored
        assert not system.poll()
        assert system.email_bot.emails_mirrored == before


class TestChatbotReply:
    def test_reply_drafts_with_buttons(self, system, developer):
        post = _fresh_post(system, developer, "Tolerance question",
                           "How do I change the relative tolerance for KSP?")
        draft = system.developer_replies(developer, post)
        assert [b.label for b in draft.message.buttons] == ["send", "discard", "revise"]
        assert draft.result.mode == "rag+rerank"
        assert "Subject: Tolerance question" in draft.question

    def test_reply_requires_developer(self, system, outsider):
        post = _fresh_post(system, outsider, "Unauthorized question")
        with pytest.raises(BotError):
            system.chatbot.invoke("reply", outsider, post=post)

    def test_send_mails_with_signature(self, system, developer):
        post = _fresh_post(system, developer, "Send-flow question")
        draft = system.developer_replies(developer, post)
        n_before = len(system.chatbot.sent_emails)
        draft.message.button("send").click(draft.message, developer)
        assert len(system.chatbot.sent_emails) == n_before + 1
        sent = system.chatbot.sent_emails[-1]
        assert sent.subject == "Re: Send-flow question"
        assert "barry" in sent.body
        assert draft.message.tags["sent-by"] == "barry"
        assert draft.decided == "sent"

    def test_bot_email_does_not_loop(self, system, developer):
        post = _fresh_post(system, developer, "Loop-guard question")
        draft = system.developer_replies(developer, post)
        draft.message.button("send").click(draft.message, developer)
        # The bot's own email must arrive pre-read, so polling won't fire.
        assert system.account.unread_count() == 0
        assert not system.poll()

    def test_discard_deletes(self, system, developer):
        post = _fresh_post(system, developer, "Discard question")
        draft = system.developer_replies(developer, post)
        n = len(post.history())
        draft.message.button("discard").click(draft.message, developer)
        assert draft.decided == "discarded"
        assert len(post.history()) == n - 1

    def test_double_decision_rejected(self, system, developer):
        post = _fresh_post(system, developer, "Double-click question")
        draft = system.developer_replies(developer, post)
        draft.message.button("send").click(draft.message, developer)
        with pytest.raises(Exception):
            draft.message.button("discard").click(draft.message, developer)

    def test_revise_flow(self, system, developer):
        post = _fresh_post(system, developer, "Revise question",
                           "Why does GMRES use so much memory?")
        draft = system.developer_replies(developer, post)
        draft.message.button("revise").click(draft.message, developer)
        new = system.chatbot.submit_revision(
            draft.message, developer, "Mention the restart option."
        )
        assert new.revision_of == draft.message.message_id
        assert new.message.message_id != draft.message.message_id
        assert not new.decided

    def test_revision_requires_button_first(self, system, developer):
        post = _fresh_post(system, developer, "Premature revision")
        draft = system.developer_replies(developer, post)
        with pytest.raises(BotError):
            system.chatbot.submit_revision(draft.message, developer, "guidance")

    def test_empty_guidance_rejected(self, system, developer):
        post = _fresh_post(system, developer, "Empty guidance")
        draft = system.developer_replies(developer, post)
        draft.message.button("revise").click(draft.message, developer)
        with pytest.raises(BotError):
            system.chatbot.submit_revision(draft.message, developer, "   ")

    def test_interactions_recorded(self, system, developer):
        before = len(system.store)
        post = _fresh_post(system, developer, "History question")
        system.developer_replies(developer, post)
        assert len(system.store) == before + 1


class TestDirectMessages:
    def test_dm_answers_with_caveat(self, system, outsider):
        reply = system.chatbot.direct_message(outsider, "What is the default KSP type?")
        assert "not been reviewed" in reply

    def test_dm_history_kept(self, system, outsider):
        system.chatbot.direct_message(outsider, "another question")
        hist = system.chatbot.dm_history(outsider)
        assert len(hist) >= 2
        assert hist[-2][0] == "user"
        assert hist[-1][0] == "assistant"

    def test_dm_refuses_fictitious_api(self, system, outsider):
        reply = system.chatbot.direct_message(outsider, "What does KSPBurb do?")
        assert "no PETSc function" in reply
