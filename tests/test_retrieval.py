"""Tests for retrievers: vector, BM25, keyword, hybrid RRF."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documents import Document
from repro.errors import RetrievalError
from repro.retrieval import (
    BM25Retriever,
    HybridRetriever,
    ManualPageKeywordSearch,
    VectorRetriever,
    reciprocal_rank_fusion,
)
from repro.retrieval.base import RetrievedDocument, dedupe_by_id

DOCS = [
    Document(text="GMRES is a Krylov method for nonsymmetric systems", metadata={"i": 0}),
    Document(text="conjugate gradient needs symmetric positive definite matrices", metadata={"i": 1}),
    Document(text="preallocation makes assembly of sparse matrices fast", metadata={"i": 2}),
    Document(text="the Chebyshev iteration needs eigenvalue bounds", metadata={"i": 3}),
    Document(text="GMRES restart length controls memory usage", metadata={"i": 4}),
]


class TestVectorRetriever:
    def test_retrieves_relevant(self, store):
        hits = VectorRetriever(store).retrieve("What does KSPLSQR do?", k=5)
        assert any("KSPLSQR" in h.document.text for h in hits)
        assert all(h.origin == "vector" for h in hits)

    def test_where_constraint(self, store):
        r = VectorRetriever(store, where={"doc_type": "faq"})
        hits = r.retrieve("preallocation assembly", k=3)
        assert all(h.document.metadata["doc_type"] == "faq" for h in hits)

    def test_callable_interface(self, store):
        r = VectorRetriever(store)
        assert r("GMRES", k=2) == r.retrieve("GMRES", k=2) or True  # same type/shape
        assert len(r("GMRES", k=2)) == 2


class TestBM25:
    def test_exact_term_ranks_first(self):
        r = BM25Retriever(DOCS)
        hits = r.retrieve("chebyshev eigenvalue", k=3)
        assert hits[0].document.metadata["i"] == 3

    def test_zero_score_excluded(self):
        r = BM25Retriever(DOCS)
        assert r.retrieve("zzzz qqqq", k=3) == []

    def test_scores_nonnegative(self):
        r = BM25Retriever(DOCS)
        assert (r.score("GMRES memory") >= 0).all()

    def test_term_frequency_saturation(self):
        docs = [
            Document(text="gmres " * 50, metadata={"i": 0}),
            Document(text="gmres restart", metadata={"i": 1}),
        ]
        r = BM25Retriever(docs, k1=1.2, b=0.75)
        scores = r.score("gmres")
        # Massive repetition must not dominate unboundedly.
        assert scores[0] < 3 * scores[1]

    def test_empty_corpus_rejected(self):
        with pytest.raises(RetrievalError):
            BM25Retriever([])

    def test_invalid_params(self):
        with pytest.raises(RetrievalError):
            BM25Retriever(DOCS, k1=-1)
        with pytest.raises(RetrievalError):
            BM25Retriever(DOCS, b=2.0)

    @given(st.text(alphabet="abcdefg ", max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_never_crashes(self, query):
        r = BM25Retriever(DOCS)
        r.retrieve(query, k=3)


class TestKeywordSearch:
    def test_api_name_lookup(self, keyword_search):
        hits = keyword_search.retrieve("What does KSPSolve do?", k=4)
        assert hits and hits[0].document.metadata["title"] == "KSPSolve"
        assert hits[0].origin == "keyword"

    def test_option_key_lookup(self, keyword_search):
        page = keyword_search.lookup("-ksp_gmres_restart")
        assert page is not None and page.metadata["title"] == "KSPGMRES"

    def test_unknown_identifier(self, keyword_search):
        assert keyword_search.retrieve("What does KSPBurb do?", k=4) == []

    def test_no_identifiers(self, keyword_search):
        assert keyword_search.retrieve("how do solvers work", k=4) == []

    def test_multiple_identifiers_deduped(self, keyword_search):
        hits = keyword_search.retrieve("KSPSolve KSPSolve KSPCreate", k=4)
        titles = [h.document.metadata["title"] for h in hits]
        assert titles == ["KSPSolve", "KSPCreate"]

    def test_known_identifiers_cover_pages_and_options(self, keyword_search):
        known = keyword_search.known_identifiers()
        assert "KSPSolve" in known
        assert "-ksp_monitor" in known


class TestRRF:
    def _hits(self, ids):
        return [
            RetrievedDocument(
                document=Document(text=f"doc {i}", metadata={"source": str(i)}),
                score=1.0 - 0.1 * rank,
                origin="vector",
            )
            for rank, i in enumerate(ids)
        ]

    def test_agreement_ranks_first(self):
        fused = reciprocal_rank_fusion([self._hits([1, 2, 3]), self._hits([1, 3, 2])], k=3)
        assert fused[0].document.text == "doc 1"
        assert all(h.origin == "hybrid" for h in fused)

    def test_k_truncates(self):
        fused = reciprocal_rank_fusion([self._hits([1, 2, 3, 4])], k=2)
        assert len(fused) == 2

    def test_invalid_rrf_k(self):
        with pytest.raises(RetrievalError):
            reciprocal_rank_fusion([], rrf_k=0)

    def test_hybrid_retriever(self, store, keyword_search):
        hybrid = HybridRetriever([VectorRetriever(store), keyword_search])
        hits = hybrid.retrieve("What does KSPSolve do?", k=5)
        assert hits
        assert any(h.document.metadata.get("title") == "KSPSolve" for h in hits)

    def test_hybrid_requires_retrievers(self):
        with pytest.raises(RetrievalError):
            HybridRetriever([])


class TestDedupe:
    def test_preserves_first(self):
        doc = Document(text="same", metadata={"source": "s"})
        hits = [
            RetrievedDocument(document=doc, score=0.9, origin="a"),
            RetrievedDocument(document=doc, score=0.5, origin="b"),
        ]
        out = dedupe_by_id(hits)
        assert len(out) == 1 and out[0].origin == "a"
