"""Admission layer: token buckets, the ladder, AIMD, engine integration."""

from __future__ import annotations

import pytest

from repro.admission import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    AIMDController,
    RateLimiter,
    TokenBucket,
)
from repro.config import AdmissionConfig, WorkflowConfig
from repro.engine import QueryEngine
from repro.errors import ConfigurationError, OverloadedError
from repro.observability import MetricsRegistry, use_registry


# ------------------------------------------------------------------ bucket
class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=2.0, burst=4)
        assert bucket.available(0.0) == 4.0

    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.1)
        assert bucket.try_acquire(0.6)  # 0.5s * 2/s = 1 token

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.available(1000.0) == 2.0

    def test_time_only_moves_forward(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.try_acquire(10.0)
        # An earlier timestamp sees the bucket at the high-water mark.
        assert bucket.available(5.0) == bucket.available(10.0)

    def test_next_free_when_empty(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        bucket.try_acquire(0.0)
        assert bucket.next_free(0.0) == pytest.approx(0.5)

    def test_next_free_when_available(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.next_free(3.0) == 3.0

    def test_reserve_consumes_future_token(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.try_acquire(0.0)
        grant = bucket.reserve(0.0)
        assert grant == pytest.approx(1.0)
        # The reserved token is spoken for: the next grant is later.
        assert bucket.reserve(0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0)


class TestRateLimiter:
    def test_per_client_isolation(self):
        limiter = RateLimiter(rate_per_second=1.0, burst=1)
        assert limiter.try_acquire("a", 0.0)
        assert not limiter.try_acquire("a", 0.0)
        assert limiter.try_acquire("b", 0.0)  # b has its own bucket

    def test_per_client_override(self):
        limiter = RateLimiter(
            rate_per_second=1.0, burst=1, per_client_rates={"vip": 100.0}
        )
        assert limiter.bucket("vip").rate == 100.0
        assert limiter.bucket("anon").rate == 1.0


# ------------------------------------------------------------------ ladder
def _controller(**overrides) -> AdmissionController:
    defaults = dict(
        enabled=True,
        requests_per_second=2.0,
        burst=2,
        queue_depth=2,
        queue_timeout_seconds=2.0,
    )
    defaults.update(overrides)
    return AdmissionController(AdmissionConfig(**defaults))


class TestAdmissionLadder:
    def test_burst_walks_the_ladder(self):
        ctrl = _controller()
        registry = MetricsRegistry()
        decisions = ctrl.admit_batch([0.0] * 8, ["default"] * 8, registry=registry)
        outcomes = [d.outcome for d in decisions]
        # burst=2 admits, queue_depth=2 queues, the rest shed.
        assert outcomes == [ADMIT, ADMIT, QUEUE, QUEUE, SHED, SHED, SHED, SHED]
        assert registry.counter("repro.admission.admitted").value == 2
        assert registry.counter("repro.admission.queued").value == 2
        assert registry.counter("repro.admission.shed").value == 4

    def test_sheds_carry_retry_after(self):
        ctrl = _controller()
        decisions = ctrl.admit_batch([0.0] * 8, ["default"] * 8)
        for d in decisions:
            if d.outcome == SHED:
                assert d.retry_after > 0
            else:
                assert d.retry_after == 0.0

    def test_queued_wait_is_bounded(self):
        ctrl = _controller()
        decisions = ctrl.admit_batch([0.0] * 8, ["default"] * 8)
        for d in decisions:
            if d.outcome == QUEUE:
                assert 0 < d.queue_wait <= 2.0
                assert d.start_at == pytest.approx(d.arrival + d.queue_wait)

    def test_spaced_arrivals_all_admit(self):
        ctrl = _controller()
        arrivals = [i * 1.0 for i in range(8)]  # 1/s against a 2/s quota
        decisions = ctrl.admit_batch(arrivals, ["default"] * 8)
        assert all(d.outcome == ADMIT for d in decisions)

    def test_deterministic_decision_vector(self):
        arrivals = [i * 0.05 for i in range(32)]
        a = _controller().admit_batch(arrivals, ["default"] * 32)
        b = _controller().admit_batch(arrivals, ["default"] * 32)
        assert a == b

    def test_per_client_quota(self):
        ctrl = _controller(per_client_rates={"vip": 100.0})
        decisions = ctrl.admit_batch(
            [0.0] * 6, ["vip", "anon", "vip", "anon", "vip", "anon"]
        )
        vip = [d for d in decisions if d.client == "vip"]
        anon = [d for d in decisions if d.client == "anon"]
        # Both clients burst 2 admits, then queue — but vip's 100/s quota
        # refills its bucket ~50x faster, so its queue wait is tiny.
        assert [d.outcome for d in vip] == [ADMIT, ADMIT, QUEUE]
        assert [d.outcome for d in anon] == [ADMIT, ADMIT, QUEUE]
        assert vip[2].queue_wait < anon[2].queue_wait

    def test_admit_one_sheds_with_retry_after(self):
        ctrl = _controller()
        registry = MetricsRegistry()
        ctrl.admit_one(now=0.0, registry=registry)
        ctrl.admit_one(now=0.0, registry=registry)
        with pytest.raises(OverloadedError) as exc_info:
            ctrl.admit_one(now=0.0, registry=registry)
        assert exc_info.value.retry_after > 0
        assert registry.counter("repro.admission.shed").value == 1


# ------------------------------------------------------------------ AIMD
class TestAIMD:
    def test_overload_halves(self):
        aimd = AIMDController(min_limit=1, max_limit=8, decrease=0.5)
        assert aimd.limit == 8
        aimd.record_overload()
        assert aimd.limit == 4
        aimd.record_overload()
        assert aimd.limit == 2

    def test_floor(self):
        aimd = AIMDController(min_limit=2, max_limit=8)
        for _ in range(10):
            aimd.record_overload()
        assert aimd.limit == 2

    def test_window_of_successes_increases(self):
        aimd = AIMDController(min_limit=1, max_limit=8, window=3)
        aimd.record_overload()  # 8 -> 4
        for _ in range(2):
            aimd.record_success()
        assert aimd.limit == 4  # window not reached
        aimd.record_success()
        assert aimd.limit == 5

    def test_overload_resets_success_streak(self):
        aimd = AIMDController(min_limit=1, max_limit=8, window=2)
        aimd.record_overload()  # 8 -> 4
        aimd.record_success()
        aimd.record_overload()  # 4 -> 2, streak reset
        aimd.record_success()
        assert aimd.limit == 2

    def test_controller_observes_overload_signals(self):
        ctrl = _controller(max_concurrency=8)
        ctrl.observe_outcome(False, "DeadlineExceededError: too slow")
        assert ctrl.concurrency_limit == 4
        # A permanent pipeline error is not an overload signal.
        ctrl.observe_outcome(False, "ConfigurationError: bad mode")
        assert ctrl.concurrency_limit == 4


# ------------------------------------------------------------------ config
class TestAdmissionConfigValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(requests_per_second=0.0).validate()

    def test_rejects_bad_concurrency_order(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(min_concurrency=8, max_concurrency=2).validate()

    def test_default_is_disabled(self):
        assert WorkflowConfig().admission.enabled is False


# ------------------------------------------------------------------ engine
@pytest.fixture(scope="module")
def overload_engine_factory(bundle):
    def make(**overrides) -> QueryEngine:
        cfg = WorkflowConfig(iterations_per_token=0)
        defaults = dict(
            enabled=True,
            requests_per_second=4.0,
            burst=4,
            queue_depth=4,
            queue_timeout_seconds=1.0,
        )
        defaults.update(overrides)
        cfg.admission = AdmissionConfig(**defaults)
        return QueryEngine.from_corpus(bundle, cfg)

    return make


def _burst(n: int, *, factor: int = 16, rate: float = 4.0):
    questions = [f"How do I configure KSP solver option {i}?" for i in range(n)]
    arrivals = [i / (factor * rate) for i in range(n)]
    return questions, arrivals


class TestEngineAdmission:
    def test_disabled_by_default(self, bundle, fast_config):
        engine = QueryEngine.from_corpus(bundle, fast_config)
        assert engine.admission is None

    def test_burst_sheds_without_exceptions(self, overload_engine_factory):
        engine = overload_engine_factory()
        questions, arrivals = _burst(32)
        batch = engine.answer_many(questions, seed=7, arrivals=arrivals)
        assert batch.shed_count > 0
        assert batch.answered_count == batch.admitted_count
        assert batch.answered_count + batch.shed_count == len(questions)
        for it in batch.items:
            if it.shed:
                assert it.result is None
                assert it.retry_after > 0
                assert "OverloadedError" in it.error

    def test_burst_is_deterministic_across_workers(self, overload_engine_factory):
        questions, arrivals = _burst(32)
        digests = []
        for workers in (1, 4):
            engine = overload_engine_factory()
            registry = MetricsRegistry()
            with use_registry(registry):
                batch = engine.answer_many(
                    questions, seed=7, arrivals=arrivals, workers=workers
                )
            digests.append(
                (batch.answers_digest(), batch.span_digest(), registry.digest())
            )
        assert digests[0] == digests[1]

    def test_shed_items_have_admission_trace(self, overload_engine_factory):
        engine = overload_engine_factory()
        questions, arrivals = _burst(32)
        batch = engine.answer_many(questions, seed=7, arrivals=arrivals)
        shed = [it for it in batch.items if it.shed]
        assert shed
        for it in shed:
            trace = it.trace_or_result_trace()
            assert trace is not None
            assert trace.validate() == []
            assert "admission:shed" in trace.event_names()

    def test_queued_items_get_span_event(self, overload_engine_factory):
        engine = overload_engine_factory()
        questions, arrivals = _burst(32)
        batch = engine.answer_many(questions, seed=7, arrivals=arrivals)
        assert batch.decisions is not None
        queued = [d for d in batch.decisions if d.outcome == QUEUE]
        assert queued
        for d in queued:
            trace = batch.items[d.index].trace_or_result_trace()
            assert trace is not None
            assert trace.validate() == []
            assert "admission:queued" in trace.event_names()

    def test_spaced_arrivals_answer_everything(self, overload_engine_factory):
        engine = overload_engine_factory()
        questions = [f"What does KSPSolve option {i} do?" for i in range(8)]
        arrivals = [i * 0.5 for i in range(8)]  # 2/s against a 4/s quota
        batch = engine.answer_many(questions, seed=7, arrivals=arrivals)
        assert batch.shed_count == 0
        assert batch.answered_count == len(questions)

    def test_sequential_answer_sheds_when_over_quota(self, overload_engine_factory):
        # A glacial refill rate so real time between calls can't refill.
        engine = overload_engine_factory(requests_per_second=0.001, burst=2)
        engine.answer("What is KSP?")
        engine.answer("What is PC?")
        with pytest.raises(OverloadedError) as exc_info:
            engine.answer("What is SNES?")
        assert exc_info.value.retry_after > 0

    def test_aimd_narrows_worker_pool_metric(self, overload_engine_factory):
        engine = overload_engine_factory()
        questions, arrivals = _burst(16)
        registry = MetricsRegistry()
        with use_registry(registry):
            engine.answer_many(questions, seed=7, arrivals=arrivals)
        assert registry.gauge("repro.admission.concurrency_limit").value >= 1

    def test_arrival_length_mismatch_rejected(self, overload_engine_factory):
        engine = overload_engine_factory()
        with pytest.raises(ConfigurationError):
            engine.answer_many(["q1", "q2"], arrivals=[0.0])
        with pytest.raises(ConfigurationError):
            engine.answer_many(["q1", "q2"], client_ids=["a"])
