"""Integration tests: dead-letter queue, degradation ladder, chaos runs."""

from __future__ import annotations

import pytest

from repro.bots import build_support_system
from repro.config import WorkflowConfig
from repro.errors import TransientError
from repro.evaluation.benchmark import krylov_benchmark
from repro.evaluation.chaos import run_chaos_experiment, run_robustness_sweep
from repro.history import InteractionStore
from repro.llm.base import ChatMessage, ChatModel, CompletionResult, TokenUsage
from repro.mail.appsscript import AppsScriptPoller
from repro.mail.gmail import GmailAccount
from repro.mail.message import EmailMessage
from repro.pipeline.rag import RAGPipeline
from repro.rerank.base import Reranker
from repro.resilience import FaultConfig, FaultInjector, RetryPolicy
from repro.retrieval import VectorRetriever
from repro.retrieval.base import RetrievedDocument, Retriever


class FlakyModel(ChatModel):
    """Fails the first ``fail_first`` completions, then answers."""

    name = "flaky"

    def __init__(self, fail_first: int = 0) -> None:
        self.fail_first = fail_first
        self.calls = 0

    def complete(self, messages: list[ChatMessage], *, ctx=None) -> CompletionResult:
        self._check_messages(messages)
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransientError(f"flaky transport (call {self.calls})")
        return CompletionResult(
            text="the answer", model=self.name, usage=TokenUsage(1, 1)
        )


class FailingRetriever(Retriever):
    def retrieve(self, query: str, *, k: int = 8, ctx=None) -> list[RetrievedDocument]:
        raise TransientError("retrieval backend down")


class FailingReranker(Reranker):
    name = "failing"

    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        raise TransientError("reranker backend down")


class FlakyWebhook:
    """A webhook endpoint that fails for the first ``fail_first`` posts."""

    def __init__(self, fail_first: int) -> None:
        self.fail_first = fail_first
        self.calls = 0
        self.delivered: list[str] = []

    def __call__(self, payload: str) -> None:
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransientError("webhook 503")
        self.delivered.append(payload)


def _account_with_mail() -> GmailAccount:
    account = GmailAccount("petscbot@gmail.com")
    account.deliver(EmailMessage(sender="user@site.edu", subject="help", body="ksp?"))
    return account


# ---------------------------------------------------------------- poller DLQ
class TestPollerDeadLetters:
    def test_webhook_exception_cannot_escape_tick(self):
        hook = FlakyWebhook(fail_first=1)
        poller = AppsScriptPoller(account=_account_with_mail(), webhook_post=hook)
        assert poller.tick() is False  # caught, not raised
        assert poller.failures == 1
        assert len(poller.dead_letters) == 1
        assert poller.notifications_sent == 0
        # The mail was never fetched, so it is still unread for a retry.
        assert poller.account.has_unread()

    def test_next_tick_redelivers_dead_letters(self):
        hook = FlakyWebhook(fail_first=1)
        poller = AppsScriptPoller(account=_account_with_mail(), webhook_post=hook)
        poller.tick()
        assert poller.tick() is True
        # Both the dead letter and the fresh notification went out.
        assert len(hook.delivered) == 2
        assert not poller.dead_letters
        assert poller.notifications_sent == 2

    def test_persistent_outage_does_not_spin_or_grow_unbounded(self):
        hook = FlakyWebhook(fail_first=10**9)
        poller = AppsScriptPoller(
            account=_account_with_mail(), webhook_post=hook, max_dead_letters=4
        )
        for _ in range(20):
            assert poller.tick() is False
        # One redelivery probe per tick (no spinning through the queue),
        # and the queue itself stays bounded.
        assert poller.failures <= 2 * 20
        assert len(poller.dead_letters) <= 4

    def test_clean_path_unchanged(self):
        hook = FlakyWebhook(fail_first=0)
        poller = AppsScriptPoller(account=_account_with_mail(), webhook_post=hook)
        assert poller.tick() is True
        assert poller.failures == 0
        assert hook.delivered and "unread" in hook.delivered[0]


# ---------------------------------------------------------------- ladder
class TestDegradationLadder:
    def test_retrieval_failure_falls_back_to_baseline_prompt(self):
        pipeline = RAGPipeline(FlakyModel(), retriever=FailingRetriever())
        result = pipeline.answer("What restart does GMRES use?")
        assert result.answer == "the answer"
        assert result.degraded == ["retrieval:baseline-fallback"]
        assert result.is_degraded
        assert result.contexts == []

    def test_rerank_failure_truncates_candidates(self, store):
        pipeline = RAGPipeline(
            FlakyModel(),
            retriever=VectorRetriever(store),
            reranker=FailingReranker(),
            first_pass_k=8,
            final_l=4,
        )
        result = pipeline.answer("What restart does GMRES use?")
        assert result.degraded == ["rerank:truncate"]
        assert 0 < len(result.contexts) <= 4
        # Truncation keeps first-pass ordering, no rerank origins.
        assert all("rerank" not in c.origin for c in result.contexts)

    def test_transient_llm_failure_retries_under_policy(self):
        model = FlakyModel(fail_first=2)
        pipeline = RAGPipeline(model, retry_policy=RetryPolicy(max_attempts=4))
        result = pipeline.answer("q")
        assert result.answer == "the answer"
        assert result.attempts == 3
        assert model.calls == 3

    def test_retry_exhaustion_propagates(self):
        pipeline = RAGPipeline(
            FlakyModel(fail_first=10), retry_policy=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(TransientError):
            pipeline.answer("q")

    def test_clean_run_reports_no_degradation(self):
        pipeline = RAGPipeline(FlakyModel(), retry_policy=RetryPolicy(max_attempts=4))
        result = pipeline.answer("q")
        assert result.attempts == 1
        assert result.degraded == []
        assert not result.is_degraded


# ---------------------------------------------------------------- history
class TestHistorySurfacesResilience:
    def test_attempts_and_degradation_recorded_and_persisted(self, tmp_path):
        store = InteractionStore()
        pipeline = RAGPipeline(
            FlakyModel(fail_first=1),
            retriever=FailingRetriever(),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        store.record_pipeline_result(pipeline.answer("q"))

        clean = RAGPipeline(FlakyModel())
        store.record_pipeline_result(clean.answer("q2"))

        degraded = store.search(degraded_only=True)
        assert len(degraded) == 1
        assert degraded[0].attempts == 2
        assert degraded[0].degraded == ["retrieval:baseline-fallback"]

        path = tmp_path / "history.jsonl"
        store.save(path)
        loaded = InteractionStore.load(path)
        rec = loaded.search(degraded_only=True)[0]
        assert rec.attempts == 2
        assert rec.degraded == ["retrieval:baseline-fallback"]


# ---------------------------------------------------------------- end to end
class TestSupportSystemChaos:
    def test_full_flow_survives_20pct_faults(self, bundle):
        """The paper's Fig. 5 arc sequence still yields a reviewable
        draft with 20% transient faults injected at every hop."""
        # Seed 5 injects faults on the webhook (exercising the dead-letter
        # queue) and the reranker (exercising the degradation ladder).
        injector = FaultInjector(5, FaultConfig(transient_rate=0.2))
        system = build_support_system(
            bundle, WorkflowConfig(iterations_per_token=0), fault_injector=injector
        )
        assert system.fault_injector is injector

        subject = "GMRES memory question"
        system.user_sends_email(
            "user@site.edu", subject,
            "Why does memory grow with the iteration count under GMRES?",
        )
        # Webhook faults dead-letter; keep ticking until the mail mirrors.
        for _ in range(20):
            system.poll()
            if system.find_post(subject) is not None:
                break
        post = system.find_post(subject)
        assert post is not None, "poller never got the notification through"

        developer = next(
            u for u in system.server.members.values() if u.name == "barry"
        )
        draft = system.developer_replies(developer, post)
        assert draft.result.answer
        assert draft.message.button("send") is not None
        # Injected chaos actually happened somewhere in the chain.
        assert injector.fault_counts()["transient"] > 0
        # The interaction record carries the resilience telemetry.
        recorded = system.store.all()[-1]
        assert recorded.attempts >= 1
        assert isinstance(recorded.degraded, list)

    def test_chaos_experiment_meets_availability_bar(self, bundle):
        """Acceptance: >= 95% answered at 30% faults, reproducibly."""
        questions = None  # full 37-question benchmark
        run_a = run_chaos_experiment(
            bundle, seed=0, fault_config=FaultConfig(transient_rate=0.3),
            questions=questions,
        )
        assert len(run_a.outcomes) == 37
        assert run_a.success_rate >= 0.95
        mix = run_a.degradation_mix()
        assert mix["retried"] > 0 or mix["failed"] == 0

        run_b = run_chaos_experiment(
            bundle, seed=0, fault_config=FaultConfig(transient_rate=0.3),
            questions=questions,
        )
        assert run_a.schedule_digest == run_b.schedule_digest
        assert run_a.results_digest() == run_b.results_digest()


class TestRobustnessSweep:
    """Satellite: chaos + overload + crash recovery in one seeded sweep."""

    def test_sweep_covers_all_three_phases(self, bundle, tmp_path):
        sweep = run_robustness_sweep(
            bundle, seed=3, fault_config=FaultConfig(transient_rate=0.2),
            overload_factor=16, questions=krylov_benchmark()[:6],
            journal_dir=tmp_path,
        )
        # Chaos phase ran the question subset.
        assert len(sweep.chaos.outcomes) == 6
        # Overload phase shed most of a 16x burst, hints intact.
        assert sweep.overload.error == ""
        assert sweep.overload.shed > 0
        assert sweep.overload.retry_after_ok
        assert sweep.overload.answered == sweep.overload.admitted
        # Recovery phase got back exactly the intact record prefix.
        assert sweep.recovery.prefix_ok
        assert sweep.recovery.recovered == sweep.recovery.crash_record

    def test_sweep_digest_is_seed_stable(self, bundle, tmp_path):
        kwargs = dict(
            fault_config=FaultConfig(transient_rate=0.2),
            overload_factor=16, questions=krylov_benchmark()[:4],
        )
        a = run_robustness_sweep(
            bundle, seed=9, journal_dir=tmp_path / "a", **kwargs
        )
        b = run_robustness_sweep(
            bundle, seed=9, journal_dir=tmp_path / "b", **kwargs
        )
        assert a.digest() == b.digest()
        c = run_robustness_sweep(
            bundle, seed=10, journal_dir=tmp_path / "c", **kwargs
        )
        assert c.digest() != a.digest()

    def test_render_mentions_every_phase(self, bundle, tmp_path):
        sweep = run_robustness_sweep(
            bundle, seed=1, fault_config=FaultConfig(transient_rate=0.1),
            overload_factor=4, questions=krylov_benchmark()[:3],
            journal_dir=tmp_path,
        )
        text = sweep.render(title="robustness")
        assert "overload 4x" in text
        assert "crash recovery" in text
        assert "shard faults" in text
        assert "robustness digest" in text

    def test_shard_fault_phase_replicated_absorbs_outages(self, bundle, tmp_path):
        sweep = run_robustness_sweep(
            bundle, seed=5, fault_config=FaultConfig(transient_rate=0.0),
            overload_factor=4, questions=krylov_benchmark()[:4],
            journal_dir=tmp_path, shard_fault_rate=0.8, replicas=2,
        )
        s = sweep.shard_faults
        assert s is not None and s.error == ""
        assert s.replicas == 2 and s.hedging
        # Every primary outage was absorbed by a backup: full coverage,
        # every question answered, failover/hedge activity recorded.
        assert s.answered == s.total == 4
        assert s.min_coverage == 1.0 and s.partial == 0
        assert s.failovers + s.hedge_wins > 0

    def test_shard_fault_phase_single_copy_degrades(self, bundle, tmp_path):
        kwargs = dict(
            fault_config=FaultConfig(transient_rate=0.0), overload_factor=4,
            questions=krylov_benchmark()[:4], shard_fault_rate=0.8, replicas=1,
        )
        a = run_robustness_sweep(
            bundle, seed=5, journal_dir=tmp_path / "a", **kwargs
        )
        s = a.shard_faults
        assert s is not None and s.error == ""
        # Single copy per shard: outages cannot fail over, so coverage
        # degrades — deterministically across reruns.
        assert s.failovers == 0
        assert s.partial > 0 and s.min_coverage < 1.0
        b = run_robustness_sweep(
            bundle, seed=5, journal_dir=tmp_path / "b", **kwargs
        )
        assert b.shard_faults.results_digest == s.results_digest
        assert b.shard_faults.schedule_digest == s.schedule_digest
        assert b.shard_faults.min_coverage == s.min_coverage

    def test_shard_fault_phase_skipped_at_zero_rate(self, bundle, tmp_path):
        sweep = run_robustness_sweep(
            bundle, seed=1, fault_config=FaultConfig(transient_rate=0.1),
            overload_factor=4, questions=krylov_benchmark()[:2],
            journal_dir=tmp_path, shard_fault_rate=0.0,
        )
        assert sweep.shard_faults is None
        assert "shard faults" not in sweep.render()
