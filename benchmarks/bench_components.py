"""Micro-benchmarks of the pipeline components.

Not tied to one paper table — these isolate the stages whose sum Table II
reports, the way the paper's own instrumentation separates RAG time from
LLM time ("no optimization without measuring").
"""

from __future__ import annotations

import pytest

from repro.embeddings import create_embedding_model
from repro.retrieval import BM25Retriever, ManualPageKeywordSearch, VectorRetriever
from repro.vectorstore import VectorStore

QUERY = "After KSPSolve returns, how do I find out whether the iteration converged?"


@pytest.fixture(scope="module")
def small_emb():
    return create_embedding_model("petsc-embed-small")


@pytest.fixture(scope="module")
def small_store(chunks, small_emb):
    return VectorStore.from_documents(chunks, small_emb)


def test_embed_corpus_hashing(benchmark, chunks, small_emb):
    texts = [c.text for c in chunks]
    benchmark(lambda: small_emb.embed_documents(texts))


def test_embed_query_tfidf(benchmark, chunks):
    emb = create_embedding_model("petsc-embed-large", corpus_texts=[c.text for c in chunks])
    benchmark(lambda: emb.embed_query(QUERY))


def test_vector_search(benchmark, small_store):
    benchmark(lambda: small_store.similarity_search(QUERY, k=8))


def test_vector_retriever_k8(benchmark, small_store):
    retriever = VectorRetriever(small_store)
    benchmark(lambda: retriever.retrieve(QUERY, k=8))


def test_bm25_build(benchmark, chunks):
    benchmark(lambda: BM25Retriever(chunks))


def test_bm25_query(benchmark, chunks):
    retriever = BM25Retriever(chunks)
    benchmark(lambda: retriever.retrieve(QUERY, k=8))


def test_keyword_search(benchmark, bundle):
    kw = ManualPageKeywordSearch(bundle)
    benchmark(lambda: kw.retrieve(QUERY, k=2))


def test_llm_generation(benchmark, bundle):
    from repro.llm import ChatMessage, create_chat_model
    from repro.prompts import RAG_SYSTEM_PROMPT

    model = create_chat_model("gpt-4o-sim", registry=bundle.registry)
    msgs = [
        ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
        ChatMessage(role="user", content=f"### Question\n\n{QUERY}\n"),
    ]
    benchmark(lambda: model.complete(msgs))
