"""E9 — reranker comparison (Section V-B).

Paper: "Both rerankers yield a similar level of accuracy for our
database.  We selected Flashrank in this study because of its speed."

Accuracy: mean rubric score over a benchmark subset with each reranker.
Speed: per-call rerank latency of each reranker on identical inputs.
"""

from __future__ import annotations

import time

from repro.config import RetrievalConfig, WorkflowConfig
from repro.evaluation import krylov_benchmark, run_experiment
from repro.pipeline import build_rag_pipeline
from repro.rerank import FlashrankLiteReranker, NvidiaSimReranker
from repro.retrieval import VectorRetriever
from repro.vectorstore import VectorStore
from repro.embeddings import create_embedding_model

SUBSET_SIZE = 16


def test_reranker_accuracy_similar(benchmark, bundle, grader):
    questions = krylov_benchmark()[:SUBSET_SIZE]

    def accuracy():
        means = {}
        for reranker in ("flashrank-lite", "nvidia-sim"):
            cfg = WorkflowConfig(
                retrieval=RetrievalConfig(reranker=reranker),
                iterations_per_token=0,
            )
            pipeline = build_rag_pipeline(bundle, cfg, mode="rag+rerank")
            means[reranker] = run_experiment(pipeline, grader, questions=questions).mean_score()
        return means

    means = benchmark.pedantic(accuracy, rounds=1, iterations=1)
    print()
    for name, mean in means.items():
        print(f"{name:<16} mean score {mean:.2f}")
    # Paper: similar accuracy.
    assert abs(means["flashrank-lite"] - means["nvidia-sim"]) <= 0.5


def test_flashrank_is_faster(benchmark, bundle, chunks):
    emb = create_embedding_model("petsc-embed-small")
    store = VectorStore.from_documents(chunks, emb)
    retriever = VectorRetriever(store)
    flash = FlashrankLiteReranker(chunks)
    nvidia = NvidiaSimReranker(chunks)
    questions = [q.text for q in krylov_benchmark()]
    candidate_sets = [retriever.retrieve(q, k=8) for q in questions]

    def time_reranker(reranker):
        t0 = time.perf_counter()
        for q, cands in zip(questions, candidate_sets):
            reranker.rerank(q, cands, top_n=4)
        return time.perf_counter() - t0

    # Warm both scorers' document-feature caches first: the comparison is
    # about steady-state scoring cost, not one-time tokenization.
    time_reranker(flash)
    time_reranker(nvidia)
    t_flash, t_nvidia = benchmark.pedantic(
        lambda: (time_reranker(flash), time_reranker(nvidia)), rounds=1, iterations=1
    )
    print(f"\nflashrank-lite: {1000 * t_flash:.1f} ms for 37 queries")
    print(f"nvidia-sim:     {1000 * t_nvidia:.1f} ms for 37 queries")
    # Paper: the CPU reranker is the faster of the two.
    assert t_flash < t_nvidia


def test_rerank_call_latency(benchmark, bundle, chunks):
    """Micro-benchmark: one rerank call (K=8 → L=4) with the paper's pick."""
    emb = create_embedding_model("petsc-embed-small")
    store = VectorStore.from_documents(chunks, emb)
    retriever = VectorRetriever(store)
    flash = FlashrankLiteReranker(chunks)
    q = "Can I use KSP to solve a rectangular least squares system?"
    cands = retriever.retrieve(q, k=8)
    benchmark(lambda: flash.rerank(q, cands, top_n=4))
