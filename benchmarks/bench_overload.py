"""E13 — overload protection: goodput and deterministic shedding under burst.

Drives ``QueryEngine.answer_many`` through the admission ladder at 1x,
4x, and 16x the admitted capacity (token-bucket rate × simulated
duration).  At 1x the ladder must be invisible — nothing sheds.  At
16x the engine must shed most of the burst *and still answer everything
it admitted* (goodput ≥ 80% of admitted capacity), every shed carrying a
positive ``retry_after`` hint.  Two same-seed runs must agree byte for
byte on every admit/queue/shed decision and on the metric digests.

Results land in ``BENCH_overload.json`` at the repo root; the
``digests`` block is what CI's two-run equality gate compares.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.config import AdmissionConfig, WorkflowConfig
from repro.engine import QueryEngine
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import get_or_build_index
from repro.observability import MetricsRegistry, use_registry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_overload.json"
SEED = 11
RATE = 8.0  # admitted requests/second
BURST = 8
QUEUE_DEPTH = 8
QUEUE_TIMEOUT = 1.0
DURATION = 4.0  # simulated seconds of arrivals per level
LEVELS = (1, 4, 16)


def _admission_config() -> AdmissionConfig:
    return AdmissionConfig(
        enabled=True,
        requests_per_second=RATE,
        burst=BURST,
        queue_depth=QUEUE_DEPTH,
        queue_timeout_seconds=QUEUE_TIMEOUT,
    )


def _workload(level: int):
    """``level``× the admitted arrival rate over DURATION simulated seconds."""
    bench = krylov_benchmark()
    n = int(level * RATE * DURATION)
    questions = [
        f"{bench[i % len(bench)].text} (burst item {i})" for i in range(n)
    ]
    arrivals = [i / (level * RATE) for i in range(n)]
    return questions, arrivals


def _run_level(artifact, level: int):
    cfg = replace(WorkflowConfig(iterations_per_token=0), admission=_admission_config())
    registry = MetricsRegistry()
    engine = QueryEngine(artifact, cfg, registry=registry)
    questions, arrivals = _workload(level)
    with use_registry(registry):
        batch = engine.answer_many(questions, seed=SEED, arrivals=arrivals)
    return batch, registry


def test_overload_goodput_and_deterministic_shedding(bundle):
    artifact = get_or_build_index(bundle, WorkflowConfig(iterations_per_token=0))
    levels = {}
    for level in LEVELS:
        batch, registry = _run_level(artifact, level)
        n = len(batch.items)

        # Nothing admitted may fail: sheds are the only unanswered items.
        assert batch.answered_count + batch.shed_count == n
        assert batch.answered_count == batch.admitted_count

        # Goodput: answers delivered vs. what the token bucket could
        # admit over the window (burst + refill).
        capacity = min(n, int(BURST + RATE * DURATION))
        goodput = batch.answered_count / capacity
        assert goodput >= 0.8, (
            f"{level}x: goodput {goodput:.0%} of admitted capacity "
            f"({batch.answered_count}/{capacity})"
        )

        if level == 1:
            assert batch.shed_count == 0, "1x load must not shed"
        else:
            assert batch.shed_count > 0, f"{level}x load must shed"
        for it in batch.items:
            if it.shed:
                assert it.retry_after > 0, "sheds must carry retry_after"

        levels[level] = {
            "batch": batch,
            "answers": batch.answers_digest(),
            "spans": batch.span_digest(),
            "metrics": registry.digest(),
        }

    # Same seed, same arrivals → byte-identical decisions and digests.
    rerun, rerun_registry = _run_level(artifact, LEVELS[-1])
    top = levels[LEVELS[-1]]
    assert [(it.shed, round(it.retry_after, 9)) for it in rerun.items] == [
        (it.shed, round(it.retry_after, 9)) for it in top["batch"].items
    ]
    assert rerun.answers_digest() == top["answers"]
    assert rerun.span_digest() == top["spans"]
    assert rerun_registry.digest() == top["metrics"]

    payload = {
        "workload": {
            "seed": SEED,
            "rate_per_second": RATE,
            "burst": BURST,
            "queue_depth": QUEUE_DEPTH,
            "queue_timeout_seconds": QUEUE_TIMEOUT,
            "duration_seconds": DURATION,
            "levels": list(LEVELS),
            "artifact_digest": artifact.digest,
        },
        "levels": {
            str(level): {
                "requests": len(info["batch"].items),
                "admitted": info["batch"].admitted_count,
                "queued": info["batch"].queued_count,
                "shed": info["batch"].shed_count,
                "answered": info["batch"].answered_count,
                "batch_seconds": round(info["batch"].batch_seconds, 4),
            }
            for level, info in levels.items()
        },
        "digests": {
            str(level): {
                "answers": info["answers"],
                "spans": info["spans"],
                "metrics": info["metrics"],
            }
            for level, info in levels.items()
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for level, info in levels.items():
        b = info["batch"]
        print(
            f"\n{level:>2}x: {len(b.items):>4} requests -> "
            f"{b.admitted_count} admitted ({b.queued_count} queued), "
            f"{b.shed_count} shed, {b.answered_count} answered "
            f"in {b.batch_seconds:.2f}s"
        )
