"""E14 — replicated shard serving: failover parity, hedging, degradation.

Three claims, each load-bearing for the fault-tolerant serving path:

1. **Failover is digest-invisible** — with two replicas per shard and a
   seeded schedule killing every primary probe, answers and span digests
   are byte-identical to the healthy single-copy baseline, and the
   metrics view matches after filtering the ``repro.replica.*`` /
   injected-fault namespaces.  Failover changes *which copy* answered,
   never *what* was answered.
2. **Hedged serving keeps the same contract** — with hedging enabled at
   a 50% primary outage rate, suspect primaries get speculative backup
   probes (``repro.replica.hedges`` / ``hedge_wins`` > 0) and the
   answers digest still equals the baseline.
3. **Partial coverage is deterministic** — with a single copy per shard,
   outages degrade answers to the surviving shards; two same-seed runs
   produce byte-identical answers and span digests, and
   ``require_full_coverage`` turns the same outages into typed
   ``PartialResultError`` failures.

Results land in ``BENCH_failover.json`` at the repo root; the
``digests`` block is what CI's two-run equality gate compares (timings
are wall-clock and may vary, the digests may not).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import open_engine
from repro.config import ReplicationConfig, ReproConfig, ShardingConfig
from repro.evaluation.benchmark import krylov_benchmark
from repro.observability import MetricsRegistry
from repro.resilience import FaultConfig, FaultInjector

_OUT = Path(__file__).resolve().parent.parent / "BENCH_failover.json"
SEED = 7
NUM_SHARDS = 3
QUESTIONS = 12
#: Metric namespaces that legitimately differ between a healthy run and
#: a rescued one: replica bookkeeping and the injector's own tallies.
_VOLATILE_PREFIXES = ("repro.replica.", "repro.resilience.faults_")

_RESULTS: dict = {}


def _questions() -> list[str]:
    return [q.text for q in krylov_benchmark()[:QUESTIONS]]


def _config(replication: ReplicationConfig | None = None) -> ReproConfig:
    kwargs = {"replication": replication} if replication is not None else {}
    return ReproConfig(
        iterations_per_token=0,
        sharding=ShardingConfig(num_shards=NUM_SHARDS),
        **kwargs,
    )


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            k: _scrub(v)
            for k, v in obj.items()
            if not (isinstance(k, str) and k.startswith(_VOLATILE_PREFIXES))
        }
    return obj


def _run(bundle, config: ReproConfig, injector: FaultInjector):
    """One cold engine over the benchmark head; digests + replica stats.

    Every run (the baseline included) carries an injector so the answer
    cache is disabled in all of them — cache-state parity is part of
    what makes the digest comparison meaningful.  Questions are answered
    on one worker: per-site fault counters are unsynchronized, so the
    schedule stays a pure function of the seed.
    """
    reg = MetricsRegistry()
    engine = open_engine(config, bundle=bundle, fault_injector=injector, registry=reg)
    t0 = time.perf_counter()
    batch = engine.service.answer_many(_questions(), workers=1, seed=SEED)
    seconds = time.perf_counter() - t0
    return {
        "answers": batch.answers_digest(),
        "spans": batch.span_digest(),
        "metrics_view": json.dumps(_scrub(reg.deterministic_view()), sort_keys=True),
        "seconds": seconds,
        "batch": batch,
        "registry": reg,
    }


def _counter(run: dict, name: str) -> int:
    return run["registry"].counter(name).value


def test_failover_digest_parity(bundle):
    """Claim 1: a rescued batch digests identically to a healthy one."""
    baseline = _run(bundle, _config(), FaultInjector(SEED, FaultConfig()))
    failover = _run(
        bundle,
        _config(ReplicationConfig(replicas=2)),
        FaultInjector(SEED, FaultConfig(shard_fault_rate=1.0)),
    )
    assert failover["answers"] == baseline["answers"], "failover changed answers"
    assert failover["spans"] == baseline["spans"], "failover changed span digests"
    assert failover["metrics_view"] == baseline["metrics_view"], (
        "failover leaked into the filtered metrics view"
    )
    failovers = _counter(failover, "repro.replica.failovers")
    assert failovers > 0, "rate-1.0 schedule produced no failovers"
    assert _counter(failover, "repro.shard.partial_queries") == 0
    assert baseline["batch"].answered_count == QUESTIONS
    assert failover["batch"].answered_count == QUESTIONS

    _RESULTS["failover"] = {
        "baseline_seconds": round(baseline["seconds"], 4),
        "failover_seconds": round(failover["seconds"], 4),
        "failovers": failovers,
        "probe_failures": _counter(failover, "repro.replica.probe_failures"),
        "marked_suspect": _counter(failover, "repro.replica.marked_suspect"),
    }
    _RESULTS.setdefault("digests", {})["baseline"] = {
        "answers": baseline["answers"], "spans": baseline["spans"],
    }
    _RESULTS["digests"]["failover"] = {
        "answers": failover["answers"], "spans": failover["spans"],
    }


def test_hedged_serving_digest_parity(bundle):
    """Claim 2: hedging fires on suspect primaries, answers untouched."""
    baseline = _RESULTS["digests"]["baseline"]
    hedged = _run(
        bundle,
        _config(ReplicationConfig(replicas=2, hedging=True)),
        FaultInjector(SEED, FaultConfig(shard_fault_rate=0.5)),
    )
    assert hedged["answers"] == baseline["answers"], "hedging changed answers"
    assert hedged["spans"] == baseline["spans"], "hedging changed span digests"
    hedges = _counter(hedged, "repro.replica.hedges")
    hedge_wins = _counter(hedged, "repro.replica.hedge_wins")
    assert hedges > 0, "no suspect primary ever triggered a hedge"
    assert hedge_wins > 0, "no hedged probe ever rescued a query"

    _RESULTS["hedging"] = {
        "seconds": round(hedged["seconds"], 4),
        "hedges": hedges,
        "hedge_wins": hedge_wins,
        "failovers": _counter(hedged, "repro.replica.failovers"),
    }
    _RESULTS["digests"]["hedged"] = {
        "answers": hedged["answers"], "spans": hedged["spans"],
    }


def test_partial_coverage_is_deterministic(bundle):
    """Claim 3: single-copy outages degrade deterministically."""
    runs = [
        _run(
            bundle,
            _config(ReplicationConfig(replicas=1)),
            FaultInjector(SEED + 1, FaultConfig(shard_fault_rate=1.0)),
        )
        for _ in range(2)
    ]
    a, b = runs
    assert a["answers"] == b["answers"], "partial coverage is nondeterministic"
    assert a["spans"] == b["spans"], "partial span digests moved across reruns"
    assert a["batch"].partial_count > 0, "rate-1.0 single-copy run stayed full"
    assert a["batch"].min_coverage < 1.0
    assert _counter(a, "repro.shard.partial_queries") > 0

    strict = _run(
        bundle,
        _config(ReplicationConfig(replicas=1, require_full_coverage=True)),
        FaultInjector(SEED + 1, FaultConfig(shard_fault_rate=1.0)),
    )
    failed = [it for it in strict["batch"].items if not it.answered]
    assert failed, "require_full_coverage never surfaced an error"
    assert all("PartialResultError" in it.error for it in failed)

    _RESULTS["partial"] = {
        "seconds": round(a["seconds"], 4),
        "partial_answers": a["batch"].partial_count,
        "min_coverage": round(a["batch"].min_coverage, 6),
        "strict_failures": len(failed),
    }
    _RESULTS["digests"]["partial_rerun"] = {
        "answers": a["answers"], "spans": a["spans"],
    }

    payload = {
        "workload": {
            "questions": QUESTIONS,
            "seed": SEED,
            "num_shards": NUM_SHARDS,
            "replicas": 2,
        },
        "failover": _RESULTS["failover"],
        "hedging": _RESULTS["hedging"],
        "partial": _RESULTS["partial"],
        "digests": _RESULTS["digests"],
    }
    _OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    f, h, p = _RESULTS["failover"], _RESULTS["hedging"], _RESULTS["partial"]
    print(
        f"\nfailover parity: answers+spans identical to baseline "
        f"({f['failovers']} failovers over {QUESTIONS} questions)\n"
        f"hedged serving:  {h['hedges']} hedges, {h['hedge_wins']} wins, "
        f"digests unchanged\n"
        f"partial mode:    {p['partial_answers']} partial answers, "
        f"min coverage {p['min_coverage']}, "
        f"{p['strict_failures']} strict failures — deterministic across reruns"
    )
