"""E13 — sharded index: digest parity, scatter invariance, incremental rebuild.

Three claims, each load-bearing for the sharded serving path:

1. **Partition invariance** — answers are byte-identical across shard
   counts 1/2/4/8 *and* against the monolithic index.  One embedding
   model is fitted globally and the scatter-gather merge re-sorts by
   ``(-score, doc_id)``, so how the corpus is partitioned can never leak
   into what the assistant says.  Span digests are identical across all
   sharded counts (the constant-named ``scatter`` span carries shard
   details in attributes only, which the structure digest excludes).
2. **Scatter/worker invariance** — at a fixed shard count, the answers,
   span, and metrics digests do not move with ``scatter_workers``, nor
   across two same-seed runs.
3. **Incremental rebuild** — with a corpus-free embedding, editing one
   document dirties exactly one shard: the rebuild runs ``build_index``
   once (counter +1, not +N), loads the clean shards from the per-shard
   disk cache, and beats a monolithic full rebuild by >= 2x.

Results land in ``BENCH_shards.json`` at the repo root; the ``digests``
block is what CI's two-run equality gate compares (timings are
wall-clock and may vary, the digests may not).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import open_engine
from repro.config import ReproConfig, RetrievalConfig, ShardingConfig
from repro.corpus.builder import CorpusBundle
from repro.documents import Document
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import build_sharded_index, clear_index_cache, get_or_build_index
from repro.observability import MetricsRegistry, use_registry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_shards.json"
SEED = 7
SHARD_SWEEP = (1, 2, 4, 8)
SCATTER_SWEEP = (1, 2, 4)
PARITY_SHARDS = 4
REBUILD_SHARDS = 4
#: Corpus-free hashing model: single-dirty-shard incremental rebuilds.
REBUILD_EMBEDDING = "petsc-embed-small"


def _questions() -> list[str]:
    return [q.text for q in krylov_benchmark()]


def _fast_config(num_shards: int = 0, *, scatter_workers: int = 0) -> ReproConfig:
    return ReproConfig(
        iterations_per_token=0,  # digests don't depend on the burn
        sharding=ShardingConfig(
            num_shards=num_shards, scatter_workers=scatter_workers
        ),
    )


def _batch_digests(config: ReproConfig, bundle) -> dict:
    """Cold-engine batch over the benchmark; its three digests."""
    reg = MetricsRegistry()
    engine = open_engine(config, bundle=bundle, registry=reg)
    batch = engine.answer_many(_questions(), seed=SEED)
    assert batch.answered_count == len(_questions())
    return {
        "answers": batch.answers_digest(),
        "spans": batch.span_digest(),
        "metrics_view": json.dumps(reg.deterministic_view(), sort_keys=True),
    }


def test_shard_count_digest_parity(bundle):
    """Answers never depend on how the index is partitioned."""
    mono = _batch_digests(_fast_config(0), bundle)
    sweep = {n: _batch_digests(_fast_config(n), bundle) for n in SHARD_SWEEP}

    answers = {mono["answers"]} | {s["answers"] for s in sweep.values()}
    assert len(answers) == 1, f"answers digest moved with shard count: {answers}"
    sharded_spans = {s["spans"] for s in sweep.values()}
    assert len(sharded_spans) == 1, (
        f"span digest moved with shard count: {sharded_spans}"
    )

    # Scatter-worker sweep and a same-seed rerun at a fixed shard count:
    # all three digests (metrics included) must hold still.
    fixed = sweep[PARITY_SHARDS]
    for workers in SCATTER_SWEEP:
        got = _batch_digests(
            _fast_config(PARITY_SHARDS, scatter_workers=workers), bundle
        )
        assert got == fixed, f"digests moved at scatter_workers={workers}"
    assert _batch_digests(_fast_config(PARITY_SHARDS), bundle) == fixed

    _PARITY.update(
        {
            "monolithic": {"answers": mono["answers"], "spans": mono["spans"]},
            "sharded": {
                str(n): {"answers": s["answers"], "spans": s["spans"]}
                for n, s in sweep.items()
            },
        }
    )


_PARITY: dict = {}


def _edit_one_document(bundle) -> CorpusBundle:
    """A copy of the corpus with exactly one document's text changed."""
    docs = list(bundle.documents)
    victim = docs[0]
    docs[0] = Document(
        text=victim.text + "\n\nNote: revised wording for the rebuild bench.",
        metadata=dict(victim.metadata),
    )
    return CorpusBundle(
        registry=bundle.registry,
        documents=docs,
        manual_page_names=dict(bundle.manual_page_names),
    )


def test_incremental_rebuild_speedup(bundle, tmp_path):
    cfg = ReproConfig(
        iterations_per_token=0,
        retrieval=RetrievalConfig(embedding_model=REBUILD_EMBEDDING),
        sharding=ShardingConfig(num_shards=REBUILD_SHARDS),
    )
    cache_dir = tmp_path / "shard-cache"

    reg = MetricsRegistry()
    with use_registry(reg):
        t0 = time.perf_counter()
        cold = build_sharded_index(bundle, cfg, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - t0
    assert reg.counter("repro.shard.builds").value == REBUILD_SHARDS
    cold_digests = {s.digest for s in cold.shards}

    # Monolithic full-rebuild reference over the same edited corpus.
    edited = _edit_one_document(bundle)
    clear_index_cache()
    t0 = time.perf_counter()
    get_or_build_index(edited, ReproConfig(
        iterations_per_token=0,
        retrieval=RetrievalConfig(embedding_model=REBUILD_EMBEDDING),
    ))
    mono_seconds = time.perf_counter() - t0

    # Incremental sharded rebuild: in-process cache cleared so the three
    # clean shards exercise the disk path, the dirty one rebuilds.
    clear_index_cache()
    reg = MetricsRegistry()
    with use_registry(reg):
        t0 = time.perf_counter()
        warm = build_sharded_index(edited, cfg, cache_dir=cache_dir)
        incr_seconds = time.perf_counter() - t0
    builds = reg.counter("repro.shard.builds").value
    disk_hits = reg.counter("repro.shard.disk_hits").value
    assert builds == 1, f"one edited document rebuilt {builds} shards, want 1"
    assert disk_hits == REBUILD_SHARDS - 1
    assert warm.digest != cold.digest  # the composite tracks the edit
    assert len(cold_digests & {s.digest for s in warm.shards}) == REBUILD_SHARDS - 1

    speedup = mono_seconds / incr_seconds
    assert speedup >= 2.0, (
        f"incremental rebuild {incr_seconds:.3f}s is only {speedup:.2f}x "
        f"faster than a monolithic full rebuild {mono_seconds:.3f}s (need >= 2x)"
    )

    payload = {
        "workload": {
            "questions": len(_questions()),
            "seed": SEED,
            "shard_sweep": list(SHARD_SWEEP),
            "scatter_sweep": list(SCATTER_SWEEP),
            "rebuild_shards": REBUILD_SHARDS,
            "rebuild_embedding": REBUILD_EMBEDDING,
        },
        "build": {
            "cold_sharded_seconds": round(cold_seconds, 4),
            "cold_shard_builds": REBUILD_SHARDS,
        },
        "incremental": {
            "monolithic_full_rebuild_seconds": round(mono_seconds, 4),
            "incremental_rebuild_seconds": round(incr_seconds, 4),
            "speedup": round(speedup, 3),
            "shard_builds": builds,
            "shard_disk_hits": disk_hits,
        },
        "digests": _PARITY,
    }
    _OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nparity: answers digest identical across monolithic + shards "
        f"{SHARD_SWEEP}\n"
        f"cold sharded build: {cold_seconds:.3f}s ({REBUILD_SHARDS} shards)\n"
        f"monolithic full rebuild: {mono_seconds:.3f}s\n"
        f"incremental rebuild:     {incr_seconds:.3f}s "
        f"({builds} shard rebuilt, {disk_hits} disk hits) -> {speedup:.2f}x"
    )
