"""E3 — Fig. 6c: impact of reranking (RAG vs reranking-enhanced RAG).

Paper result: reranking improved 11 questions over plain RAG, two of
them by 3 points, with no question scoring lower.
"""

from __future__ import annotations

from repro.evaluation import compare_modes, render_comparison


def test_fig6c_rag_vs_rerank(benchmark, runs_fast):
    def compare():
        return compare_modes(runs_fast["rag"], runs_fast["rag+rerank"])

    cmp_ = benchmark.pedantic(compare, rounds=1, iterations=1)

    print()
    print(render_comparison(cmp_, title="Fig. 6c — RAG vs reranking-enhanced RAG"))

    # Shape: reranking strictly helps (no regressions) and produces
    # multiple improvements including +3 jumps (paper: 11 improved,
    # two by +3 points; our cleaner corpus yields fewer but the same
    # qualitative picture).
    assert cmp_.worsened == []
    assert len(cmp_.improved) >= 2
    assert len(cmp_.improvements_of(3)) >= 2
