"""E11 — chaos sweeps: answer availability under injected faults.

Runs the 37-question benchmark with the resilience layer active while a
seeded :class:`FaultInjector` breaks the retriever, reranker, and LLM
hops at 0%, 10%, and 30% transient-fault rates.  Reports the answer
success rate and the degradation mix at each rate, and checks the two
properties the harness exists for: availability (>= 95% answered at 30%
faults, never a crashed sweep) and reproducibility (same seed => byte-
identical fault schedule and results).
"""

from __future__ import annotations

import pytest

from repro.config import WorkflowConfig
from repro.evaluation.chaos import run_chaos_experiment
from repro.resilience import FaultConfig

SEED = 0
RATES = (0.0, 0.1, 0.3)


def _run(bundle, rate: float):
    return run_chaos_experiment(
        bundle,
        WorkflowConfig(iterations_per_token=0),
        seed=SEED,
        fault_config=FaultConfig(transient_rate=rate),
    )


@pytest.mark.parametrize("rate", RATES, ids=[f"{int(100 * r)}pct" for r in RATES])
def test_chaos_sweep(benchmark, bundle, rate):
    run = benchmark.pedantic(_run, args=(bundle, rate), rounds=1, iterations=1)

    assert len(run.outcomes) == 37  # the sweep always completes
    if rate == 0.0:
        assert run.success_rate == 1.0
        assert run.degradation_mix()["clean"] == 37
    else:
        assert run.success_rate >= 0.95
    print(f"\n{run.render(title=f'{int(100 * rate)}% transient faults')}")


def test_chaos_reproducible(bundle):
    """Same seed, same config => byte-identical schedules and results."""
    a = _run(bundle, 0.3)
    b = _run(bundle, 0.3)
    assert a.schedule_digest == b.schedule_digest
    assert a.results_digest() == b.results_digest()

    different_seed = run_chaos_experiment(
        bundle,
        WorkflowConfig(iterations_per_token=0),
        seed=SEED + 1,
        fault_config=FaultConfig(transient_rate=0.3),
    )
    assert different_seed.schedule_digest != a.schedule_digest
