"""E14 — unified ingestion lifecycle: delta speed, exactness, no-op stability.

Three claims, each load-bearing for the one-write-path refactor
(ISSUE 10):

1. **Minimal re-embedding** — after a one-document edit, the delta lane
   re-embeds only that document's chunks.  The builder counters prove
   it: ``repro.ingest.chunks_embedded`` is a small fraction of the
   corpus, ``chunks_reused`` covers the rest, and ``repro.index.builds``
   does not move (a delta build is not a full build).
2. **Delta speed** — resolving the successor artifact through
   ``ingest_corpus`` (delta-from-parent) beats a from-scratch full build
   of the same edited corpus by >= 3x wall-clock.
3. **Digest exactness** — the delta-built artifact is *byte-identical*
   to the from-scratch build (same artifact digest, same vector matrix),
   and an engine swapped onto it answers the benchmark with the same
   answers digest as an engine built from scratch.  A no-op ingest
   (unchanged corpus) leaves the serving digest untouched and produces
   a byte-identical report on every run.

Results land in ``BENCH_ingest.json`` at the repo root; the ``digests``
block is what CI's two-run equality gate compares (timings are
wall-clock and may vary, the digests may not).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.api import open_engine
from repro.config import IngestConfig, ReproConfig, RetrievalConfig
from repro.corpus.builder import CorpusBundle
from repro.documents import Document
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import build_index, clear_index_cache
from repro.ingest import ingest_corpus
from repro.observability import MetricsRegistry, use_registry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
SEED = 11
QUESTIONS = 12
#: Corpus-free hashing model: the delta lane's precondition.
EMBEDDING = "petsc-embed-small"
SPEEDUP_FLOOR = 3.0
#: The one-document edit may touch at most this fraction of the corpus.
EMBED_FRACTION_CEILING = 0.1


def _cfg() -> ReproConfig:
    return ReproConfig(
        iterations_per_token=0,
        retrieval=RetrievalConfig(embedding_model=EMBEDDING),
        ingest=IngestConfig(),
    )


def _questions() -> list[str]:
    return [q.text for q in krylov_benchmark()[:QUESTIONS]]


def _edited(bundle) -> CorpusBundle:
    docs = list(bundle.documents)
    victim = docs[0]
    docs[0] = Document(
        text=victim.text + "\n\nNote: revised wording for the ingest bench.",
        metadata=dict(victim.metadata),
    )
    return CorpusBundle(
        registry=bundle.registry,
        documents=docs,
        manual_page_names=dict(bundle.manual_page_names),
    )


def test_ingest_delta_speed_and_exactness(bundle):
    cfg = _cfg()
    edited = _edited(bundle)

    # -- from-scratch reference: full build over the edited corpus.
    clear_index_cache()
    reg_full = MetricsRegistry()
    with use_registry(reg_full):
        t0 = time.perf_counter()
        scratch = build_index(edited, cfg)
        full_seconds = time.perf_counter() - t0
    assert reg_full.counter("repro.index.builds").value == 1
    total_chunks = len(scratch.chunks)

    # -- the delta lane: parent build (untimed), then the lifecycle.
    clear_index_cache()
    reg = MetricsRegistry()
    with use_registry(reg):
        engine = open_engine(cfg, bundle=bundle)
        warm_answers = engine.answer_many(_questions(), seed=SEED)
        builds_before = reg.counter("repro.index.builds").value
        t0 = time.perf_counter()
        report = ingest_corpus(engine, edited)
        delta_seconds = time.perf_counter() - t0
        swapped_batch = engine.answer_many(_questions(), seed=SEED)
    assert report.swapped and report.resolution == "delta"
    assert engine.artifact.digest == scratch.digest

    # Claim 1: counters prove only the edited document re-embedded.
    embedded = reg.counter("repro.ingest.chunks_embedded").value
    reused = reg.counter("repro.ingest.chunks_reused").value
    assert embedded + reused == total_chunks
    assert 0 < embedded <= EMBED_FRACTION_CEILING * total_chunks, (
        f"one edited document re-embedded {embedded} of {total_chunks} chunks"
    )
    assert reg.counter("repro.index.builds").value == builds_before
    assert reg.counter("repro.ingest.delta_builds").value == 1

    # Claim 2: the delta lane beats the full rebuild by >= 3x.
    speedup = full_seconds / delta_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"delta ingest {delta_seconds:.3f}s is only {speedup:.2f}x faster "
        f"than a full rebuild {full_seconds:.3f}s (need >= {SPEEDUP_FLOOR}x)"
    )

    # Claim 3a: byte-identical artifact, byte-identical answers.
    assert np.array_equal(
        engine.artifact.store.index.matrix, scratch.store.index.matrix
    )
    clear_index_cache()
    reg_ref = MetricsRegistry()
    scratch_engine = open_engine(cfg, bundle=edited, registry=reg_ref)
    scratch_batch = scratch_engine.answer_many(_questions(), seed=SEED)
    assert swapped_batch.answers_digest() == scratch_batch.answers_digest(), (
        "delta-swapped engine answers differ from a from-scratch build"
    )

    # Claim 3b: a no-op ingest changes no digest and is itself
    # deterministic: two runs produce byte-identical reports.
    noop_1 = ingest_corpus(engine, edited)
    noop_2 = ingest_corpus(engine, edited)
    assert noop_1.noop and noop_2.noop
    assert noop_1.digest == engine.artifact.digest == scratch.digest
    noop_bytes = json.dumps(noop_1.summary(), sort_keys=True)
    assert noop_bytes == json.dumps(noop_2.summary(), sort_keys=True)

    payload = {
        "workload": {
            "questions": QUESTIONS,
            "seed": SEED,
            "embedding": EMBEDDING,
            "total_chunks": total_chunks,
        },
        "delta": {
            "chunks_embedded": embedded,
            "chunks_reused": reused,
            "embed_fraction": round(embedded / total_chunks, 4),
            "full_rebuild_seconds": round(full_seconds, 4),
            "delta_ingest_seconds": round(delta_seconds, 4),
            "speedup": round(speedup, 3),
            "invalidation": report.invalidation,
        },
        "digests": {
            "artifact": scratch.digest,
            "delta": report.delta["delta_digest"],
            "answers_warm": warm_answers.answers_digest(),
            "answers_delta_swapped": swapped_batch.answers_digest(),
            "answers_from_scratch": scratch_batch.answers_digest(),
            "noop_report": noop_bytes,
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\ndelta ingest: embedded {embedded}/{total_chunks} chunks "
        f"({100 * embedded / total_chunks:.1f}%)\n"
        f"full rebuild: {full_seconds:.3f}s | delta ingest: "
        f"{delta_seconds:.3f}s -> {speedup:.2f}x\n"
        f"answers digest: delta-swapped == from-scratch == "
        f"{scratch_batch.answers_digest()[:16]}…"
    )
