"""E1 — Fig. 6a: per-question scores, GPT-4o baseline vs RAG.

Paper result: RAG improves scores for 20 of 37 questions and hurts 3.
Our substrate: a larger improvement count (the simulated baseline knows
less PETSc than GPT-4o) and at least one regression from the same
mechanism the paper describes (retrieval pulling tangential context).
"""

from __future__ import annotations

from repro.evaluation import compare_modes, render_comparison, render_score_histogram


def test_fig6a_baseline_vs_rag(benchmark, runs_fast):
    def compare():
        return compare_modes(runs_fast["baseline"], runs_fast["rag"])

    cmp_ = benchmark.pedantic(compare, rounds=1, iterations=1)

    print()
    print(render_comparison(cmp_, title="Fig. 6a — baseline vs RAG"))
    print()
    print(render_score_histogram(runs_fast["baseline"], title="baseline"))
    print()
    print(render_score_histogram(runs_fast["rag"], title="RAG"))

    # Shape assertions (paper: 20 improved / 3 worsened).
    assert len(cmp_.improved) >= 20
    assert len(cmp_.worsened) <= 3
    assert runs_fast["rag"].mean_score() > runs_fast["baseline"].mean_score()
