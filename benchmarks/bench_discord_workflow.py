"""E10 — the Fig. 5 Discord/mailing-list workflow, end to end.

Drives the full arc sequence (user email → poller → webhook → email bot
→ forum post → /reply → vetting buttons → reply mailed) and measures the
cycle throughput.  The paper cites >300 messages/month across the PETSc
support channels; a support cycle measured in tens of milliseconds shows
the bot layer itself is never the bottleneck (the LLM call dominates).
"""

from __future__ import annotations

import itertools

from repro.bots import build_support_system
from repro.config import WorkflowConfig

_counter = itertools.count(1)

QUESTIONS = [
    "Our pressure solve stalls; the operator has the constant vector in its null space.",
    "How do I change the relative tolerance and the maximum number of iterations?",
    "Why does GMRES keep allocating memory as the iteration proceeds?",
    "What preconditioner is used if I never choose one?",
]


def test_support_cycle(benchmark, bundle):
    system = build_support_system(bundle, WorkflowConfig(iterations_per_token=0))
    developer = next(u for u in system.server.members.values() if u.name == "barry")

    def cycle():
        i = next(_counter)
        subject = f"support question {i}"
        body = QUESTIONS[i % len(QUESTIONS)]
        system.user_sends_email(f"user{i}@site.edu", subject, body)
        assert system.poll()
        post = system.find_post(subject)
        draft = system.developer_replies(developer, post)
        draft.message.button("send").click(draft.message, developer)
        return draft

    draft = benchmark(cycle)

    assert draft.decided == "sent"
    assert system.chatbot.sent_emails
    assert system.account.unread_count() == 0  # bot's own mail never loops
    print(f"\nsupport cycles completed: {len(system.chatbot.sent_emails)}")
    print(f"interactions recorded: {len(system.store)}")
