"""E2 — Fig. 6b: baseline vs reranking-enhanced RAG.

Paper result: 25 of 37 questions improved, **no negative impact on any
question**, final distribution 33 questions at score 4 and 4 at score 3.
"""

from __future__ import annotations

from repro.evaluation import compare_modes, render_comparison, render_score_histogram


def test_fig6b_baseline_vs_rerank_rag(benchmark, runs_fast):
    def compare():
        return compare_modes(runs_fast["baseline"], runs_fast["rag+rerank"])

    cmp_ = benchmark.pedantic(compare, rounds=1, iterations=1)

    print()
    print(render_comparison(cmp_, title="Fig. 6b — baseline vs reranking-enhanced RAG"))
    print()
    print(render_score_histogram(runs_fast["rag+rerank"], title="reranking-enhanced RAG"))

    hist = runs_fast["rag+rerank"].score_histogram()
    # Paper: improvements for 25 questions, zero regressions, and every
    # question lands on score 3 or 4 (33x4 + 4x3).
    assert len(cmp_.improved) >= 25
    assert cmp_.worsened == []
    assert hist[0] == hist[1] == hist[2] == 0
    assert hist[4] >= 24
