"""E4 — Table II: run time for RAG and the LLM (seconds).

Paper (Intel i7-11700KF):

                 RAG                      RAG+reranking
             Min   Max   Avg           Min   Max   Avg
RAG time     0.16  3.11  0.44          0.48  5.71  1.05
LLM response 2.74 16.47  9.56          2.28 15.62  9.63

Shape targets: reranking multiplies the RAG stage time by roughly 2.4x,
and the rerank-enhanced RAG stage stays a small fraction (<11%) of the
LLM response time.  Our absolute numbers are much smaller (the simulated
LLM generates in tens of milliseconds, and the vector DB holds hundreds
of chunks rather than the full petsc.org corpus), but both ratios are
measured for real: the pipeline stages do genuine work and the simulated
model burns genuine per-token compute.

Since the observability layer, every answer carries a span tree, so this
bench also reports per-stage percentiles (p50/p90/p99 over locate,
refine, and llm spans) and writes them — with a structure digest of the
span trees — to ``BENCH_table2_latency.json`` at the repo root as the
perf baseline for future runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.evaluation import render_latency_table

_STAGES = ("locate", "refine", "llm")
_OUT = Path(__file__).resolve().parent.parent / "BENCH_table2_latency.json"


def _stage_percentiles(run) -> dict[str, dict[str, float]]:
    """p50/p90/p99 (ms) per pipeline stage, computed from span trees."""
    samples: dict[str, list[float]] = {s: [] for s in _STAGES}
    for o in run.outcomes:
        trace = o.result.trace
        if trace is None:
            continue
        for stage in _STAGES:
            seconds = trace.stage_seconds(stage)
            if seconds > 0:
                samples[stage].append(1000.0 * seconds)
    out: dict[str, dict[str, float]] = {}
    for stage, values in samples.items():
        if not values:
            continue
        arr = np.asarray(values)
        out[stage] = {
            "count": int(arr.size),
            "p50_ms": round(float(np.percentile(arr, 50)), 3),
            "p90_ms": round(float(np.percentile(arr, 90)), 3),
            "p99_ms": round(float(np.percentile(arr, 99)), 3),
            "mean_ms": round(float(arr.mean()), 3),
        }
    return out


def _span_digest(runs) -> str:
    digests = [
        o.result.trace.structure_digest()
        for run in runs
        for o in run.outcomes
        if o.result.trace is not None
    ]
    return hashlib.sha256(json.dumps(digests).encode()).hexdigest()


def test_table2_latency(benchmark, runs_timed):
    rag_run = runs_timed["rag"]
    rerank_run = runs_timed["rag+rerank"]

    def summarize():
        return (
            rag_run.rag_stats(),
            rerank_run.rag_stats(),
            rag_run.llm_stats(),
            rerank_run.llm_stats(),
        )

    rag_t, rerank_t, llm_rag_t, llm_rerank_t = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )

    print()
    print("Table II — run time for RAG and the LLM (seconds)")
    print(render_latency_table(rag_t, rerank_t, llm_rag_t, llm_rerank_t))

    # Every answer must carry a well-formed span tree.
    for run in runs_timed.values():
        for o in run.outcomes:
            assert o.result.trace is not None, f"{o.question.qid}: no trace"
            violations = o.result.trace.validate()
            assert not violations, f"{o.question.qid}: {violations}"

    percentiles = {
        mode: _stage_percentiles(run) for mode, run in runs_timed.items()
    }
    print("per-stage percentiles (ms, from spans):")
    for mode, stages in percentiles.items():
        for stage, stats in stages.items():
            print(
                f"  {mode:<12}{stage:<8}"
                f"p50 {stats['p50_ms']:>8.3f}  p90 {stats['p90_ms']:>8.3f}  "
                f"p99 {stats['p99_ms']:>8.3f}"
            )

    _OUT.write_text(
        json.dumps(
            {
                "bench": "table2_latency",
                "stage_percentiles": percentiles,
                "span_digest": _span_digest(runs_timed.values()),
                "table": {
                    "rag": {"min": rag_t.minimum, "max": rag_t.maximum, "avg": rag_t.average},
                    "rag+rerank": {
                        "min": rerank_t.minimum, "max": rerank_t.maximum, "avg": rerank_t.average,
                    },
                    "llm(rag)": {
                        "min": llm_rag_t.minimum, "max": llm_rag_t.maximum, "avg": llm_rag_t.average,
                    },
                    "llm(rag+rerank)": {
                        "min": llm_rerank_t.minimum,
                        "max": llm_rerank_t.maximum,
                        "avg": llm_rerank_t.average,
                    },
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    ratio = rerank_t.average / rag_t.average
    frac = rerank_t.average / llm_rerank_t.average
    # Reranking adds meaningful RAG-stage cost (paper: ~2.4x) ...
    assert ratio > 1.2, f"reranking multiplied RAG time by only {ratio:.2f}x"
    # ... while the RAG stage stays well below the LLM response time
    # (paper: < 11%; we allow < 60% since our simulated LLM is fast).
    assert frac < 0.6, f"RAG stage is {100 * frac:.0f}% of LLM time"
