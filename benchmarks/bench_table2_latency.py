"""E4 — Table II: run time for RAG and the LLM (seconds).

Paper (Intel i7-11700KF):

                 RAG                      RAG+reranking
             Min   Max   Avg           Min   Max   Avg
RAG time     0.16  3.11  0.44          0.48  5.71  1.05
LLM response 2.74 16.47  9.56          2.28 15.62  9.63

Shape targets: reranking multiplies the RAG stage time by roughly 2.4x,
and the rerank-enhanced RAG stage stays a small fraction (<11%) of the
LLM response time.  Our absolute numbers are much smaller (the simulated
LLM generates in tens of milliseconds, and the vector DB holds hundreds
of chunks rather than the full petsc.org corpus), but both ratios are
measured for real: the pipeline stages do genuine work and the simulated
model burns genuine per-token compute.
"""

from __future__ import annotations

from repro.evaluation import render_latency_table


def test_table2_latency(benchmark, runs_timed):
    rag_run = runs_timed["rag"]
    rerank_run = runs_timed["rag+rerank"]

    def summarize():
        return (
            rag_run.rag_stats(),
            rerank_run.rag_stats(),
            rag_run.llm_stats(),
            rerank_run.llm_stats(),
        )

    rag_t, rerank_t, llm_rag_t, llm_rerank_t = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )

    print()
    print("Table II — run time for RAG and the LLM (seconds)")
    print(render_latency_table(rag_t, rerank_t, llm_rag_t, llm_rerank_t))

    ratio = rerank_t.average / rag_t.average
    frac = rerank_t.average / llm_rerank_t.average
    # Reranking adds meaningful RAG-stage cost (paper: ~2.4x) ...
    assert ratio > 1.2, f"reranking multiplied RAG time by only {ratio:.2f}x"
    # ... while the RAG stage stays well below the LLM response time
    # (paper: < 11%; we allow < 60% since our simulated LLM is fast).
    assert frac < 0.6, f"RAG stage is {100 * frac:.0f}% of LLM time"
