"""E6/E7 — case studies 1 and 2 (paper Figs. 7 and 8).

Case study 1: the rectangular/non-square matrix question — the
reranking-enhanced RAG surfaces the "KSP can also be used to solve least
squares problems, using, for example, KSPLSQR" passage and recommends
KSPLSQR.

Case study 2: the preallocation-diagnostic question — the critical
``-info`` paragraph is retrieved by the reranking-enhanced pipeline.
"""

from __future__ import annotations

from repro.config import WorkflowConfig
from repro.evaluation.casestudies import (
    CASE_STUDY_1_QID,
    CASE_STUDY_2_QID,
    run_case_study,
)
from repro.pipeline import build_rag_pipeline


def _pipelines(bundle):
    cfg = WorkflowConfig(iterations_per_token=0)
    return (
        build_rag_pipeline(bundle, cfg, mode="rag"),
        build_rag_pipeline(bundle, cfg, mode="rag+rerank"),
    )


def test_case_study_1_ksplsqr(benchmark, bundle, grader):
    rag, rerank = _pipelines(bundle)

    def run():
        return run_case_study(CASE_STUDY_1_QID, rag, rerank, grader)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Case Study 1 (paper Fig. 7)")
    print(res.render())

    assert res.marker_in_rerank_context()
    assert "KSPLSQR" in res.rerank.answer
    assert int(res.rerank_grade.score) >= 3
    assert int(res.rerank_grade.score) >= int(res.rag_grade.score)


def test_case_study_2_info_option(benchmark, bundle, grader):
    rag, rerank = _pipelines(bundle)

    def run():
        return run_case_study(CASE_STUDY_2_QID, rag, rerank, grader)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Case Study 2 (paper Fig. 8)")
    print(res.render())

    assert res.marker_in_rerank_context()
    assert "-info" in res.rerank.answer
    assert int(res.rerank_grade.score) >= 3
    assert int(res.rerank_grade.score) >= int(res.rag_grade.score)
