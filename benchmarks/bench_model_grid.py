"""E8 — the model-comparison grid (Section V-B).

Paper: "We conducted experiments with several popular LLMs, including
OpenAI's GPT-4 variants and Meta's Llama3 variants, alongside various
embedding models.  Our analysis identified GPT-4o and
text-embedding-3-large as providing the best overall performance."

This bench sweeps every registered chat model against every registered
embedding model on a benchmark subset and prints the mean-score grid.
The simulated counterparts of the paper's winners must come out on top.
"""

from __future__ import annotations

from repro.config import RetrievalConfig, WorkflowConfig
from repro.embeddings import EMBEDDING_MODEL_NAMES
from repro.evaluation import krylov_benchmark, run_experiment
from repro.llm import CHAT_MODEL_NAMES
from repro.pipeline import build_rag_pipeline

#: Subset keeps the grid affordable: 4 chat models x 3 embeddings.
SUBSET_SIZE = 16


def test_model_grid(benchmark, bundle, grader):
    questions = krylov_benchmark()[:SUBSET_SIZE]

    def sweep():
        grid: dict[tuple[str, str], float] = {}
        for chat in CHAT_MODEL_NAMES:
            for emb in EMBEDDING_MODEL_NAMES:
                cfg = WorkflowConfig(
                    chat_model=chat,
                    retrieval=RetrievalConfig(embedding_model=emb),
                    iterations_per_token=0,
                )
                pipeline = build_rag_pipeline(bundle, cfg, mode="rag+rerank")
                run = run_experiment(pipeline, grader, questions=questions)
                grid[(chat, emb)] = run.mean_score()
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"mean rubric score over {SUBSET_SIZE} questions (rag+rerank)")
    header = f"{'chat model':<18}" + "".join(f"{e.split('-')[-1]:>10}" for e in EMBEDDING_MODEL_NAMES)
    print(header)
    for chat in CHAT_MODEL_NAMES:
        row = f"{chat:<18}" + "".join(
            f"{grid[(chat, emb)]:>10.2f}" for emb in EMBEDDING_MODEL_NAMES
        )
        print(row)

    best_pair = max(grid, key=grid.get)
    print(f"\nbest combination: {best_pair[0]} + {best_pair[1]}")

    # Paper shape: the GPT-4o-class model with the large embedding wins
    # (ties broken in its favor are acceptable).
    top = grid[("gpt-4o-sim", "petsc-embed-large")]
    assert top >= max(grid.values()) - 1e-9
    # The weakest model/embedding must not beat the strongest pairing.
    assert grid[("llama-3-8b-sim", "petsc-embed-mini")] <= top
