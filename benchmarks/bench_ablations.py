"""Ablations of the design choices DESIGN.md calls out.

A1  K/L sweep around the paper's (K=8, L=4)
A2  keyword-search augmentation on/off
A3  chunk size / overlap of the recursive splitter
A4  exact brute-force vs IVF approximate index (recall vs speed)
A5  indexing the raw mail archives (the paper deliberately did not)
A6  hybrid first pass (vector + BM25 fused with RRF) vs vector only
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus.builder import chunk_corpus
from repro.embeddings import create_embedding_model
from repro.evaluation import krylov_benchmark, run_experiment
from repro.pipeline import build_rag_pipeline
from repro.vectorstore import BruteForceIndex, IVFIndex

SUBSET = 16


def _mean(bundle, grader, cfg, *, mode="rag+rerank", n=SUBSET):
    pipeline = build_rag_pipeline(bundle, cfg, mode=mode)
    return run_experiment(pipeline, grader, questions=krylov_benchmark()[:n]).mean_score()


def test_ablation_kl_sweep(benchmark, bundle, grader):
    """A1: more candidates and more contexts help up to a point."""

    def sweep():
        out = {}
        for k, l in ((4, 2), (8, 4), (12, 6)):
            cfg = WorkflowConfig(
                retrieval=RetrievalConfig(first_pass_k=k, final_l=l),
                iterations_per_token=0,
            )
            out[(k, l)] = _mean(bundle, grader, cfg)
        return out

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for (k, l), mean in scores.items():
        print(f"K={k:>2} L={l}:  mean score {mean:.2f}")
    # The paper's operating point must not be worse than the tiny config.
    assert scores[(8, 4)] >= scores[(4, 2)]


def test_ablation_keyword_search(benchmark, bundle, grader):
    """A2: PETSc-specific keyword lookup (Section III-C) must not hurt."""

    def compare():
        on = _mean(bundle, grader, WorkflowConfig(
            retrieval=RetrievalConfig(use_keyword_search=True), iterations_per_token=0))
        off = _mean(bundle, grader, WorkflowConfig(
            retrieval=RetrievalConfig(use_keyword_search=False), iterations_per_token=0))
        return on, off

    on, off = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nkeyword search on:  {on:.2f}\nkeyword search off: {off:.2f}")
    assert on >= off - 0.2


def test_ablation_chunking(benchmark, bundle, grader):
    """A3: chunk geometry moves retrieval quality."""

    def sweep():
        out = {}
        for size, overlap in ((400, 60), (800, 120), (1600, 240)):
            cfg = WorkflowConfig(
                retrieval=RetrievalConfig(chunk_size=size, chunk_overlap=overlap),
                iterations_per_token=0,
            )
            out[size] = _mean(bundle, grader, cfg)
        return out

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for size, mean in scores.items():
        print(f"chunk_size={size:>5}: mean score {mean:.2f}")
    assert max(scores.values()) - min(scores.values()) < 2.0  # sane range


def test_ablation_ivf_vs_bruteforce(benchmark, chunks):
    """A4: the IVF index trades recall for per-query speed."""
    emb = create_embedding_model("petsc-embed-small")
    vectors = emb.embed_documents([c.text for c in chunks])

    bf = BruteForceIndex(emb.dim)
    bf.add(vectors)
    ivf = IVFIndex(emb.dim, n_clusters=24, nprobe=4)
    ivf.add(vectors)
    ivf.train()

    queries = [emb.embed_query(q.text) for q in krylov_benchmark()]

    def race():
        t0 = time.perf_counter()
        exact = [bf.search(q, 8)[0] for q in queries]
        t_bf = time.perf_counter() - t0
        t0 = time.perf_counter()
        approx = [ivf.search(q, 8)[0] for q in queries]
        t_ivf = time.perf_counter() - t0
        return exact, approx, t_bf, t_ivf

    exact, approx, t_bf, t_ivf = benchmark.pedantic(race, rounds=1, iterations=1)

    recall = np.mean([
        len(set(e.tolist()) & set(a.tolist())) / 8 for e, a in zip(exact, approx)
    ])
    print(f"\nbrute force: {1e6 * t_bf / len(queries):.0f} us/query (recall 1.00)")
    print(f"IVF nprobe=4: {1e6 * t_ivf / len(queries):.0f} us/query (recall {recall:.2f})")
    assert recall > 0.4


def test_ablation_hybrid_first_pass(benchmark, bundle, chunks, grader):
    """A6: fusing BM25 into the first pass — recall of gold-fact chunks.

    Measured as recall@8 of the benchmark questions' key-fact chunks,
    the quantity that upper-bounds what reranking can recover.
    """
    from repro.retrieval import BM25Retriever, HybridRetriever, VectorRetriever
    from repro.vectorstore import VectorStore

    emb = create_embedding_model("petsc-embed-large", corpus_texts=[c.text for c in chunks])
    store = VectorStore.from_documents(chunks, emb)
    vector = VectorRetriever(store)
    hybrid = HybridRetriever([vector, BM25Retriever(chunks)])

    questions = [q for q in krylov_benchmark() if q.key_facts]

    def recall_at_8(retriever):
        hit = total = 0
        for q in questions:
            got = set()
            for h in retriever.retrieve(q.text, k=8):
                got |= h.document.fact_ids()
            for fid in q.key_facts:
                total += 1
                hit += fid in got
        return hit / total

    r_vec, r_hyb = benchmark.pedantic(
        lambda: (recall_at_8(vector), recall_at_8(hybrid)), rounds=1, iterations=1
    )
    print(f"\nvector-only recall@8 of key facts:  {r_vec:.2f}")
    print(f"vector+BM25 RRF recall@8:           {r_hyb:.2f}")
    assert r_hyb >= r_vec - 0.1


def test_ablation_mail_archives(benchmark, bundle, grader):
    """A5: indexing the unvetted mail archives injects misconceptions.

    The paper deliberately excluded the petsc-users archives from its RAG
    databases.  This ablation shows why: the archive threads contain user
    misconceptions, and once indexed they can be retrieved and repeated.
    """

    def compare():
        clean = _mean(bundle, grader, WorkflowConfig(iterations_per_token=0), n=37)
        cfg = WorkflowConfig(
            retrieval=RetrievalConfig(include_mail_archives=True),
            iterations_per_token=0,
        )
        noisy = _mean(bundle, grader, cfg, n=37)
        return clean, noisy

    clean, noisy = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nofficial docs only:   mean score {clean:.2f}")
    print(f"with mail archives:   mean score {noisy:.2f}")
    # Indexing raw archives must not *improve* things; typically it hurts.
    assert noisy <= clean + 0.1
