"""E12 — batched query-engine throughput vs sequential answering.

Runs the 37-question benchmark twice over the same index artifact with
the latency simulation ON: once sequentially (``QueryEngine.answer`` per
question — one scalar token-burn loop per completion) and once through
``QueryEngine.answer_many`` (a bounded worker pool that defers every
completion's burn into a single vectorized flush).  The batch must reach
at least 2x the sequential throughput while staying byte-identical:
answers, span-structure digests, and metric digests are compared across
1/2/4 workers and across two same-seed runs.

Results land in ``BENCH_batch_throughput.json`` at the repo root; the
``digests`` block is what CI's two-run equality gate compares (timings
are wall-clock and may vary, the digests may not).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config import WorkflowConfig
from repro.engine import QueryEngine
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import get_or_build_index
from repro.observability import MetricsRegistry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_batch_throughput.json"
SEED = 7
WORKER_SWEEP = (1, 2, 4)
BATCH_WORKERS = 4


def _questions() -> list[str]:
    return [q.text for q in krylov_benchmark()]


def _timed_config() -> WorkflowConfig:
    return WorkflowConfig()  # persona-default latency burn: the real workload


def _batch_run(artifact, *, workers: int):
    """One batch over a fresh engine + registry (cold caches)."""
    reg = MetricsRegistry()
    engine = QueryEngine(artifact, _timed_config(), registry=reg)
    batch = engine.answer_many(_questions(), workers=workers, seed=SEED)
    view = json.dumps(reg.deterministic_view(), sort_keys=True)
    return batch, view


def test_batch_throughput_and_digest_stability(bundle):
    questions = _questions()
    cfg = _timed_config()
    artifact = get_or_build_index(bundle, cfg)

    # Sequential reference: one engine, one question at a time, answer
    # cache disabled by uniqueness (37 distinct questions, cold start).
    seq_engine = QueryEngine(artifact, cfg, registry=MetricsRegistry())
    t0 = time.perf_counter()
    seq_results = [seq_engine.answer(q) for q in questions]
    seq_seconds = time.perf_counter() - t0
    seq_qps = len(questions) / seq_seconds

    # Worker sweep: every digest must be invariant.
    sweep = {}
    for workers in WORKER_SWEEP:
        batch, view = _batch_run(artifact, workers=workers)
        assert batch.answered_count == len(questions)
        sweep[workers] = {
            "batch": batch,
            "answers": batch.answers_digest(),
            "spans": batch.span_digest(),
            "metrics_view": view,
        }
    assert len({s["answers"] for s in sweep.values()}) == 1
    assert len({s["spans"] for s in sweep.values()}) == 1
    assert len({s["metrics_view"] for s in sweep.values()}) == 1

    # Two same-seed runs from equal (cold) cache state: byte-identical.
    rerun, rerun_view = _batch_run(artifact, workers=BATCH_WORKERS)
    assert rerun.answers_digest() == sweep[BATCH_WORKERS]["answers"]
    assert rerun.span_digest() == sweep[BATCH_WORKERS]["spans"]
    assert rerun_view == sweep[BATCH_WORKERS]["metrics_view"]

    # The batch answers must match the sequential answers text-for-text.
    batch = sweep[BATCH_WORKERS]["batch"]
    assert [it.result.answer for it in batch.items] == [r.answer for r in seq_results]

    batch_qps = batch.questions_per_second
    speedup = batch_qps / seq_qps
    assert speedup >= 2.0, (
        f"batched throughput {batch_qps:.2f} q/s is only {speedup:.2f}x "
        f"sequential {seq_qps:.2f} q/s (need >= 2x)"
    )

    payload = {
        "workload": {
            "questions": len(questions),
            "seed": SEED,
            "worker_sweep": list(WORKER_SWEEP),
            "batch_workers": BATCH_WORKERS,
            "artifact_digest": artifact.digest,
        },
        "throughput": {
            "sequential_seconds": round(seq_seconds, 4),
            "sequential_qps": round(seq_qps, 3),
            "batch_seconds": round(batch.batch_seconds, 4),
            "batch_qps": round(batch_qps, 3),
            "speedup": round(speedup, 3),
            "deferred_tokens": batch.deferred_tokens,
            "vectorized_burn_seconds": round(batch.burn_seconds, 4),
        },
        "digests": {
            "answers": sweep[BATCH_WORKERS]["answers"],
            "spans": sweep[BATCH_WORKERS]["spans"],
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"\nsequential: {seq_qps:7.2f} q/s ({seq_seconds:.2f}s for {len(questions)})\n"
        f"batched:    {batch_qps:7.2f} q/s ({batch.batch_seconds:.2f}s, "
        f"workers={BATCH_WORKERS}) -> {speedup:.2f}x\n"
        f"deferred {batch.deferred_tokens} tokens into a "
        f"{1000 * batch.burn_seconds:.1f} ms vectorized flush\n"
        f"answers digest: {payload['digests']['answers']}\n"
        f"span digest:    {payload['digests']['spans']}"
    )
