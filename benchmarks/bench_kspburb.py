"""E5 — the KSPBurb probe (Sections II and V-B).

Paper: ChatGPT confidently fabricated a description of the fictitious
``KSPBurb`` solver (scored 0); with the PETSc RAG system the model
correctly answers that no such function exists.
"""

from __future__ import annotations

from repro.config import WorkflowConfig
from repro.evaluation import krylov_benchmark
from repro.pipeline import build_rag_pipeline

QUESTION = "What does KSPBurb do?"


def test_kspburb_hallucination_and_fix(benchmark, bundle, grader):
    cfg = WorkflowConfig(iterations_per_token=0)
    baseline = build_rag_pipeline(bundle, cfg, mode="baseline")
    rerank = build_rag_pipeline(bundle, cfg, mode="rag+rerank")
    probe = next(q for q in krylov_benchmark() if q.kind == "nonexistent")

    def both():
        return baseline.answer(QUESTION), rerank.answer(QUESTION)

    base_res, rag_res = benchmark.pedantic(both, rounds=1, iterations=1)
    base_grade = grader.grade(probe, base_res.answer)
    rag_grade = grader.grade(probe, rag_res.answer)

    print()
    print(f"Question: {QUESTION}")
    print(f"\n--- baseline (score {int(base_grade.score)}) ---\n{base_res.answer}")
    print(f"\n--- RAG+rerank (score {int(rag_grade.score)}) ---\n{rag_res.answer}")

    assert int(base_grade.score) == 0          # confident fabrication
    assert base_grade.fabrications
    assert int(rag_grade.score) == 4           # grounded refusal
    assert rag_grade.refusal
