"""Shared fixtures for the benchmark harness.

The experiment runs are session-scoped and shared across bench files:
``runs_fast`` (latency burn disabled — used by the Fig. 6 score
comparisons, where only scores matter) and ``runs_timed`` (burn enabled —
used by the Table II latency reproduction).
"""

from __future__ import annotations

import pytest

from repro.config import WorkflowConfig
from repro.corpus import build_default_corpus
from repro.corpus.builder import chunk_corpus
from repro.evaluation import BlindGrader, run_experiment
from repro.pipeline import build_rag_pipeline
from repro.retrieval import ManualPageKeywordSearch


@pytest.fixture(scope="session")
def bundle():
    return build_default_corpus()


@pytest.fixture(scope="session")
def chunks(bundle):
    return chunk_corpus(bundle)


@pytest.fixture(scope="session")
def grader(bundle):
    kw = ManualPageKeywordSearch(bundle)
    return BlindGrader(registry=bundle.registry, known_identifiers=kw.known_identifiers())


@pytest.fixture(scope="session")
def runs_fast(bundle, grader):
    cfg = WorkflowConfig(iterations_per_token=0)
    return {
        mode: run_experiment(build_rag_pipeline(bundle, cfg, mode=mode), grader)
        for mode in ("baseline", "rag", "rag+rerank")
    }


@pytest.fixture(scope="session")
def runs_timed(bundle, grader):
    cfg = WorkflowConfig()  # persona-default latency burn
    return {
        mode: run_experiment(build_rag_pipeline(bundle, cfg, mode=mode), grader)
        for mode in ("rag", "rag+rerank")
    }
