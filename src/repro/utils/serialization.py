"""JSON (de)serialization helpers with dataclass support."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def dataclass_to_dict(obj: Any) -> Any:
    """Recursively convert dataclasses / containers to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: dataclass_to_dict(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): dataclass_to_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [dataclass_to_dict(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Path):
        return str(obj)
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(path: str | Path, obj: Any, *, indent: int = 2) -> None:
    """Write ``obj`` (dataclasses allowed) to ``path`` as JSON."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(dataclass_to_dict(obj), indent=indent, sort_keys=False))


def load_json(path: str | Path) -> Any:
    """Read a JSON file."""
    return json.loads(Path(path).read_text())
