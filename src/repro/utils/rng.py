"""Deterministic hashing and seed derivation.

Python's builtin ``hash`` is salted per process, so anything that must be
stable across runs (feature hashing for embeddings, simulated model
behaviour, corpus shuffling) goes through :func:`stable_hash`, which is
BLAKE2-based and keyed by an explicit namespace.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def stable_hash(value: str, namespace: str = "") -> int:
    """A 64-bit hash of ``value`` that is stable across processes.

    ``namespace`` decorrelates different uses of the same string (e.g.
    hashing a token for the embedding index vs. for its sign).
    """
    h = hashlib.blake2b(digest_size=8, person=namespace.encode()[:16] or b"repro")
    h.update(value.encode("utf-8", errors="replace"))
    return int.from_bytes(h.digest(), "little") & _MASK64


def derive_seed(*parts: str | int) -> int:
    """Derive a 32-bit RNG seed from heterogeneous parts, deterministically."""
    h = hashlib.blake2b(digest_size=4)
    for p in parts:
        h.update(str(p).encode("utf-8", errors="replace"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def rng_for(*parts: str | int) -> np.random.Generator:
    """A NumPy Generator seeded deterministically from ``parts``."""
    return np.random.default_rng(derive_seed(*parts))
