"""Text processing primitives shared across the retrieval stack.

The tokenizer here is deliberately simple and deterministic: retrieval,
embeddings, BM25, rerankers, and the simulated LLM all share one
definition of a "token" so that lexical signals line up across stages.

PETSc identifiers such as ``KSPSetType`` or ``-ksp_monitor`` are kept
intact as single tokens (case preserved in :func:`code_tokens`) because
manual-page keyword search depends on exact identifier matching.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

# A compact English stopword list.  Kept small on purpose: technical
# queries are short and over-aggressive stopword removal hurts recall.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an the and or but if then else of in on at by for with to from as is
    are was were be been being am do does did doing have has had having it
    its this that these those there here he she they them his her their i
    you we us our your my me so not no yes can could should would will
    shall may might must what which who whom how when where why whether
    about into over under again further once because while during both
    each few more most other some such only own same than too very s t
    don now exactly actually really simply certainly definitely basically
    just also
    """.split()
)

# Words that look like PETSc identifiers: CamelCase starting with a known
# class prefix, or option-database keys starting with '-'.
_PETSC_IDENT_RE = re.compile(
    r"""
    (?:(?<![A-Za-z0-9_-])-[a-z][a-z0-9_]*_[a-z0-9_]+)  # option key, e.g. -ksp_rtol
    | (?:(?<![A-Za-z0-9_])[A-Z][A-Za-z0-9]*[A-Z][A-Za-z0-9]*)  # CamelCase API, e.g. KSPSolve
    """,
    re.VERBOSE,
)

#: Identifier shapes that belong to PETSc's API namespaces.  Concepts that
#: merely look CamelCase (BiCGStab, OpenMP) are not API identifiers.
_PETSC_API_RE = re.compile(
    r"^(?:(?:KSP|PC|Mat|Vec|SNES|TS|DM|IS|Petsc)[A-Za-z0-9_]+|-[a-z][a-z0-9_]*_[a-z0-9_]+)$"
)


def is_petsc_api_identifier(token: str) -> bool:
    """Whether ``token`` has the shape of a PETSc API name or option key."""
    return _PETSC_API_RE.match(token) is not None

_WORD_RE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_\-]*")

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9`\"'(])")

_WS_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Collapse whitespace and strip the ends.

    Normalization is intentionally *not* lowercasing: identifier case is
    meaningful in this corpus and is handled per-consumer.
    """
    return _WS_RE.sub(" ", text).strip()


_CAMEL_RE = re.compile(r"[A-Z]+(?![a-z])|[A-Z][a-z]+|[a-z]+|[0-9]+")


def _subtokens(raw: str) -> list[str]:
    """Component tokens of a compound: hyphen, underscore, CamelCase parts.

    ``KSPGetConvergedReason`` → ``ksp, converged, reason`` (+ ``get`` is a
    stopword-length fragment and survives only if ≥3 chars);
    ``-ksp_converged_reason`` → ``ksp, converged, reason``;
    ``low-memory`` → ``low, memory``.
    """
    parts: list[str] = []
    for piece in re.split(r"[-_]", raw):
        if not piece:
            continue
        camel = _CAMEL_RE.findall(piece)
        if len(camel) > 1:
            parts.extend(c.lower() for c in camel if len(c) >= 3)
        elif piece != raw:
            parts.append(piece.lower())
    return [p for p in parts if p not in STOPWORDS]


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens with stopwords removed.

    This is the shared tokenization for embeddings, BM25, and relevance.
    Compound tokens are kept whole *and* split into their parts —
    hyphenated words ("low-memory" → ``low``, ``memory``), option keys
    ("-ksp_converged_reason" → ``converged``, ``reason``), and CamelCase
    API names ("KSPGetConvergedReason" → ``ksp``, ``converged``,
    ``reason``) — so natural-language questions match API-heavy prose.
    """
    out: list[str] = []
    for m in _WORD_RE.finditer(text):
        raw = m.group(0)
        tok = raw.lower()
        if tok in STOPWORDS:
            continue
        out.append(tok)
        out.extend(_subtokens(raw))
    return out


def tokenize_with_stopwords(text: str) -> list[str]:
    """Lowercased word tokens, stopwords retained (for proximity scoring)."""
    return [m.group(0).lower() for m in _WORD_RE.finditer(text)]


def code_tokens(text: str) -> list[str]:
    """Case-preserving tokens that look like PETSc identifiers.

    Used by manual-page keyword search: ``"What does KSPSolve do?"`` →
    ``["KSPSolve"]``.  Option keys keep their leading dash.
    """
    return [m.group(0) for m in _PETSC_IDENT_RE.finditer(text)]


def word_ngrams(tokens: Iterable[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield contiguous word n-grams from a token sequence."""
    if n < 1:
        raise ValueError(f"n-gram order must be >= 1, got {n}")
    toks = list(tokens)
    for i in range(len(toks) - n + 1):
        yield tuple(toks[i : i + n])


def sentences(text: str) -> list[str]:
    """Split text into sentences with a lightweight punctuation heuristic.

    Line breaks are sentence boundaries too — Markdown bullets and code
    lines must not merge into one "sentence", or signature-based fact
    detection would see terms from different statements as co-occurring.
    """
    out: list[str] = []
    for line in text.splitlines():
        line = normalize_text(line)
        if not line:
            continue
        out.extend(s.strip() for s in _SENTENCE_RE.split(line) if s.strip())
    return out


_SUFFIXES: tuple[str, ...] = (
    "ization", "ations", "ation", "ences", "ence", "ances", "ance",
    "ements", "ement", "ments", "ment", "ings", "ing", "ions", "ion",
    "ities", "ity", "ures", "ure", "ness", "ives", "ive", "ally", "ly",
    "ers", "er", "ies", "ed", "es", "s",
)


def stem(token: str) -> str:
    """A crude suffix-stripping stemmer for relevance matching.

    Far weaker than Porter, but enough to unify the inflection pairs that
    matter in solver questions: converged/convergence, failed/failure,
    iteration/iterative, preconditioner/preconditioning.  Identifiers and
    short tokens pass through unchanged.
    """
    if len(token) <= 4 or not token.islower():
        return token
    for suffix in _SUFFIXES:
        if token.endswith(suffix):
            base = token[: -len(suffix)]
            if len(base) >= 3:
                if suffix == "ies":
                    return base + "y"
                return base
    # Final-e drop unifies pairs like solve/solver (the latter loses its
    # 'er' above) without a full Porter implementation.
    if token.endswith("e") and len(token) > 4:
        return token[:-1]
    return token


def stemmed_tokens(text: str) -> list[str]:
    """Stemmed, lowercased, stopword-filtered tokens."""
    return [stem(t) for t in tokenize(text)]


def truncate_words(text: str, max_words: int) -> str:
    """Truncate ``text`` to at most ``max_words`` whitespace-separated words."""
    if max_words < 0:
        raise ValueError(f"max_words must be >= 0, got {max_words}")
    words = text.split()
    if len(words) <= max_words:
        return text
    return " ".join(words[:max_words]) + " ..."
