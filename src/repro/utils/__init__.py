"""Shared low-level utilities: text processing, timing, RNG, serialization."""

from repro.utils.textproc import (
    normalize_text,
    sentences,
    tokenize,
    tokenize_with_stopwords,
    word_ngrams,
    STOPWORDS,
)
from repro.utils.timing import StageTimer, Timer, TimingStats
from repro.utils.rng import derive_seed, stable_hash
from repro.utils.serialization import dump_json, load_json, dataclass_to_dict

__all__ = [
    "normalize_text",
    "sentences",
    "tokenize",
    "tokenize_with_stopwords",
    "word_ngrams",
    "STOPWORDS",
    "StageTimer",
    "Timer",
    "TimingStats",
    "derive_seed",
    "stable_hash",
    "dump_json",
    "load_json",
    "dataclass_to_dict",
]
