"""Wall-clock timing helpers used to reproduce the paper's Table II.

The paper reports per-stage Min/Max/Avg running times for the RAG
process and the LLM response separately.  :class:`StageTimer` collects
named stage durations across many pipeline invocations and produces the
same Min/Max/Avg summary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class TimingStats:
    """Min/Max/Avg summary over a series of durations (seconds)."""

    count: int
    minimum: float
    maximum: float
    average: float
    total: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "TimingStats":
        if not samples:
            raise ValueError("cannot summarize an empty sample list")
        total = sum(samples)
        return cls(
            count=len(samples),
            minimum=min(samples),
            maximum=max(samples),
            average=total / len(samples),
            total=total,
        )

    def as_row(self, ndigits: int = 2) -> tuple[float, float, float]:
        """(Min, Max, Avg) rounded — the layout of the paper's Table II."""
        return (
            round(self.minimum, ndigits),
            round(self.maximum, ndigits),
            round(self.average, ndigits),
        )


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StageTimer:
    """Accumulates named stage durations across pipeline runs."""

    samples: dict[str, list[float]] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for stage {stage!r}: {seconds}")
        self.samples.setdefault(stage, []).append(seconds)

    def time(self, stage: str) -> "_StageContext":
        """Context manager recording one sample for ``stage``."""
        return _StageContext(self, stage)

    def stats(self, stage: str) -> TimingStats:
        try:
            return TimingStats.from_samples(self.samples[stage])
        except KeyError:
            raise KeyError(f"no samples recorded for stage {stage!r}") from None

    def stages(self) -> list[str]:
        return sorted(self.samples)

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's samples into this one (stage-wise append)."""
        for stage, vals in other.samples.items():
            self.samples.setdefault(stage, []).extend(vals)


class _StageContext:
    def __init__(self, timer: StageTimer, stage: str) -> None:
        self._timer = timer
        self._stage = stage
        self._start: float | None = None

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._timer.record(self._stage, time.perf_counter() - self._start)
