"""Reranker interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RerankError
from repro.retrieval.base import RetrievedDocument

if TYPE_CHECKING:
    from repro.context import RequestContext


@dataclass
class RerankResult:
    """A candidate with both its first-pass and rerank scores."""

    document: "RetrievedDocument"
    rerank_score: float

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Reranker(ABC):
    """Re-scores retrieval candidates and keeps the best ``top_n``."""

    #: Identifier used in logs and the interaction-history database.
    name: str = "reranker"

    @abstractmethod
    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        """Relevance score for each (query, text) pair."""

    def rerank(
        self,
        query: str,
        candidates: list[RetrievedDocument],
        *,
        top_n: int = 4,
        min_score: float | None = None,
        ctx: "RequestContext | None" = None,
    ) -> list[RerankResult]:
        """Return the ``top_n`` candidates by rerank score, best first.

        ``min_score`` optionally drops candidates entirely (the paper
        notes reranking may remove "less relevant material completely").
        """
        if top_n <= 0:
            raise RerankError(f"top_n must be positive, got {top_n}")
        if not candidates:
            return []
        scores = self.score_pairs(query, [c.document.text for c in candidates])
        if len(scores) != len(candidates):
            raise RerankError(
                f"{self.name} returned {len(scores)} scores for {len(candidates)} candidates"
            )
        ranked = sorted(
            (RerankResult(document=c, rerank_score=float(s)) for c, s in zip(candidates, scores)),
            key=lambda r: -r.rerank_score,
        )
        if min_score is not None:
            ranked = [r for r in ranked if r.rerank_score >= min_score]
        return ranked[:top_n]
