"""Second-pass reranking (paper Section III-D, Fig. 4).

The first pass retrieves K=8 candidates quickly; the reranker re-scores
each (query, document) pair with a finer-grained token-interaction model
and keeps the best L=4.  Two rerankers mirror the paper's comparison:

* :class:`FlashrankLiteReranker` — lightweight CPU scorer (the paper's
  Flashrank choice): IDF-weighted term coverage + exact identifier and
  bigram bonuses.
* :class:`NvidiaSimReranker` — a heavier cross-encoder simulation (the
  paper's NVIDIA reranker): adds positional proximity scoring over a full
  token-interaction matrix, batched.  Similar accuracy, more compute —
  exactly the trade-off reported in Section V-B.
"""

from repro.rerank.base import Reranker, RerankResult
from repro.rerank.scoring import InteractionScorer, build_idf
from repro.rerank.flashrank import FlashrankLiteReranker
from repro.rerank.nvidia_sim import NvidiaSimReranker
from repro.rerank.pipeline import RerankingRetriever

__all__ = [
    "Reranker",
    "RerankResult",
    "InteractionScorer",
    "build_idf",
    "FlashrankLiteReranker",
    "NvidiaSimReranker",
    "RerankingRetriever",
]
