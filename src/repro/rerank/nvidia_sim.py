"""Simulated GPU transformer reranker (the paper's NVIDIA option).

Uses the same interaction features as the lightweight reranker *plus*
the full proximity sweep, and processes pairs in fixed-size batches the
way a GPU encoder would.  The extra feature costs real compute, so the
latency benchmark reproduces the paper's finding: similar accuracy,
slower on CPU-only hosts.
"""

from __future__ import annotations

from repro.documents import Document
from repro.rerank.base import Reranker
from repro.rerank.scoring import InteractionScorer, build_idf


class NvidiaSimReranker(Reranker):
    name = "nvidia-sim"

    def __init__(self, corpus: list[Document] | None = None, *, batch_size: int = 8) -> None:
        if batch_size < 1:
            batch_size = 1
        self.batch_size = batch_size
        idf = build_idf(corpus) if corpus else None
        self._scorer = InteractionScorer(
            idf=idf,
            w_coverage=1.2,
            w_identifier=0.5,
            w_bigram=0.45,
            w_proximity=0.2,
            w_focus=0.12,
        )

    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        scores: list[float] = []
        for start in range(0, len(texts), self.batch_size):
            batch = texts[start : start + self.batch_size]
            scores.extend(self._scorer.score_batch(query, batch).tolist())
        return scores
