"""Flashrank-style lightweight CPU reranker."""

from __future__ import annotations

from repro.documents import Document
from repro.rerank.base import Reranker
from repro.rerank.scoring import InteractionScorer, build_idf


class FlashrankLiteReranker(Reranker):
    """Fast lexical cross-scorer (no proximity matrix).

    Mirrors the paper's Flashrank pick: "lightweight models running on
    the CPU" that reach accuracy similar to the GPU reranker at a
    fraction of the cost.
    """

    name = "flashrank-lite"

    def __init__(self, corpus: list[Document] | None = None) -> None:
        idf = build_idf(corpus) if corpus else None
        self._scorer = InteractionScorer(
            idf=idf,
            w_coverage=1.2,
            w_identifier=0.5,
            w_bigram=0.5,
            w_proximity=0.0,
            w_focus=0.12,
        )

    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        return self._scorer.score_batch(query, texts).tolist()
