"""Token-interaction relevance scoring shared by the rerankers.

A cross-encoder sees query and document *together*, so it can reward
exact phrase matches, rare-term coverage, and term proximity — signals a
bi-encoder (separate embeddings) necessarily blurs.  The scorer here
implements those signals explicitly:

``coverage``   IDF-weighted fraction of query terms present in the doc,
               computed over *stemmed* tokens and expanded through a
               small domain concept lexicon (a trained reranker knows
               that "measure where the time goes" is profiling)
``identifier`` exact case-sensitive match of PETSc identifiers
``bigram``     query bigrams appearing verbatim in the doc
``proximity``  smallest document window containing the matched terms
``focus``      mild penalty for very long chunks (dilute content)
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.documents import Document
from repro.utils.textproc import (
    code_tokens,
    stem,
    stemmed_tokens,
    tokenize_with_stopwords,
    word_ngrams,
)

#: Concept clusters (stem space): a trained domain reranker's notion of
#: near-synonyms.  Each group maps query terms onto document terms that
#: express the same concept.
_CONCEPT_GROUPS: tuple[tuple[str, ...], ...] = (
    ("time", "timing", "measur", "profil", "performanc", "summary", "flop", "-log_view"),
    ("memory", "allocat", "storag", "restart"),
    ("print", "display", "show", "view", "monitor", "output"),
    ("fail", "error", "diverg", "breakdown", "stopp", "wrong"),
    ("rectangular", "square", "overdetermined", "underdetermined", "least"),
    ("transpos", "adjoint"),
    ("scal", "scalability", "rank", "process", "reduct", "synchron", "latency",
     "bottleneck", "pipelin"),
    ("default", "choos", "pick"),
    ("preconditio", "pc"),
    ("singular", "null", "nullspac", "neumann"),
    ("assembl", "setvalu", "prealloc", "insert"),
    ("stagnat", "converg", "toler", "rtol"),
    ("sufficient", "insufficient", "success", "report", "malloc", "diagnos"),
)


def _concept_index() -> dict[str, int]:
    index: dict[str, int] = {}
    for gid, group in enumerate(_CONCEPT_GROUPS):
        for term in group:
            index[term] = gid
    return index


_CONCEPT_OF: dict[str, int] = _concept_index()


def _concept(token: str) -> int | None:
    """The concept-group id of a (stemmed) token, by prefix match."""
    if token in _CONCEPT_OF:
        return _CONCEPT_OF[token]
    for term, gid in _CONCEPT_OF.items():
        if len(term) >= 4 and token.startswith(term):
            return gid
    return None


def build_idf(documents: list[Document]) -> dict[str, float]:
    """Smoothed IDF over a document collection (stem space)."""
    df: Counter[str] = Counter()
    for doc in documents:
        df.update(set(stemmed_tokens(doc.text)))
    n = max(len(documents), 1)
    return {t: math.log((1 + n) / (1 + c)) + 1.0 for t, c in df.items()}


class InteractionScorer:
    """Computes the weighted sum of the interaction features.

    Parameters are feature weights; the two rerankers instantiate this
    with different weights (and the NVIDIA simulation adds the expensive
    proximity feature).
    """

    def __init__(
        self,
        *,
        idf: dict[str, float] | None = None,
        w_coverage: float = 1.0,
        w_identifier: float = 0.8,
        w_bigram: float = 0.5,
        w_proximity: float = 0.0,
        w_focus: float = 0.15,
        focus_chars: int = 900,
    ) -> None:
        self.idf = idf or {}
        self.default_idf = max(self.idf.values()) if self.idf else 1.0
        self.w_coverage = w_coverage
        self.w_identifier = w_identifier
        self.w_bigram = w_bigram
        self.w_proximity = w_proximity
        self.w_focus = w_focus
        self.focus_chars = focus_chars
        # Document-side features are query-independent; candidates repeat
        # heavily across queries, so cache them (bounded by corpus size).
        self._doc_cache: dict[int, tuple[list[str], set[str], set[int], set[tuple[str, str]]]] = {}

    # ------------------------------------------------------------------ features
    def _coverage(self, q_terms: set[str], d_terms: set[str], d_concepts: set[int]) -> float:
        if not q_terms:
            return 0.0
        total = 0.0
        hit = 0.0
        for t in q_terms:
            w = self.idf.get(t, self.default_idf)
            total += w
            if t in d_terms:
                hit += w
            else:
                gid = _concept(t)
                if gid is not None and gid in d_concepts:
                    hit += 0.7 * w  # synonym match: strong but below exact
        if total <= 0:
            return 0.0
        # Saturating matched-mass factor: a tiny page matching three weak
        # terms must not outscore a substantive section matching eight.
        mass = hit / (hit + 6.0)
        return (hit / total) * (0.4 + 1.2 * mass)

    @staticmethod
    def _identifier(query: str, text: str) -> float:
        idents = set(code_tokens(query))
        if not idents:
            return 0.0
        present = sum(1 for i in idents if i in text)
        return present / len(idents)

    @staticmethod
    def _bigram(q_tokens: list[str], d_bigrams: set[tuple[str, str]]) -> float:
        q_bigrams = set(word_ngrams(q_tokens, 2))
        if not q_bigrams:
            return 0.0
        return len(q_bigrams & d_bigrams) / len(q_bigrams)

    @staticmethod
    def _proximity(q_terms: set[str], d_tokens: list[str]) -> float:
        """1 / window: the tightest document window covering the matched terms.

        This is the token-interaction-matrix part — O(|doc|) with a
        sliding window, the dominant cost of the heavy reranker.
        """
        targets = q_terms & set(d_tokens)
        if len(targets) < 2:
            return 1.0 if targets else 0.0
        need = len(targets)
        have: Counter[str] = Counter()
        count = 0
        best = len(d_tokens) + 1
        left = 0
        for right, tok in enumerate(d_tokens):
            if tok in targets:
                have[tok] += 1
                if have[tok] == 1:
                    count += 1
            while count == need:
                best = min(best, right - left + 1)
                lt = d_tokens[left]
                if lt in targets:
                    have[lt] -= 1
                    if have[lt] == 0:
                        count -= 1
                left += 1
        if best > len(d_tokens):
            return 0.0
        return need / best  # dense co-occurrence → close to 1

    def _focus(self, text: str) -> float:
        if len(text) <= self.focus_chars:
            return 0.0
        return math.log(len(text) / self.focus_chars)

    # ------------------------------------------------------------------ scoring
    def _doc_features(self, text: str) -> tuple[list[str], set[str], set[int], set[tuple[str, str]]]:
        key = hash(text)
        cached = self._doc_cache.get(key)
        if cached is not None:
            return cached
        d_stems = stemmed_tokens(text)
        d_terms = set(d_stems)
        d_concepts = {g for g in (_concept(t) for t in d_terms) if g is not None}
        d_bigrams = set(word_ngrams([stem(t) for t in tokenize_with_stopwords(text)], 2))
        features = (d_stems, d_terms, d_concepts, d_bigrams)
        self._doc_cache[key] = features
        return features

    def score(self, query: str, text: str) -> float:
        q_stems = stemmed_tokens(query)
        q_terms = set(q_stems)
        d_stems, d_terms, d_concepts, d_bigrams = self._doc_features(text)
        s = self.w_coverage * self._coverage(q_terms, d_terms, d_concepts)
        s += self.w_identifier * self._identifier(query, text)
        q_all = [stem(t) for t in tokenize_with_stopwords(query)]
        s += self.w_bigram * self._bigram(q_all, d_bigrams)
        if self.w_proximity:
            s += self.w_proximity * self._proximity(q_terms, d_stems)
        s -= self.w_focus * self._focus(text)
        return s

    def score_batch(self, query: str, texts: list[str]) -> np.ndarray:
        return np.array([self.score(query, t) for t in texts], dtype=np.float64)
