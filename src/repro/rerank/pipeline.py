"""Retrieve-K-then-rerank-to-L composition (paper Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RerankError
from repro.rerank.base import Reranker, RerankResult
from repro.retrieval.base import RetrievedDocument, Retriever

if TYPE_CHECKING:
    from repro.context import RequestContext


@dataclass
class RerankingRetriever(Retriever):
    """First-pass retriever + reranker, exposed as a single retriever.

    The paper generates ``K = 8`` candidates in the first pass and
    refines them to ``L = 4`` documents with the reranker.
    """

    retriever: Retriever
    reranker: Reranker
    first_pass_k: int = 8
    min_score: float | None = None

    def __post_init__(self) -> None:
        if self.first_pass_k <= 0:
            raise RerankError(f"first_pass_k must be positive, got {self.first_pass_k}")

    def retrieve(
        self, query: str, *, k: int = 4, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        if k > self.first_pass_k:
            raise RerankError(
                f"cannot keep k={k} documents from a first pass of {self.first_pass_k}"
            )
        candidates = self.retriever.retrieve(query, k=self.first_pass_k, ctx=ctx)
        results = self.reranker.rerank(
            query, candidates, top_n=k, min_score=self.min_score, ctx=ctx
        )
        return [
            RetrievedDocument(
                document=r.document.document,
                score=r.rerank_score,
                origin=f"rerank[{self.reranker.name}]",
            )
            for r in results
        ]

    def retrieve_detailed(
        self, query: str, *, k: int = 4, ctx: "RequestContext | None" = None
    ) -> tuple[list[RetrievedDocument], list[RerankResult]]:
        """Candidates and rerank results, for instrumentation/case studies."""
        candidates = self.retriever.retrieve(query, k=self.first_pass_k, ctx=ctx)
        results = self.reranker.rerank(
            query, candidates, top_n=k, min_score=self.min_score, ctx=ctx
        )
        return candidates, results
