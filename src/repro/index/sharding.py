"""Shard planner and parallel per-shard index construction.

The plan is a pure function of (corpus, config): every document routes
to ``stable_hash(source) % num_shards``, each shard gets its own
:class:`~repro.index.artifact.IndexArtifact` digest (the shard's corpus
digest + the config fingerprint extended with shard coordinates), and
the composite artifact is named by the SHA-256 of the **sorted**
per-shard digests.  Per-shard digests key per-shard disk-cache entries,
so a corpus edit rebuilds only the shards whose documents changed.

One embedding model is fitted **globally** over the full chunk list and
shared by every shard build.  This is what makes scores — and therefore
merged retrieval results — identical across shard counts: a per-shard
TF-IDF fit would give each shard its own IDF table and incomparable
scores.  The flip side is a coupling caveat: for corpus-fitted models
(``petsc-embed-large``) any document edit shifts the global IDF table,
so every shard's vectors change and every shard digest must change with
them — the shard fingerprint therefore folds in the *global* corpus
digest as its ``embedding_scope``.  Corpus-free hashing models carry
``embedding_scope="corpus-free"`` and get true single-dirty-shard
incremental rebuilds.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus, corpus_source_digests
from repro.embeddings import create_embedding_model
from repro.embeddings.registry import is_corpus_fitted
from repro.errors import IndexBuildError
from repro.index.artifact import (
    IndexArtifact,
    artifact_digest,
    config_fingerprint,
    corpus_digest,
)
from repro.index.builder import (
    build_index,
    build_index_from_parent,
    cache_artifact,
    cached_artifact,
    lineage_parent,
    read_cached_payload,
    save_artifact,
)
from repro.observability import get_registry, use_registry
from repro.vectorstore.sharded import ShardedVectorStore, shard_for_document
from repro.vectorstore.store import VectorStore

if TYPE_CHECKING:
    from repro.replication import HealthTracker

#: Tag for models whose vectors do not depend on the fitted corpus.
CORPUS_FREE_SCOPE = "corpus-free"


@dataclass
class ShardSpec:
    """One planned shard: its sub-corpus and the digest that names it."""

    index: int
    num_shards: int
    bundle: CorpusBundle
    corpus_digest: str
    fingerprint: dict
    digest: str


@dataclass
class ShardPlan:
    """The deterministic partition of a corpus into shards."""

    num_shards: int
    #: Global corpus digest for corpus-fitted embeddings (any edit
    #: dirties all shards), or :data:`CORPUS_FREE_SCOPE`.
    embedding_scope: str
    shards: list[ShardSpec] = field(default_factory=list)

    @property
    def composite(self) -> str:
        return composite_digest([s.digest for s in self.shards])


def composite_digest(shard_digests: list[str]) -> str:
    """SHA-256 over the sorted per-shard digests (order-independent)."""
    payload = json.dumps(sorted(shard_digests), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def plan_shards(bundle: CorpusBundle, config: WorkflowConfig) -> ShardPlan:
    """Partition ``bundle`` into per-shard sub-bundles, deterministically.

    Documents keep corpus order within their shard; manual-page name
    tables follow their documents.  The plan (and every digest in it)
    is reproducible across processes — it depends only on document
    sources, contents, and the index-relevant config slice.
    """
    n = config.sharding.num_shards
    if n <= 0:
        raise IndexBuildError(f"plan_shards requires num_shards >= 1, got {n}")
    docs_by_shard: list[list] = [[] for _ in range(n)]
    for doc in bundle.documents:
        docs_by_shard[shard_for_document(doc, n)].append(doc)
    pages_by_shard: list[dict] = [{} for _ in range(n)]
    for name, page in bundle.manual_page_names.items():
        pages_by_shard[shard_for_document(page, n)][name] = page
    scope = (
        corpus_digest(bundle)
        if is_corpus_fitted(config.retrieval.embedding_model)
        else CORPUS_FREE_SCOPE
    )
    base_fingerprint = config_fingerprint(config)
    specs: list[ShardSpec] = []
    for i in range(n):
        sub = CorpusBundle(
            registry=bundle.registry,
            documents=docs_by_shard[i],
            manual_page_names=pages_by_shard[i],
        )
        fingerprint = dict(base_fingerprint)
        fingerprint["shard"] = i
        fingerprint["num_shards"] = n
        fingerprint["embedding_scope"] = scope
        shard_corpus = corpus_digest(sub)
        specs.append(
            ShardSpec(
                index=i,
                num_shards=n,
                bundle=sub,
                corpus_digest=shard_corpus,
                fingerprint=fingerprint,
                digest=artifact_digest(shard_corpus, fingerprint),
            )
        )
    return ShardPlan(num_shards=n, embedding_scope=scope, shards=specs)


@dataclass
class ShardedIndexArtifact(IndexArtifact):
    """A composite artifact over N per-shard artifacts.

    ``digest`` is the composite digest; ``store`` is a
    :class:`~repro.vectorstore.sharded.ShardedVectorStore` over the
    shard stores; ``chunks`` concatenates shard chunk lists in shard
    order (rerankers fit order-independent IDF tables over them, so the
    ordering difference from the monolithic build is benign).
    """

    shards: list[IndexArtifact] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def summary(self) -> dict:
        out = super().summary()
        out["num_shards"] = self.num_shards
        out["shard_digests"] = [s.digest for s in self.shards]
        return out

    def shard_summaries(
        self, *, replicas: int = 1, health: "HealthTracker | None" = None
    ) -> list[dict]:
        """Per-shard inspection rows (CLI ``repro metrics`` shard table).

        With a serving topology attached, each row also reports the
        replica count and the health tracker's per-replica states (a
        replica never probed is up by definition).
        """
        rows = []
        for i, s in enumerate(self.shards):
            row = {
                "shard": i,
                "digest": s.digest,
                "chunks": len(s.chunks),
                "manual_pages": len(s.manual_pages),
                "vectors": len(s.store),
            }
            if replicas > 1 or health is not None:
                row["replicas"] = replicas
                if health is not None:
                    row["health"] = [
                        health.state(i, r).value for r in range(replicas)
                    ]
            rows.append(row)
        return rows


def compute_composite_digest(
    bundle: CorpusBundle, config: WorkflowConfig | None = None
) -> str:
    """The composite digest a sharded build over these inputs produces."""
    config = config or WorkflowConfig()
    return plan_shards(bundle, config).composite


def build_sharded_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    cache_dir=None,
    plan: ShardPlan | None = None,
) -> ShardedIndexArtifact:
    """Build (or incrementally rebuild) the sharded index.

    Three-phase:

    1. **Resolve chunks** per shard — from the in-process artifact
       cache, the shard's disk-cache entry, or a fresh chunking pass for
       dirty shards (parallel across shards).
    2. **Fit the embedding once** over the full chunk list.
    3. **Materialize stores** per shard on a
       ``ThreadPoolExecutor(build_workers)`` — clean shards load vectors
       straight from npz, dirty shards run the embed pass through
       :func:`~repro.index.builder.build_index` (which keeps the
       ``repro.index.builds`` counter honest: +1 per dirty shard, not
       +N).
    """
    config = config or WorkflowConfig()
    if cache_dir is None:
        cache_dir = config.engine.index_cache_dir
    if plan is None:
        plan = plan_shards(bundle, config)
    # Captured on the coordinator: use_registry scopes are thread-local,
    # so pool workers must re-enter the caller's scope explicitly or
    # their counters would leak into the process default.
    registry = get_registry()
    rc = config.retrieval

    def resolve(spec: ShardSpec):
        with use_registry(registry):
            return _resolve(spec)

    def _resolve(spec: ShardSpec):
        mem = cached_artifact(spec.digest)
        if mem is not None:
            registry.counter("repro.shard.memory_hits").inc()
            return ("memory", spec, mem, None)
        if cache_dir is not None:
            try:
                store_dir, _manifest, chunks = read_cached_payload(
                    cache_dir, spec.digest, config
                )
                return ("disk", spec, chunks, store_dir)
            except IndexBuildError:
                pass
        chunks = chunk_corpus(
            spec.bundle,
            include_mail=rc.include_mail_archives,
            chunk_size=rc.chunk_size,
            chunk_overlap=rc.chunk_overlap,
        )
        return ("dirty", spec, chunks, None)

    with ThreadPoolExecutor(max_workers=config.sharding.build_workers) as pool:
        resolved = list(pool.map(resolve, plan.shards))

    all_texts: list[str] = []
    for state, _spec, payload, _extra in resolved:
        chunks = payload.chunks if state == "memory" else payload
        all_texts.extend(c.text for c in chunks)
    embedding = create_embedding_model(rc.embedding_model, corpus_texts=all_texts)

    def materialize(item) -> IndexArtifact:
        with use_registry(registry):
            return _materialize(item)

    def _materialize(item) -> IndexArtifact:
        state, spec, payload, extra = item
        if state == "memory":
            return payload
        if state == "disk":
            try:
                store = VectorStore.load(extra, embedding)
                registry.counter("repro.index.disk_hits").inc()
                registry.counter("repro.shard.disk_hits").inc()
                shard = IndexArtifact(
                    digest=spec.digest,
                    corpus_digest=spec.corpus_digest,
                    fingerprint=spec.fingerprint,
                    chunks=payload,
                    embedding=embedding,
                    store=store,
                    manual_pages=dict(spec.bundle.manual_page_names),
                    registry=bundle.registry,
                    source_digests=corpus_source_digests(
                        spec.bundle, include_mail=rc.include_mail_archives
                    ),
                )
                return cache_artifact(shard)
            except IndexBuildError:
                pass  # corrupt store payload: fall through to a rebuild
        chunks = payload if state == "dirty" else None
        if chunks is None:
            chunks = chunk_corpus(
                spec.bundle,
                include_mail=rc.include_mail_archives,
                chunk_size=rc.chunk_size,
                chunk_overlap=rc.chunk_overlap,
            )
        # Delta-from-parent: for corpus-free embeddings the shard
        # fingerprint is stable across corpus edits, so the lineage holds
        # the shard's previous artifact — reuse its vectors and embed
        # only this edit's changed chunks.
        parent = lineage_parent(spec.fingerprint)
        if parent is not None and parent.digest != spec.digest:
            built = build_index_from_parent(
                spec.bundle,
                config,
                parent,
                chunks=chunks,
                fingerprint=spec.fingerprint,
            )
            if built is not None:
                shard = built[0]
                registry.counter("repro.shard.delta_builds").inc()
                if cache_dir is not None:
                    save_artifact(shard, cache_dir)
                return cache_artifact(shard)
        shard = build_index(
            spec.bundle,
            config,
            chunks=chunks,
            embedding=embedding,
            fingerprint=spec.fingerprint,
        )
        registry.counter("repro.shard.builds").inc()
        if cache_dir is not None:
            save_artifact(shard, cache_dir)
        return cache_artifact(shard)

    with ThreadPoolExecutor(max_workers=config.sharding.build_workers) as pool:
        shard_artifacts = list(pool.map(materialize, resolved))

    composite_store = ShardedVectorStore(
        [s.store for s in shard_artifacts],
        embedding,
        scatter_workers=config.sharding.scatter_workers,
    )
    all_chunks = [c for s in shard_artifacts for c in s.chunks]
    return ShardedIndexArtifact(
        digest=plan.composite,
        corpus_digest=corpus_digest(bundle),
        fingerprint={
            **config_fingerprint(config),
            "num_shards": plan.num_shards,
            "embedding_scope": plan.embedding_scope,
        },
        chunks=all_chunks,
        embedding=embedding,
        store=composite_store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
        shards=shard_artifacts,
        source_digests=corpus_source_digests(
            bundle, include_mail=config.retrieval.include_mail_archives
        ),
    )


def get_or_build_sharded_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    cache_dir=None,
) -> ShardedIndexArtifact:
    """The shared sharded artifact: composite memory hit, else build.

    Mirrors :func:`~repro.index.builder.get_or_build_index`; per-shard
    memory/disk caches inside :func:`build_sharded_index` make partial
    hits (the incremental-rebuild path) cheap even on a composite miss.
    """
    config = config or WorkflowConfig()
    if cache_dir is None:
        cache_dir = config.engine.index_cache_dir
    plan = plan_shards(bundle, config)
    cached = cached_artifact(plan.composite)
    if cached is not None:
        get_registry().counter("repro.index.memory_hits").inc()
        return cached
    artifact = build_sharded_index(bundle, config, cache_dir=cache_dir, plan=plan)
    return cache_artifact(artifact)
