"""Index construction, built once per (corpus, config) digest.

The build pipeline — chunk the corpus, fit/instantiate the embedding
model, embed every chunk into a vector store — used to run inside every
pipeline constructor.  Here it runs through :func:`get_or_build_index`,
which consults two caches before doing any work:

1. **In-process**: a module-level table keyed by artifact digest.  Every
   pipeline mode, bot, evaluation run, and benchmark in one process
   shares the same artifact; the ``repro.index.builds`` counter stays at
   1 no matter how many consumers warm-start from it.
2. **On disk** (optional, ``EngineConfig.index_cache_dir``): the vector
   store's npz/jsonl persistence plus an ``artifact.json`` manifest,
   keyed by digest.  A disk hit skips the embedding pass — the single
   most expensive step — and reproduces a byte-identical artifact
   (the digest is a pure function of the inputs, and the saved chunk
   texts refit the corpus-trained embedding deterministically).

A corrupt or mismatched disk entry raises :class:`IndexBuildError`
internally and falls back to a fresh build that overwrites it; loading
never silently serves the wrong index.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus
from repro.documents import Document
from repro.durability.atomic import atomic_write_json
from repro.embeddings import create_embedding_model
from repro.errors import IndexBuildError, ReproError
from repro.index.artifact import (
    IndexArtifact,
    artifact_digest,
    config_fingerprint,
    corpus_digest,
)
from repro.observability import get_registry
from repro.vectorstore.store import VectorStore

_STORE_DIR = "store"
_MANIFEST = "artifact.json"

_cache_lock = threading.Lock()
_artifacts: dict[str, IndexArtifact] = {}


def compute_digest(bundle: CorpusBundle, config: WorkflowConfig | None = None) -> str:
    """The artifact digest a build over these inputs would produce."""
    config = config or WorkflowConfig()
    return artifact_digest(corpus_digest(bundle), config_fingerprint(config))


def clear_index_cache() -> None:
    """Drop every in-process artifact (tests and long-lived daemons)."""
    with _cache_lock:
        _artifacts.clear()


def cached_artifact(digest: str) -> IndexArtifact | None:
    """The in-process artifact for ``digest``, if one is cached."""
    with _cache_lock:
        return _artifacts.get(digest)


def cache_artifact(artifact: IndexArtifact) -> IndexArtifact:
    """Publish an artifact to the in-process cache; first writer wins."""
    with _cache_lock:
        return _artifacts.setdefault(artifact.digest, artifact)


def build_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    chunks: list[Document] | None = None,
    embedding=None,
    fingerprint: dict | None = None,
) -> IndexArtifact:
    """Build an artifact from scratch: chunk → embed → store.

    This is the uncached path; callers almost always want
    :func:`get_or_build_index`.  The sharded builder reuses it per shard
    by supplying precomputed ``chunks``, a shared (globally fitted)
    ``embedding``, and the shard-scoped ``fingerprint`` that keys the
    shard's cache entry.
    """
    config = config or WorkflowConfig()
    rc = config.retrieval
    get_registry().counter("repro.index.builds").inc()
    if chunks is None:
        chunks = chunk_corpus(
            bundle,
            include_mail=rc.include_mail_archives,
            chunk_size=rc.chunk_size,
            chunk_overlap=rc.chunk_overlap,
        )
    if embedding is None:
        embedding = create_embedding_model(
            rc.embedding_model, corpus_texts=[c.text for c in chunks]
        )
    store = VectorStore.from_documents(chunks, embedding)
    if fingerprint is None:
        fingerprint = config_fingerprint(config)
    return IndexArtifact(
        digest=artifact_digest(corpus_digest(bundle), fingerprint),
        corpus_digest=corpus_digest(bundle),
        fingerprint=fingerprint,
        chunks=chunks,
        embedding=embedding,
        store=store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
    )


# ------------------------------------------------------------------ disk cache
#: Store payload files covered by the manifest's checksums.
_PAYLOAD_FILES = ("vectors.npz", "documents.jsonl", "manifest.json")


def _payload_checksums(store_dir: Path) -> dict[str, str]:
    return {
        name: hashlib.sha256((store_dir / name).read_bytes()).hexdigest()
        for name in _PAYLOAD_FILES
    }


def save_artifact(artifact: IndexArtifact, cache_dir: str | Path) -> Path:
    """Persist the artifact under ``cache_dir/<digest16>/``.

    Payload files and the top-level manifest land atomically, and the
    manifest — written last — carries SHA-256 checksums of every payload
    file.  A crash between payload and manifest leaves no manifest (a
    clean miss); a corrupted payload fails checksum verification on
    load.  Either way the cache falls back to a rebuild, never serves
    torn bytes.
    """
    root = Path(cache_dir) / artifact.digest[:16]
    root.mkdir(parents=True, exist_ok=True)
    store_dir = root / _STORE_DIR
    artifact.store.save(store_dir)
    summary = dict(artifact.summary())
    summary["payload_checksums"] = _payload_checksums(store_dir)
    atomic_write_json(root / _MANIFEST, summary)
    get_registry().counter("repro.index.disk_writes").inc()
    return root


def read_cached_payload(
    cache_dir: str | Path, digest: str, config: WorkflowConfig
) -> tuple[Path, dict, list[Document]]:
    """Verify and read the cache entry for ``digest``.

    Returns ``(store_dir, manifest, chunks)`` with payload checksums
    verified (when configured) and chunk counts cross-checked; raises
    :class:`IndexBuildError` on a miss or any corruption.  Restoring the
    vector store itself is the caller's job — the monolithic loader
    refits the embedding from the chunk texts, while the sharded loader
    passes a prebuilt globally-fitted model instead.
    """
    root = Path(cache_dir) / digest[:16]
    manifest_path = root / _MANIFEST
    if not manifest_path.is_file():
        raise IndexBuildError(f"no cached artifact under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexBuildError(f"unreadable artifact manifest {manifest_path}: {exc}") from exc
    if manifest.get("digest") != digest:
        raise IndexBuildError(
            f"cached artifact digest {manifest.get('digest')!r} != expected {digest!r}"
        )
    store_dir = root / _STORE_DIR
    checksums = manifest.get("payload_checksums")
    if checksums and config.durability.verify_index_checksums:
        # Manifests written before checksums existed verify as trusted.
        for name, expected_sum in sorted(checksums.items()):
            try:
                actual = hashlib.sha256((store_dir / name).read_bytes()).hexdigest()
            except OSError as exc:
                raise IndexBuildError(
                    f"cached payload {name} unreadable in {store_dir}: {exc}"
                ) from exc
            if actual != expected_sum:
                get_registry().counter("repro.index.checksum_failures").inc()
                raise IndexBuildError(
                    f"cached payload {name} fails checksum in {store_dir} "
                    f"(expected {expected_sum[:12]}…, got {actual[:12]}…)"
                )
    try:
        chunk_lines = (store_dir / "documents.jsonl").read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise IndexBuildError(f"unreadable cached store in {store_dir}: {exc}") from exc
    chunks = [
        Document(text=obj["text"], metadata=obj["metadata"])
        for obj in map(json.loads, chunk_lines)
    ]
    if len(chunks) != int(manifest.get("chunk_count", -1)):
        raise IndexBuildError(
            f"cached store holds {len(chunks)} chunks, manifest says "
            f"{manifest.get('chunk_count')}"
        )
    return store_dir, manifest, chunks


def load_artifact(
    bundle: CorpusBundle,
    config: WorkflowConfig | None,
    cache_dir: str | Path,
) -> IndexArtifact:
    """Load the artifact for (bundle, config) from the disk cache.

    Raises :class:`IndexBuildError` on a miss, a digest mismatch, or a
    corrupt entry — the caller decides whether to fall back to a build.
    The embedding pass is skipped: saved chunk texts refit the embedding
    model deterministically and the vectors load straight from npz.
    """
    config = config or WorkflowConfig()
    expected = compute_digest(bundle, config)
    store_dir, _manifest, chunks = read_cached_payload(cache_dir, expected, config)
    try:
        embedding = create_embedding_model(
            config.retrieval.embedding_model, corpus_texts=[c.text for c in chunks]
        )
        store = VectorStore.load(store_dir, embedding)
    except ReproError as exc:
        raise IndexBuildError(f"cannot restore cached store in {store_dir}: {exc}") from exc
    get_registry().counter("repro.index.disk_hits").inc()
    return IndexArtifact(
        digest=expected,
        corpus_digest=corpus_digest(bundle),
        fingerprint=config_fingerprint(config),
        chunks=chunks,
        embedding=embedding,
        store=store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
    )


# ------------------------------------------------------------------ entry point
def get_or_build_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    cache_dir: str | Path | None = None,
) -> IndexArtifact:
    """The shared artifact for (bundle, config): memory → disk → build.

    ``cache_dir`` defaults to ``config.engine.index_cache_dir``; ``None``
    keeps artifacts in memory only.  A fresh build is written back to the
    disk cache when one is configured.
    """
    config = config or WorkflowConfig()
    if cache_dir is None:
        cache_dir = config.engine.index_cache_dir
    digest = compute_digest(bundle, config)
    with _cache_lock:
        cached = _artifacts.get(digest)
    if cached is not None:
        get_registry().counter("repro.index.memory_hits").inc()
        return cached
    artifact: IndexArtifact | None = None
    if cache_dir is not None:
        try:
            artifact = load_artifact(bundle, config, cache_dir)
        except IndexBuildError:
            artifact = None
    if artifact is None:
        artifact = build_index(bundle, config)
        if cache_dir is not None:
            save_artifact(artifact, cache_dir)
    with _cache_lock:
        # Another thread may have raced the build; first writer wins so
        # every consumer shares one object.
        artifact = _artifacts.setdefault(digest, artifact)
    return artifact
