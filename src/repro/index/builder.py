"""Index construction, built once per (corpus, config) digest.

The build pipeline — chunk the corpus, fit/instantiate the embedding
model, embed every chunk into a vector store — used to run inside every
pipeline constructor.  Here it runs through :func:`get_or_build_index`,
which consults two caches before doing any work:

1. **In-process**: a module-level table keyed by artifact digest.  Every
   pipeline mode, bot, evaluation run, and benchmark in one process
   shares the same artifact; the ``repro.index.builds`` counter stays at
   1 no matter how many consumers warm-start from it.
2. **On disk** (optional, ``EngineConfig.index_cache_dir``): the vector
   store's npz/jsonl persistence plus an ``artifact.json`` manifest,
   keyed by digest.  A disk hit skips the embedding pass — the single
   most expensive step — and reproduces a byte-identical artifact
   (the digest is a pure function of the inputs, and the saved chunk
   texts refit the corpus-trained embedding deterministically).

A corrupt or mismatched disk entry raises :class:`IndexBuildError`
internally and falls back to a fresh build that overwrites it; loading
never silently serves the wrong index.

Since the ingestion lifecycle landed there is a third resolution stage
between the disk cache and a full build: **delta-from-parent**.  The
in-process cache tracks a *lineage* — for every config fingerprint, the
most recently cached digest.  When the corpus changes under a fixed
fingerprint, :func:`get_or_build_index` diffs the new chunk list against
the lineage parent and, for corpus-free embedding models, assembles the
successor artifact by reusing the parent's vectors for unchanged chunks
and embedding only the changed ones (:func:`build_index_from_parent`).
The delta-built artifact is value-identical to a from-scratch build —
same digest, same vectors, same answers — it just costs a diff instead
of an embedding pass.  Caching a lineage successor also evicts the
superseded digest, so a stale in-memory artifact can never outlive the
corpus state it was built from.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

import numpy as np

from repro.config import WorkflowConfig
from repro.corpus.builder import (
    CorpusBundle,
    chunk_corpus,
    chunk_corpus_delta,
    corpus_source_digests,
)
from repro.documents import Document
from repro.durability.atomic import atomic_write_json
from repro.embeddings import create_embedding_model
from repro.embeddings.registry import is_corpus_fitted
from repro.errors import IndexBuildError, ReproError
from repro.index.artifact import (
    IndexArtifact,
    artifact_digest,
    config_fingerprint,
    corpus_digest,
)
from repro.ingest.delta import CorpusDelta, diff_chunks
from repro.observability import get_registry
from repro.vectorstore.store import VectorStore

_STORE_DIR = "store"
_MANIFEST = "artifact.json"

_cache_lock = threading.Lock()
_artifacts: dict[str, IndexArtifact] = {}
#: Lineage: config-fingerprint key → digest of the latest artifact cached
#: under it.  Resolves delta parents and drives superseded-digest eviction.
_lineage: dict[str, str] = {}


def _fingerprint_key(fingerprint: dict) -> str:
    return json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))


def compute_digest(bundle: CorpusBundle, config: WorkflowConfig | None = None) -> str:
    """The artifact digest a build over these inputs would produce."""
    config = config or WorkflowConfig()
    return artifact_digest(corpus_digest(bundle), config_fingerprint(config))


def clear_index_cache() -> None:
    """Drop every in-process artifact (tests and long-lived daemons)."""
    with _cache_lock:
        _artifacts.clear()
        _lineage.clear()


def cached_artifact(digest: str) -> IndexArtifact | None:
    """The in-process artifact for ``digest``, if one is cached."""
    with _cache_lock:
        return _artifacts.get(digest)


def lineage_parent(fingerprint: dict) -> IndexArtifact | None:
    """The latest in-process artifact cached under this fingerprint.

    This is the delta-build parent candidate: same index-relevant
    config, (possibly) different corpus.
    """
    with _cache_lock:
        digest = _lineage.get(_fingerprint_key(fingerprint))
        return _artifacts.get(digest) if digest is not None else None


def cache_artifact(artifact: IndexArtifact) -> IndexArtifact:
    """Publish an artifact to the in-process cache; first writer wins.

    Publishing also advances the fingerprint's lineage and **evicts the
    superseded digest**: once a successor for the same config
    fingerprint is cached, the predecessor can only serve stale corpus
    state (the historical bug was a disk-cache rebuild over a corrupt
    entry leaving the original in-memory artifact live).  Consumers
    holding a reference keep it — eviction only stops new resolutions.
    """
    with _cache_lock:
        published = _artifacts.setdefault(artifact.digest, artifact)
        key = _fingerprint_key(published.fingerprint)
        previous = _lineage.get(key)
        if previous is not None and previous != published.digest:
            if _artifacts.pop(previous, None) is not None:
                get_registry().counter("repro.index.lineage_evictions").inc()
        _lineage[key] = published.digest
        return published


def build_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    chunks: list[Document] | None = None,
    embedding=None,
    fingerprint: dict | None = None,
) -> IndexArtifact:
    """Build an artifact from scratch: chunk → embed → store.

    This is the uncached path; callers almost always want
    :func:`get_or_build_index`.  The sharded builder reuses it per shard
    by supplying precomputed ``chunks``, a shared (globally fitted)
    ``embedding``, and the shard-scoped ``fingerprint`` that keys the
    shard's cache entry.
    """
    config = config or WorkflowConfig()
    rc = config.retrieval
    get_registry().counter("repro.index.builds").inc()
    if chunks is None:
        chunks = chunk_corpus(
            bundle,
            include_mail=rc.include_mail_archives,
            chunk_size=rc.chunk_size,
            chunk_overlap=rc.chunk_overlap,
        )
    if embedding is None:
        embedding = create_embedding_model(
            rc.embedding_model, corpus_texts=[c.text for c in chunks]
        )
    store = VectorStore.from_documents(chunks, embedding)
    if fingerprint is None:
        fingerprint = config_fingerprint(config)
    return IndexArtifact(
        digest=artifact_digest(corpus_digest(bundle), fingerprint),
        corpus_digest=corpus_digest(bundle),
        fingerprint=fingerprint,
        chunks=chunks,
        embedding=embedding,
        store=store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
        source_digests=corpus_source_digests(
            bundle, include_mail=rc.include_mail_archives
        ),
    )


def build_index_from_parent(
    bundle: CorpusBundle,
    config: WorkflowConfig | None,
    parent: IndexArtifact,
    *,
    chunks: list[Document] | None = None,
    fingerprint: dict | None = None,
) -> "tuple[IndexArtifact, CorpusDelta] | None":
    """Build the successor artifact by delta against ``parent``.

    Re-chunks only the sources whose text changed, diffs the chunk lists
    by byte-exact identity, reuses the parent store's vectors for every
    unchanged chunk, and embeds only the new/changed ones.  Returns
    ``None`` when a delta cannot preserve value-identity with a
    from-scratch build — corpus-fitted embedding models (every vector
    depends on the whole corpus) — or would not pay: more than
    ``config.ingest.max_delta_fraction`` of the chunks changed, or the
    parent has no usable chunk bookkeeping.

    On success the result is *value-identical* to :func:`build_index`
    over the same inputs: same digest, byte-identical vectors (hashing
    embeddings are computed and normalized per row, so a subset batch
    equals the matching rows of the full batch), same chunk order.  The
    ``repro.index.builds`` counter is **not** incremented — counters
    under ``repro.ingest.*`` account the delta work instead.
    """
    config = config or WorkflowConfig()
    rc = config.retrieval
    if not config.ingest.delta_enabled or is_corpus_fitted(rc.embedding_model):
        return None
    if parent.embedding.name != rc.embedding_model or not parent.chunks:
        return None
    registry = get_registry()
    if chunks is None:
        if not parent.source_digests:
            return None
        chunks, _changed = chunk_corpus_delta(
            bundle,
            parent.chunks,
            parent.source_digests,
            include_mail=rc.include_mail_archives,
            chunk_size=rc.chunk_size,
            chunk_overlap=rc.chunk_overlap,
        )
    if fingerprint is None:
        fingerprint = config_fingerprint(config)
    digest = artifact_digest(corpus_digest(bundle), fingerprint)
    delta = diff_chunks(
        parent.chunks, chunks, parent_digest=parent.digest, target_digest=digest
    )
    if delta.total and delta.embed_count / delta.total > config.ingest.max_delta_fraction:
        registry.counter("repro.ingest.delta_fallbacks").inc()
        return None

    embedding = parent.embedding
    # Assemble the successor's matrix row-aligned with the deduped chunk
    # order from_documents would use: parent rows for unchanged chunks,
    # fresh embeddings for the rest (one batch).
    to_embed: list[Document] = []
    for chunk in chunks:
        if chunk.doc_id not in parent.store._ids:
            to_embed.append(chunk)
    fresh_vectors = (
        embedding.embed_documents([c.text for c in to_embed])
        if to_embed
        else np.zeros((0, embedding.dim))
    )
    fresh_rows = {c.doc_id: i for i, c in enumerate(to_embed)}
    parent_matrix = parent.store.index.matrix
    vectors = np.empty((len(chunks), embedding.dim), dtype=parent_matrix.dtype)
    reused = 0
    for row, chunk in enumerate(chunks):
        parent_row = parent.store._ids.get(chunk.doc_id)
        if parent_row is not None:
            vectors[row] = parent_matrix[parent_row]
            reused += 1
        else:
            vectors[row] = fresh_vectors[fresh_rows[chunk.doc_id]]
    store = VectorStore.from_precomputed(chunks, vectors, embedding)

    registry.counter("repro.ingest.delta_builds").inc()
    registry.counter("repro.ingest.chunks_embedded").inc(len(to_embed))
    registry.counter("repro.ingest.chunks_reused").inc(reused)
    artifact = IndexArtifact(
        digest=digest,
        corpus_digest=corpus_digest(bundle),
        fingerprint=fingerprint,
        chunks=chunks,
        embedding=embedding,
        store=store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
        parent_digest=parent.digest,
        delta_digest=delta.digest,
        source_digests=corpus_source_digests(
            bundle, include_mail=rc.include_mail_archives
        ),
    )
    return artifact, delta


# ------------------------------------------------------------------ disk cache
#: Store payload files covered by the manifest's checksums.
_PAYLOAD_FILES = ("vectors.npz", "documents.jsonl", "manifest.json")


def _payload_checksums(store_dir: Path) -> dict[str, str]:
    return {
        name: hashlib.sha256((store_dir / name).read_bytes()).hexdigest()
        for name in _PAYLOAD_FILES
    }


def save_artifact(artifact: IndexArtifact, cache_dir: str | Path) -> Path:
    """Persist the artifact under ``cache_dir/<digest16>/``.

    Payload files and the top-level manifest land atomically, and the
    manifest — written last — carries SHA-256 checksums of every payload
    file.  A crash between payload and manifest leaves no manifest (a
    clean miss); a corrupted payload fails checksum verification on
    load.  Either way the cache falls back to a rebuild, never serves
    torn bytes.
    """
    root = Path(cache_dir) / artifact.digest[:16]
    root.mkdir(parents=True, exist_ok=True)
    store_dir = root / _STORE_DIR
    artifact.store.save(store_dir)
    summary = dict(artifact.summary())
    summary["payload_checksums"] = _payload_checksums(store_dir)
    atomic_write_json(root / _MANIFEST, summary)
    get_registry().counter("repro.index.disk_writes").inc()
    return root


def read_cached_payload(
    cache_dir: str | Path, digest: str, config: WorkflowConfig
) -> tuple[Path, dict, list[Document]]:
    """Verify and read the cache entry for ``digest``.

    Returns ``(store_dir, manifest, chunks)`` with payload checksums
    verified (when configured) and chunk counts cross-checked; raises
    :class:`IndexBuildError` on a miss or any corruption.  Restoring the
    vector store itself is the caller's job — the monolithic loader
    refits the embedding from the chunk texts, while the sharded loader
    passes a prebuilt globally-fitted model instead.
    """
    root = Path(cache_dir) / digest[:16]
    manifest_path = root / _MANIFEST
    if not manifest_path.is_file():
        raise IndexBuildError(f"no cached artifact under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexBuildError(f"unreadable artifact manifest {manifest_path}: {exc}") from exc
    if manifest.get("digest") != digest:
        raise IndexBuildError(
            f"cached artifact digest {manifest.get('digest')!r} != expected {digest!r}"
        )
    store_dir = root / _STORE_DIR
    checksums = manifest.get("payload_checksums")
    if checksums and config.durability.verify_index_checksums:
        # Manifests written before checksums existed verify as trusted.
        for name, expected_sum in sorted(checksums.items()):
            try:
                actual = hashlib.sha256((store_dir / name).read_bytes()).hexdigest()
            except OSError as exc:
                raise IndexBuildError(
                    f"cached payload {name} unreadable in {store_dir}: {exc}"
                ) from exc
            if actual != expected_sum:
                get_registry().counter("repro.index.checksum_failures").inc()
                raise IndexBuildError(
                    f"cached payload {name} fails checksum in {store_dir} "
                    f"(expected {expected_sum[:12]}…, got {actual[:12]}…)"
                )
    try:
        chunk_lines = (store_dir / "documents.jsonl").read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise IndexBuildError(f"unreadable cached store in {store_dir}: {exc}") from exc
    chunks = [
        Document(text=obj["text"], metadata=obj["metadata"])
        for obj in map(json.loads, chunk_lines)
    ]
    if len(chunks) != int(manifest.get("chunk_count", -1)):
        raise IndexBuildError(
            f"cached store holds {len(chunks)} chunks, manifest says "
            f"{manifest.get('chunk_count')}"
        )
    return store_dir, manifest, chunks


def load_artifact(
    bundle: CorpusBundle,
    config: WorkflowConfig | None,
    cache_dir: str | Path,
) -> IndexArtifact:
    """Load the artifact for (bundle, config) from the disk cache.

    Raises :class:`IndexBuildError` on a miss, a digest mismatch, or a
    corrupt entry — the caller decides whether to fall back to a build.
    The embedding pass is skipped: saved chunk texts refit the embedding
    model deterministically and the vectors load straight from npz.
    """
    config = config or WorkflowConfig()
    expected = compute_digest(bundle, config)
    store_dir, _manifest, chunks = read_cached_payload(cache_dir, expected, config)
    try:
        embedding = create_embedding_model(
            config.retrieval.embedding_model, corpus_texts=[c.text for c in chunks]
        )
        store = VectorStore.load(store_dir, embedding)
    except ReproError as exc:
        raise IndexBuildError(f"cannot restore cached store in {store_dir}: {exc}") from exc
    get_registry().counter("repro.index.disk_hits").inc()
    return IndexArtifact(
        digest=expected,
        corpus_digest=corpus_digest(bundle),
        fingerprint=config_fingerprint(config),
        chunks=chunks,
        embedding=embedding,
        store=store,
        manual_pages=dict(bundle.manual_page_names),
        registry=bundle.registry,
        source_digests=corpus_source_digests(
            bundle, include_mail=config.retrieval.include_mail_archives
        ),
    )


# ------------------------------------------------------------------ entry point
def get_or_build_index(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    cache_dir: str | Path | None = None,
) -> IndexArtifact:
    """The shared artifact for (bundle, config): memory → disk →
    delta-from-parent → full build.

    ``cache_dir`` defaults to ``config.engine.index_cache_dir``; ``None``
    keeps artifacts in memory only.  A fresh build (delta or full) is
    written back to the disk cache when one is configured.
    """
    config = config or WorkflowConfig()
    if cache_dir is None:
        cache_dir = config.engine.index_cache_dir
    digest = compute_digest(bundle, config)
    with _cache_lock:
        cached = _artifacts.get(digest)
    if cached is not None:
        get_registry().counter("repro.index.memory_hits").inc()
        return cached
    artifact: IndexArtifact | None = None
    from_disk = False
    if cache_dir is not None:
        try:
            artifact = load_artifact(bundle, config, cache_dir)
            from_disk = True
        except IndexBuildError:
            artifact = None
    if artifact is None:
        parent = lineage_parent(config_fingerprint(config))
        if parent is not None and parent.digest != digest:
            built = build_index_from_parent(bundle, config, parent)
            if built is not None:
                artifact = built[0]
    if artifact is None:
        artifact = build_index(bundle, config)
    if cache_dir is not None and not from_disk:
        save_artifact(artifact, cache_dir)
    # Another thread may have raced the build; first writer wins so
    # every consumer shares one object.
    return cache_artifact(artifact)
