"""The immutable product of index construction.

An :class:`IndexArtifact` is everything query-time code needs from the
corpus — chunks, the fitted embedding model, the populated vector store,
the manual-page name table, the fact registry — plus a content digest
that names it.  The digest is a pure function of the corpus and the
index-relevant configuration, so two builds over the same inputs produce
the same digest whether they ran in this process, a previous process, or
were loaded from the disk cache.

Artifacts are *shared*: every pipeline mode, bot, evaluation run, and
benchmark in a process answers over one artifact instead of rebuilding
the index per constructor.  The sharing contract is immutability — no
consumer may mutate the artifact's store or chunk list.  Consumers that
need a mutable store (the workflow feeds vetted history back into its
RAG database) take a copy-on-write :meth:`fork_store` instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus.builder import CorpusBundle
from repro.corpus.facts import FactRegistry
from repro.documents import Document
from repro.embeddings.base import EmbeddingModel
from repro.retrieval.keyword import ManualPageKeywordSearch
from repro.vectorstore.store import VectorStore

#: Format version folded into every digest; bump on layout changes so
#: stale disk caches miss instead of loading garbage.
ARTIFACT_VERSION = 1


def corpus_digest(bundle: CorpusBundle) -> str:
    """SHA-256 over every document's (source, text), in corpus order."""
    h = hashlib.sha256()
    for doc in bundle.documents:
        h.update(str(doc.metadata.get("source", "")).encode())
        h.update(b"\x1f")
        h.update(doc.text.encode())
        h.update(b"\x1e")
    return h.hexdigest()


def config_fingerprint(config: WorkflowConfig | RetrievalConfig) -> dict:
    """The index-relevant configuration slice.

    Only parameters that change the *contents* of the index belong here
    — chat model, resilience, and observability settings all vary freely
    over one artifact.
    """
    rc = config.retrieval if isinstance(config, WorkflowConfig) else config
    return {
        "version": ARTIFACT_VERSION,
        "embedding_model": rc.embedding_model,
        "chunk_size": rc.chunk_size,
        "chunk_overlap": rc.chunk_overlap,
        "include_mail_archives": rc.include_mail_archives,
    }


def artifact_digest(corpus: str, fingerprint: dict) -> str:
    """The artifact's name: SHA-256 over corpus digest + fingerprint."""
    payload = json.dumps(
        {"corpus": corpus, "config": fingerprint},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class IndexArtifact:
    """One built index: immutable, content-hashed, shareable.

    Attributes
    ----------
    digest:
        Content hash over (corpus, index config); the cache key on disk
        and in memory, and a component of every answer-cache key.
    corpus_digest / fingerprint:
        The digest's two inputs, kept for inspection and manifests.
    chunks:
        The tagged retrieval chunks, in deterministic corpus order
        (rerankers fit their IDF tables on these).
    embedding:
        The fitted embedding model the store's vectors came from.
    store:
        The populated vector store.  **Never mutated** — consumers call
        :meth:`fork_store`.
    manual_pages:
        Manual-page name → document, for exact keyword lookup.
    registry:
        Ground-truth fact registry (simulated models and graders need it).
    parent_digest / delta_digest:
        Lineage: when the artifact was produced by a delta build,
        ``parent_digest`` names the artifact the delta was applied to
        and ``delta_digest`` the :class:`~repro.ingest.CorpusDelta` that
        carried it there.  Both ``None`` for from-scratch builds.  The
        lineage never feeds :attr:`digest` — a delta-built artifact is
        value-identical to a from-scratch build and shares its name.
    source_digests:
        Source path → sha256 of the source text the chunks came from.
        The diff stage of the next ingest uses this to re-chunk only the
        sources that changed.
    """

    digest: str
    corpus_digest: str
    fingerprint: dict
    chunks: list[Document]
    embedding: EmbeddingModel
    store: VectorStore
    manual_pages: dict[str, Document] = field(default_factory=dict)
    registry: FactRegistry | None = None
    parent_digest: str | None = None
    delta_digest: str | None = None
    source_digests: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------ consumers
    def fork_store(self, *, embedding: EmbeddingModel | None = None) -> VectorStore:
        """A mutable store sharing this artifact's vectors copy-on-write.

        ``embedding`` substitutes a (caching) wrapper for query
        embedding; it must be dimension-compatible with the artifact's
        model.
        """
        return self.store.fork(embedding=embedding)

    def keyword_search(self) -> ManualPageKeywordSearch:
        """A fresh keyword retriever over the manual-page table."""
        return ManualPageKeywordSearch(self.manual_pages)

    def summary(self) -> dict:
        """Manifest-shaped description (what ``artifact.json`` stores)."""
        return {
            "digest": self.digest,
            "corpus_digest": self.corpus_digest,
            "fingerprint": dict(self.fingerprint),
            "chunk_count": len(self.chunks),
            "manual_page_count": len(self.manual_pages),
            "embedding_model": self.embedding.name,
            "embedding_dim": self.embedding.dim,
            "parent_digest": self.parent_digest,
            "delta_digest": self.delta_digest,
        }
