"""The index layer: build once, content-hash, share everywhere.

Splits corpus → chunk → embed → vector-store construction out of the
pipeline constructors into an immutable, cacheable
:class:`~repro.index.artifact.IndexArtifact` keyed by a digest of the
corpus and the index-relevant config.  See DESIGN.md §8.
"""

from repro.index.artifact import (
    ARTIFACT_VERSION,
    IndexArtifact,
    artifact_digest,
    config_fingerprint,
    corpus_digest,
)
from repro.index.builder import (
    build_index,
    clear_index_cache,
    compute_digest,
    get_or_build_index,
    load_artifact,
    save_artifact,
)

__all__ = [
    "ARTIFACT_VERSION",
    "IndexArtifact",
    "artifact_digest",
    "build_index",
    "clear_index_cache",
    "compute_digest",
    "config_fingerprint",
    "corpus_digest",
    "get_or_build_index",
    "load_artifact",
    "save_artifact",
]
