"""The index layer: build once, content-hash, share everywhere.

Splits corpus → chunk → embed → vector-store construction out of the
pipeline constructors into an immutable, cacheable
:class:`~repro.index.artifact.IndexArtifact` keyed by a digest of the
corpus and the index-relevant config.  See DESIGN.md §8.
"""

from repro.index.artifact import (
    ARTIFACT_VERSION,
    IndexArtifact,
    artifact_digest,
    config_fingerprint,
    corpus_digest,
)
from repro.index.builder import (
    build_index,
    build_index_from_parent,
    cache_artifact,
    cached_artifact,
    clear_index_cache,
    compute_digest,
    get_or_build_index,
    lineage_parent,
    load_artifact,
    read_cached_payload,
    save_artifact,
)
from repro.index.sharding import (
    ShardedIndexArtifact,
    ShardPlan,
    ShardSpec,
    build_sharded_index,
    composite_digest,
    compute_composite_digest,
    get_or_build_sharded_index,
    plan_shards,
)

__all__ = [
    "ARTIFACT_VERSION",
    "IndexArtifact",
    "ShardedIndexArtifact",
    "ShardPlan",
    "ShardSpec",
    "artifact_digest",
    "build_index",
    "build_index_from_parent",
    "build_sharded_index",
    "cache_artifact",
    "cached_artifact",
    "clear_index_cache",
    "composite_digest",
    "compute_composite_digest",
    "compute_digest",
    "config_fingerprint",
    "corpus_digest",
    "get_or_build_index",
    "get_or_build_sharded_index",
    "lineage_parent",
    "load_artifact",
    "plan_shards",
    "read_cached_payload",
    "save_artifact",
]
