"""File-system document loaders.

Equivalents of the LangChain loaders named in the paper's Section III-A:
``DirectoryLoader`` walks a tree and delegates per-file; ``MarkdownLoader``
plays the role of ``UnstructuredMarkdownLoader`` — it strips markup noise
(Sphinx directives, HTML comments) and attaches title metadata.
"""

from __future__ import annotations

import fnmatch
import json
import re
from pathlib import Path
from typing import Callable, Iterator

from repro.documents.document import Document
from repro.errors import DocumentError

_H1_RE = re.compile(r"^#\s+(.*)$", re.MULTILINE)
_HTML_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_SPHINX_DIRECTIVE_RE = re.compile(r"^```\{[a-z-]+\}[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
_FRONTMATTER_RE = re.compile(r"\A---\n(.*?)\n---\n", re.DOTALL)


class TextLoader:
    """Load a single file as one plain-text :class:`Document`."""

    def __init__(self, path: str | Path, *, encoding: str = "utf-8") -> None:
        self.path = Path(path)
        self.encoding = encoding

    def load(self) -> list[Document]:
        try:
            text = self.path.read_text(encoding=self.encoding)
        except OSError as exc:
            raise DocumentError(f"cannot read {self.path}: {exc}") from exc
        return [Document(text=text, metadata={"source": str(self.path)})]


class MarkdownLoader:
    """Load a Markdown file, stripping markup noise and extracting the title.

    Frontmatter (``--- ... ---``) is parsed into metadata key/value pairs
    (``key: value`` lines only).  Sphinx fenced directives have their fence
    removed but their body kept, mirroring how ``UnstructuredMarkdownLoader``
    keeps directive prose.
    """

    def __init__(self, path: str | Path, *, encoding: str = "utf-8") -> None:
        self.path = Path(path)
        self.encoding = encoding

    def load(self) -> list[Document]:
        try:
            raw = self.path.read_text(encoding=self.encoding)
        except OSError as exc:
            raise DocumentError(f"cannot read {self.path}: {exc}") from exc

        metadata: dict[str, str] = {"source": str(self.path)}
        fm = _FRONTMATTER_RE.match(raw)
        if fm:
            for line in fm.group(1).splitlines():
                if ":" in line:
                    key, _, value = line.partition(":")
                    metadata[key.strip()] = value.strip()
            raw = raw[fm.end() :]

        raw = _HTML_COMMENT_RE.sub("", raw)
        raw = _SPHINX_DIRECTIVE_RE.sub(lambda m: m.group(1), raw)

        if "title" not in metadata:
            h1 = _H1_RE.search(raw)
            if h1:
                metadata["title"] = h1.group(1).strip()

        return [Document(text=raw.strip() + "\n", metadata=metadata)]


class JsonLinesLoader:
    """Load a ``.jsonl`` file where each line is ``{"text": ..., ...}``.

    Used for mailing-list archives: each line is one message, and every
    non-``text`` key becomes document metadata.
    """

    def __init__(self, path: str | Path, *, text_key: str = "text") -> None:
        self.path = Path(path)
        self.text_key = text_key

    def load(self) -> list[Document]:
        docs: list[Document] = []
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise DocumentError(f"cannot read {self.path}: {exc}") from exc
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DocumentError(f"{self.path}:{lineno}: invalid JSON: {exc}") from exc
            if self.text_key not in obj:
                raise DocumentError(f"{self.path}:{lineno}: missing key {self.text_key!r}")
            text = str(obj.pop(self.text_key))
            md = {str(k): v for k, v in obj.items()}
            md["source"] = f"{self.path}#L{lineno}"
            docs.append(Document(text=text, metadata=md))
        return docs


_LOADER_BY_SUFFIX: dict[str, Callable[[Path], list[Document]]] = {
    ".md": lambda p: MarkdownLoader(p).load(),
    ".markdown": lambda p: MarkdownLoader(p).load(),
    ".jsonl": lambda p: JsonLinesLoader(p).load(),
    ".txt": lambda p: TextLoader(p).load(),
    ".rst": lambda p: TextLoader(p).load(),
    ".c": lambda p: TextLoader(p).load(),
    ".h": lambda p: TextLoader(p).load(),
    ".py": lambda p: TextLoader(p).load(),
}


class DirectoryLoader:
    """Recursively load every matching file under a root directory.

    Parameters
    ----------
    root:
        Directory to walk.
    glob:
        ``fnmatch`` pattern applied to file names (default: all supported).
    recursive:
        Whether to descend into subdirectories.
    """

    def __init__(self, root: str | Path, *, glob: str = "*", recursive: bool = True) -> None:
        self.root = Path(root)
        self.glob = glob
        self.recursive = recursive

    def iter_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            raise DocumentError(f"not a directory: {self.root}")
        pattern = "**/*" if self.recursive else "*"
        for path in sorted(self.root.glob(pattern)):
            if not path.is_file():
                continue
            if path.suffix.lower() not in _LOADER_BY_SUFFIX:
                continue
            if not fnmatch.fnmatch(path.name, self.glob):
                continue
            yield path

    def load(self) -> list[Document]:
        docs: list[Document] = []
        for path in self.iter_paths():
            loader = _LOADER_BY_SUFFIX[path.suffix.lower()]
            docs.extend(loader(path))
        return docs
