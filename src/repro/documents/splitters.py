"""Text splitters producing retrieval-sized chunks.

:class:`RecursiveCharacterTextSplitter` reimplements the LangChain
algorithm named in the paper: try the coarsest separator first
(paragraph breaks), recurse into finer separators only for pieces that
are still too long, then merge adjacent pieces up to the chunk size with
a configurable overlap.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod

from repro.documents.document import Document
from repro.errors import DocumentError
from repro.utils.textproc import sentences

_HEADER_RE = re.compile(r"^(#{1,6})\s+(.*)$")


class TextSplitter(ABC):
    """Base class: split documents into chunk documents with provenance."""

    @abstractmethod
    def split_text(self, text: str) -> list[str]:
        """Split raw text into chunk strings."""

    def split_documents(self, documents: list[Document]) -> list[Document]:
        """Split each document; chunks inherit metadata plus a chunk index."""
        out: list[Document] = []
        for doc in documents:
            for i, chunk in enumerate(self.split_text(doc.text)):
                md = dict(doc.metadata)
                md["chunk"] = i
                out.append(Document(text=chunk, metadata=md))
        return out


class RecursiveCharacterTextSplitter(TextSplitter):
    """Recursive separator-based splitter with overlap.

    Parameters
    ----------
    chunk_size:
        Target maximum chunk length in characters.
    chunk_overlap:
        Characters of trailing context repeated at the start of the next
        chunk.  Must be smaller than ``chunk_size``.
    separators:
        Ordered coarse-to-fine separators.  The default mirrors
        LangChain: paragraph, line, sentence-ish space, character.
    """

    DEFAULT_SEPARATORS: tuple[str, ...] = ("\n\n", "\n", " ", "")

    def __init__(
        self,
        *,
        chunk_size: int = 800,
        chunk_overlap: int = 120,
        separators: tuple[str, ...] | None = None,
    ) -> None:
        if chunk_size <= 0:
            raise DocumentError(f"chunk_size must be positive, got {chunk_size}")
        if not 0 <= chunk_overlap < chunk_size:
            raise DocumentError(
                f"chunk_overlap must be in [0, chunk_size), got {chunk_overlap} for chunk_size {chunk_size}"
            )
        self.chunk_size = chunk_size
        self.chunk_overlap = chunk_overlap
        self.separators = separators or self.DEFAULT_SEPARATORS
        if self.separators[-1] != "":
            raise DocumentError("the final separator must be '' (character-level fallback)")

    def split_text(self, text: str) -> list[str]:
        if not text.strip():
            return []
        pieces = self._split_recursive(text, 0)
        return self._merge(pieces)

    def _split_recursive(self, text: str, sep_index: int) -> list[str]:
        """Break ``text`` into pieces each no longer than ``chunk_size``."""
        if len(text) <= self.chunk_size:
            return [text] if text else []
        sep = self.separators[sep_index]
        if sep == "":
            # Character-level fallback: hard slices.
            return [
                text[i : i + self.chunk_size] for i in range(0, len(text), self.chunk_size)
            ]
        parts = text.split(sep)
        pieces: list[str] = []
        for j, part in enumerate(parts):
            # Re-attach the separator so merging can reconstruct prose.
            chunk = part + (sep if j < len(parts) - 1 else "")
            if len(chunk) <= self.chunk_size:
                if chunk:
                    pieces.append(chunk)
            else:
                pieces.extend(self._split_recursive(chunk, sep_index + 1))
        return pieces

    def _merge(self, pieces: list[str]) -> list[str]:
        """Greedily pack pieces into chunks of at most ``chunk_size``."""
        chunks: list[str] = []
        current = ""
        for piece in pieces:
            if current and len(current) + len(piece) > self.chunk_size:
                chunks.append(current.strip())
                # Seed the next chunk with overlap from the end of this one.
                if self.chunk_overlap > 0:
                    current = current[-self.chunk_overlap :] + piece
                else:
                    current = piece
            else:
                current += piece
        if current.strip():
            chunks.append(current.strip())
        return [c for c in chunks if c]


class MarkdownHeaderTextSplitter(TextSplitter):
    """Split Markdown on headers, tagging chunks with their section path.

    Each chunk's section path is exposed via ``split_documents`` metadata
    under ``section`` (e.g. ``"KSP / Convergence Tests"``).  Fenced code
    blocks are never split across chunks.
    """

    def __init__(self, *, max_depth: int = 3) -> None:
        if not 1 <= max_depth <= 6:
            raise DocumentError(f"max_depth must be in [1, 6], got {max_depth}")
        self.max_depth = max_depth

    def split_text(self, text: str) -> list[str]:
        return [body for _, body in self.split_sections(text)]

    def split_sections(self, text: str) -> list[tuple[str, str]]:
        """Return ``(section_path, body)`` pairs."""
        lines = text.splitlines()
        sections: list[tuple[str, list[str]]] = []
        stack: list[str] = []
        body: list[str] = []
        in_fence = False

        def flush() -> None:
            content = "\n".join(body).strip()
            if content:
                sections.append((" / ".join(stack), body.copy()))
            body.clear()

        for line in lines:
            if line.startswith("```"):
                in_fence = not in_fence
                body.append(line)
                continue
            m = None if in_fence else _HEADER_RE.match(line)
            if m and len(m.group(1)) <= self.max_depth:
                flush()
                depth = len(m.group(1))
                del stack[depth - 1 :]
                stack.append(m.group(2).strip())
            else:
                body.append(line)
        flush()
        return [(path, "\n".join(b).strip()) for path, b in sections]

    def split_documents(self, documents: list[Document]) -> list[Document]:
        out: list[Document] = []
        for doc in documents:
            for i, (path, chunk) in enumerate(self.split_sections(doc.text)):
                md = dict(doc.metadata)
                md["chunk"] = i
                if path:
                    md["section"] = path
                    # The section path is strong retrieval signal ("Choosing
                    # a Krylov Method") — keep it in the chunk text.
                    chunk = f"{path}\n\n{chunk}"
                out.append(Document(text=chunk, metadata=md))
        return out


class SentenceWindowSplitter(TextSplitter):
    """Sliding window of sentences — fine-grained chunks for reranking tests.

    Parameters
    ----------
    window:
        Number of sentences per chunk.
    stride:
        Sentences advanced between consecutive chunks (``stride <= window``
    gives overlap).
    """

    def __init__(self, *, window: int = 4, stride: int = 3) -> None:
        if window < 1:
            raise DocumentError(f"window must be >= 1, got {window}")
        if not 1 <= stride <= window:
            raise DocumentError(f"stride must be in [1, window], got {stride}")
        self.window = window
        self.stride = stride

    def split_text(self, text: str) -> list[str]:
        sents = sentences(text)
        if not sents:
            return []
        chunks: list[str] = []
        i = 0
        while i < len(sents):
            chunks.append(" ".join(sents[i : i + self.window]))
            if i + self.window >= len(sents):
                break
            i += self.stride
        return chunks
