"""Document model, loaders, and text splitters.

These are from-scratch equivalents of the LangChain components the paper
uses to build its RAG databases: ``DirectoryLoader``,
``UnstructuredMarkdownLoader`` and ``RecursiveCharacterTextSplitter``.
"""

from repro.documents.document import Document
from repro.documents.loaders import (
    DirectoryLoader,
    JsonLinesLoader,
    MarkdownLoader,
    TextLoader,
)
from repro.documents.splitters import (
    MarkdownHeaderTextSplitter,
    RecursiveCharacterTextSplitter,
    SentenceWindowSplitter,
    TextSplitter,
)

__all__ = [
    "Document",
    "DirectoryLoader",
    "JsonLinesLoader",
    "MarkdownLoader",
    "TextLoader",
    "MarkdownHeaderTextSplitter",
    "RecursiveCharacterTextSplitter",
    "SentenceWindowSplitter",
    "TextSplitter",
]
