"""The Document value type flowing through every retrieval stage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.rng import stable_hash


@dataclass
class Document:
    """A chunk of text plus provenance metadata.

    Attributes
    ----------
    text:
        The chunk content (Markdown or plain text).
    metadata:
        Provenance and typing information.  Well-known keys used across
        the library:

        ``source``      path or URL of the originating file,
        ``doc_type``    one of ``manual_page``/``manual_chapter``/``faq``/
                        ``tutorial``/``mail_thread``/``misc``,
        ``title``       human-readable title,
        ``section``     markdown section path (``"KSP / Convergence"``),
        ``facts``       comma-separated fact ids asserted by this chunk
                        (see :mod:`repro.corpus.facts`),
        ``chunk``       integer chunk index within the source.
    """

    text: str
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def doc_id(self) -> str:
        """A stable content-derived identifier.

        Two documents with identical text *and* identical source/chunk
        metadata share an id; this is what the vector store dedupes on.
        """
        key = "\x1f".join(
            (
                self.text,
                str(self.metadata.get("source", "")),
                str(self.metadata.get("chunk", "")),
            )
        )
        return f"doc-{stable_hash(key, namespace='docid'):016x}"

    def fact_ids(self) -> frozenset[str]:
        """Fact ids asserted by this chunk (empty if untagged)."""
        raw = self.metadata.get("facts", "")
        if not raw:
            return frozenset()
        return frozenset(f.strip() for f in str(raw).split(",") if f.strip())

    def with_metadata(self, **extra: Any) -> "Document":
        """A copy of this document with ``extra`` merged into metadata."""
        md = dict(self.metadata)
        md.update(extra)
        return Document(text=self.text, metadata=md)

    def __len__(self) -> int:
        return len(self.text)
