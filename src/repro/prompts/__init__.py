"""Prompt templating and the PETSc prompt library."""

from repro.prompts.templates import ChatPromptTemplate, PromptTemplate
from repro.prompts.library import (
    BASELINE_PROMPT,
    RAG_PROMPT,
    RAG_SYSTEM_PROMPT,
    REVISE_PROMPT,
    format_context,
    parse_rag_prompt,
)

__all__ = [
    "PromptTemplate",
    "ChatPromptTemplate",
    "RAG_SYSTEM_PROMPT",
    "RAG_PROMPT",
    "BASELINE_PROMPT",
    "REVISE_PROMPT",
    "format_context",
    "parse_rag_prompt",
]
