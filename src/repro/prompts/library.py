"""The PETSc prompt library (paper: "processing scripts, prompt libraries").

The RAG prompt uses explicit ``### Context`` / ``### Question`` section
markers.  :func:`parse_rag_prompt` is the inverse — the simulated chat
model uses it to recover the context block, and integration tests use it
to assert on exactly what the pipeline sent to the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prompts.templates import PromptTemplate
from repro.retrieval.base import RetrievedDocument

RAG_SYSTEM_PROMPT = (
    "You are a PETSc assistant. Answer questions about the PETSc numerical "
    "library precisely, citing the provided documentation context when it is "
    "relevant. If the context does not support an answer, say so rather than "
    "guessing."
)

RAG_PROMPT = PromptTemplate(
    "Answer the user's question about PETSc using the documentation context "
    "below.\n\n### Context\n\n{context}\n\n### Question\n\n{question}\n"
)

BASELINE_PROMPT = PromptTemplate("### Question\n\n{question}\n")

REVISE_PROMPT = PromptTemplate(
    "A PETSc developer reviewed your previous answer and asks for a revision."
    "\n\n### Guidance\n\n{guidance}\n\n### Question\n\n{question}\n"
)

_CONTEXT_HEADER = "### Context"
_QUESTION_HEADER = "### Question"
_GUIDANCE_HEADER = "### Guidance"


def format_context(hits: list[RetrievedDocument]) -> str:
    """Render retrieved documents as a numbered, source-attributed block."""
    blocks: list[str] = []
    for i, hit in enumerate(hits, start=1):
        source = hit.document.metadata.get("source", "unknown")
        blocks.append(f"[{i}] source: {source}\n{hit.document.text}")
    return "\n\n".join(blocks)


@dataclass
class ParsedPrompt:
    """Sections recovered from a rendered prompt."""

    question: str
    context: str | None = None
    guidance: str | None = None

    @property
    def has_context(self) -> bool:
        return self.context is not None


def parse_rag_prompt(content: str) -> ParsedPrompt:
    """Split a rendered prompt back into its sections.

    Text with no section markers is treated as a bare question.
    """
    context = None
    guidance = None
    rest = content
    if _CONTEXT_HEADER in rest:
        _, _, tail = rest.partition(_CONTEXT_HEADER)
        ctx, sep, after = tail.partition(_QUESTION_HEADER)
        context = ctx.strip()
        rest = after if sep else ""
    elif _GUIDANCE_HEADER in rest:
        _, _, tail = rest.partition(_GUIDANCE_HEADER)
        g, sep, after = tail.partition(_QUESTION_HEADER)
        guidance = g.strip()
        rest = after if sep else ""
    elif _QUESTION_HEADER in rest:
        _, _, rest = rest.partition(_QUESTION_HEADER)
    return ParsedPrompt(question=rest.strip(), context=context, guidance=guidance)
