"""Minimal prompt templating (LangChain-PromptTemplate-shaped)."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PromptError
from repro.llm.base import ChatMessage

_VAR_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


@dataclass(frozen=True)
class PromptTemplate:
    """A text template with ``{variable}`` placeholders.

    Variables are discovered from the template; rendering with missing or
    unexpected variables raises :class:`PromptError` rather than silently
    producing a malformed prompt.
    """

    template: str

    @property
    def input_variables(self) -> frozenset[str]:
        return frozenset(_VAR_RE.findall(self.template))

    def format(self, **kwargs: str) -> str:
        required = self.input_variables
        given = set(kwargs)
        if required - given:
            raise PromptError(f"missing prompt variables: {sorted(required - given)}")
        if given - required:
            raise PromptError(f"unexpected prompt variables: {sorted(given - required)}")

        def _sub(m: re.Match[str]) -> str:
            return str(kwargs[m.group(1)])

        return _VAR_RE.sub(_sub, self.template)


@dataclass(frozen=True)
class ChatPromptTemplate:
    """An ordered list of (role, template) pairs rendering to chat messages."""

    messages: tuple[tuple[str, PromptTemplate], ...] = field(default_factory=tuple)

    @classmethod
    def from_strings(cls, pairs: list[tuple[str, str]]) -> "ChatPromptTemplate":
        return cls(tuple((role, PromptTemplate(t)) for role, t in pairs))

    @property
    def input_variables(self) -> frozenset[str]:
        out: set[str] = set()
        for _, tmpl in self.messages:
            out |= tmpl.input_variables
        return frozenset(out)

    def format_messages(self, **kwargs: str) -> list[ChatMessage]:
        rendered: list[ChatMessage] = []
        for role, tmpl in self.messages:
            wanted = {k: v for k, v in kwargs.items() if k in tmpl.input_variables}
            rendered.append(ChatMessage(role=role, content=tmpl.format(**wanted)))
        return rendered
