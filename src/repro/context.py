"""Request-scoped execution context.

Before this layer, a pipeline invocation pulled its collaborators from a
mix of globals and ad-hoc keyword arguments: the tracer lived on the
pipeline (one mutable span stack shared by every caller), the metrics
registry came from a thread-local, and the deadline was rebuilt from
config inside ``answer``.  That is fine for one request at a time and
wrong the moment two requests run concurrently.

:class:`RequestContext` makes the per-request state explicit: one
object, created at the entry point, threaded through
pipeline → retrieval → rerank → llm.  Each request gets its *own*
tracer (so span trees cannot interleave), an explicit registry handle
(so worker threads report into the caller's scope), a deterministic
per-request RNG, and — during batched serving — the shared
:class:`~repro.llm.latency.TokenBurnCollector` that defers generation
work to the batch coordinator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.trace import Tracer
from repro.utils.rng import derive_seed

if TYPE_CHECKING:
    from repro.llm.latency import TokenBurnCollector
    from repro.resilience.policy import Deadline

#: Fallback id source for contexts created without an explicit request id
#: (interactive/sequential callers).  Engine batches always pass explicit,
#: deterministic ids, so nothing digest-relevant depends on this counter.
_ids = itertools.count(1)


@dataclass
class RequestContext:
    """Everything one request needs, owned by that request alone.

    Attributes
    ----------
    request_id:
        Stable identifier for logs and seed derivation.
    tracer:
        The span-tree builder for this request.  Never shared between
        concurrent requests — a tracer holds a mutable span stack.
    registry:
        Metrics sink; ``None`` falls back to the ambient
        :func:`~repro.observability.metrics.get_registry` scope at the
        point of use (see :meth:`metrics`).
    deadline:
        Optional wall-clock budget for the whole request.
    seed / rng:
        Deterministic per-request randomness, derived from
        ``(request_id, seed)`` so results are independent of worker
        assignment or completion order.
    burn_collector:
        When set (batched serving), the simulated LLM defers its
        per-token latency burn here instead of spending it inline.
    scratch:
        Free-form per-request storage; the engine uses it to record
        cache touches that must be replayed in deterministic order.
    """

    request_id: str
    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry | None = None
    deadline: "Deadline | None" = None
    seed: int = 0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    burn_collector: "TokenBurnCollector | None" = None
    scratch: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        *,
        request_id: str | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        deadline: "Deadline | None" = None,
        burn_collector: "TokenBurnCollector | None" = None,
    ) -> "RequestContext":
        rid = request_id if request_id is not None else f"req-{next(_ids):06d}"
        return cls(
            request_id=rid,
            tracer=tracer if tracer is not None else Tracer(),
            registry=registry,
            deadline=deadline,
            seed=seed,
            rng=np.random.default_rng(derive_seed("request", rid, seed)),
            burn_collector=burn_collector,
        )

    def metrics(self) -> MetricsRegistry:
        """The effective registry: explicit handle or the ambient scope."""
        return self.registry if self.registry is not None else get_registry()
