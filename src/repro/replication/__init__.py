"""Replicated shard serving: health tracking, failover, hedging.

Each shard of a :class:`~repro.vectorstore.sharded.ShardedVectorStore`
can serve from a :class:`ReplicaSet` of N copy-on-write forks of the
same shard artifact — byte-identical by construction — while a
clock-free :class:`HealthTracker` folds per-probe outcomes into an
up → suspect → down state machine per replica.  The scatter walks
replicas in fixed order (primary first), so under any
single-replica-per-shard fault schedule the merged answers, metrics,
and span digests match the healthy single-copy baseline byte-for-byte.
"""

from repro.replication.health import HealthTracker, ReplicaState
from repro.replication.replicaset import ReplicaSet

__all__ = ["HealthTracker", "ReplicaSet", "ReplicaState"]
