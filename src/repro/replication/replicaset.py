"""Ordered serving replicas for one shard: failover walk + hedged probes.

A :class:`ReplicaSet` holds the replicas of a single shard in a fixed
order — replica 0 is the primary, the rest are copy-on-write forks of
the same shard store, byte-identical by construction.  A query walks
the healthy replicas in that order and returns the first answer, so a
fault schedule that kills one replica per shard changes *which copy*
answered (and the ``repro.replica.*`` counters) but never the answer
itself: no span events are emitted on the failover path, which is what
keeps answers, metrics, and span digests byte-identical to the healthy
single-copy baseline.

Hedging, when enabled, probes the first backup *alongside* a primary
whose health is already suspect (or once the request deadline is mostly
spent — the one wall-clock trigger, off by default).  The hedge is
accounted in ``repro.replica.hedges`` and, when the backup's answer is
the one used, ``repro.replica.hedge_wins``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import TransientError, VectorStoreError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.replication.health import HealthTracker, ReplicaState

if TYPE_CHECKING:
    from repro.documents import Document


class ReplicaSet:
    """The serving copies of one shard, probed with deterministic failover."""

    def __init__(
        self,
        shard_index: int,
        replicas: list,
        health: HealthTracker,
        *,
        hedging: bool = False,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
    ) -> None:
        if not replicas:
            raise VectorStoreError(
                f"replica set for shard {shard_index} needs at least one replica"
            )
        self.shard_index = shard_index
        self.replicas = list(replicas)
        self.health = health
        self.hedging = hedging
        self._registry_fn = registry_fn if registry_fn is not None else get_registry

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def probe_order(self) -> list[int]:
        """Replica indices the walk may try, primary first, down skipped.

        Consuming: asking advances every down replica's skip counter
        toward its half-open probe, so call once per query.
        """
        return [
            replica
            for replica in range(len(self.replicas))
            if self.health.should_probe(self.shard_index, replica)
        ]

    def top_k(
        self,
        qvec: np.ndarray,
        k: int,
        where: dict | None,
        *,
        deadline_pressure: bool = False,
    ) -> "list[tuple[Document, float]] | None":
        """This shard's top-k from the first replica that answers.

        Returns ``None`` when no replica answers (every copy down or
        failing) — the composite store degrades the merge to the
        surviving shards and reports partial coverage.
        """
        registry = self._registry_fn()
        order = self.probe_order()
        hedge_replica: int | None = None
        hedge_hits: "list[tuple[Document, float]] | None" = None
        hedge_ok = False
        if (
            self.hedging
            and len(order) > 1
            and (
                deadline_pressure
                or self.health.state(self.shard_index, order[0]) is ReplicaState.SUSPECT
            )
        ):
            hedge_replica = order[1]
            registry.counter("repro.replica.hedges").inc()
            hedge_hits, hedge_ok = self._probe(hedge_replica, qvec, k, where, registry)
        for position, replica in enumerate(order):
            if replica == hedge_replica:
                hits, ok = hedge_hits, hedge_ok
                if ok and position > 0:
                    registry.counter("repro.replica.hedge_wins").inc()
            else:
                if position > 0:
                    registry.counter("repro.replica.failovers").inc()
                hits, ok = self._probe(replica, qvec, k, where, registry)
            if ok:
                return hits
        return None

    def _probe(
        self,
        replica: int,
        qvec: np.ndarray,
        k: int,
        where: dict | None,
        registry: MetricsRegistry,
    ) -> "tuple[list[tuple[Document, float]] | None, bool]":
        from repro.vectorstore.sharded import _shard_top_k

        registry.counter("repro.replica.probes").inc()
        try:
            hits = _shard_top_k(self.replicas[replica], qvec, k, where)
        except (TransientError, VectorStoreError):
            self.health.record_failure(self.shard_index, replica)
            registry.counter("repro.replica.probe_failures").inc()
            return None, False
        self.health.record_success(self.shard_index, replica)
        return hits, True
