"""Clock-free replica health tracking for the sharded serving path.

:class:`HealthTracker` is the replication analogue of
:class:`~repro.admission.limiter.TokenBucket`: it never reads a clock.
Every transition is a pure fold over the per-replica sequence of probe
outcomes (:meth:`HealthTracker.record_success` /
:meth:`~HealthTracker.record_failure`) and selection skips
(:meth:`~HealthTracker.should_probe`), so two runs that see the same
fault schedule walk byte-identical state machines — which is what keeps
failover digest-stable.

State machine per ``(shard, replica)`` key::

    UP --failures >= suspect_after--> SUSPECT
    SUSPECT --failures >= down_after--> DOWN
    DOWN --probe_after skipped selections--> one half-open probe
    any --probe success--> UP

A *down* replica is skipped by the failover walk; after sitting out
``probe_after`` selections it is offered one half-open probe (the
circuit-breaker idiom, counted in attempts instead of seconds).  A
single success fully recovers the replica.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable

from repro.config import ReplicationConfig
from repro.observability.metrics import MetricsRegistry, get_registry


class ReplicaState(str, enum.Enum):
    """Health of one serving replica; values are wire/CLI strings."""

    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


class _Cell:
    """Mutable health record for one ``(shard, replica)`` key."""

    __slots__ = ("state", "failures", "skips")

    def __init__(self) -> None:
        self.state = ReplicaState.UP
        #: Consecutive probe failures since the last success.
        self.failures = 0
        #: Selections sat out while down, toward the half-open probe.
        self.skips = 0


class HealthTracker:
    """Attempt-count-based up → suspect → down tracker per replica.

    Thread-safe: the scatter probes shards on a worker pool, and each
    shard's walk mutates only its own ``(shard, replica)`` cells, so
    per-key state stays a deterministic fold even under a parallel
    scatter.  Transitions are counted in ``repro.replica.marked_suspect``
    / ``marked_down`` / ``recovered``.
    """

    def __init__(
        self,
        config: ReplicationConfig | None = None,
        *,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
    ) -> None:
        self.config = config if config is not None else ReplicationConfig()
        self.config.validate()
        self._registry_fn = registry_fn if registry_fn is not None else get_registry
        self._lock = threading.Lock()
        self._cells: dict[tuple[int, int], _Cell] = {}

    def _cell(self, shard: int, replica: int) -> _Cell:
        return self._cells.setdefault((shard, replica), _Cell())

    def state(self, shard: int, replica: int) -> ReplicaState:
        with self._lock:
            return self._cell(shard, replica).state

    def record_success(self, shard: int, replica: int) -> None:
        """A probe answered: the replica is fully up again."""
        with self._lock:
            cell = self._cell(shard, replica)
            recovered = cell.state is not ReplicaState.UP
            cell.state = ReplicaState.UP
            cell.failures = 0
            cell.skips = 0
        if recovered:
            self._registry_fn().counter("repro.replica.recovered").inc()

    def record_failure(self, shard: int, replica: int) -> None:
        """A probe failed: advance toward suspect/down thresholds."""
        with self._lock:
            cell = self._cell(shard, replica)
            cell.failures += 1
            previous = cell.state
            if cell.failures >= self.config.down_after:
                cell.state = ReplicaState.DOWN
                if previous is not ReplicaState.DOWN:
                    cell.skips = 0
            elif cell.failures >= self.config.suspect_after:
                cell.state = ReplicaState.SUSPECT
            transition = (previous, cell.state)
        if transition[0] is not ReplicaState.DOWN and transition[1] is ReplicaState.DOWN:
            self._registry_fn().counter("repro.replica.marked_down").inc()
        elif transition[0] is ReplicaState.UP and transition[1] is ReplicaState.SUSPECT:
            self._registry_fn().counter("repro.replica.marked_suspect").inc()

    def should_probe(self, shard: int, replica: int) -> bool:
        """Whether the failover walk may try this replica this selection.

        Up/suspect replicas always may.  A down replica sits out
        ``probe_after`` selections and then gets one half-open probe;
        the probe's outcome (success → up, failure → down again) decides
        what happens next — all counted in attempts, never in seconds.
        """
        with self._lock:
            cell = self._cell(shard, replica)
            if cell.state is not ReplicaState.DOWN:
                return True
            cell.skips += 1
            if cell.skips >= self.config.probe_after:
                cell.skips = 0
                return True
            return False

    def snapshot(self) -> dict[int, list[str]]:
        """Replica states per shard (for the CLI shard table)."""
        with self._lock:
            grouped: dict[int, list[tuple[int, str]]] = {}
            for (shard, replica), cell in self._cells.items():
                grouped.setdefault(shard, []).append((replica, cell.state.value))
        return {
            shard: [state for _, state in sorted(pairs)]
            for shard, pairs in sorted(grouped.items())
        }
