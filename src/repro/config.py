"""Configuration for the augmented PETSc LLM workflow."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class RetrievalConfig:
    """First-pass retrieval + reranking parameters (paper Fig. 4)."""

    embedding_model: str = "petsc-embed-large"
    first_pass_k: int = 8
    final_l: int = 4
    use_keyword_search: bool = True
    use_rerank: bool = True
    reranker: str = "flashrank-lite"
    chunk_size: int = 800
    chunk_overlap: int = 120
    include_mail_archives: bool = False

    def validate(self) -> None:
        if self.first_pass_k <= 0:
            raise ConfigurationError(f"first_pass_k must be positive, got {self.first_pass_k}")
        if not 0 < self.final_l <= self.first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got {self.final_l} with K={self.first_pass_k}"
            )
        if self.reranker not in ("flashrank-lite", "nvidia-sim"):
            raise ConfigurationError(f"unknown reranker {self.reranker!r}")
        if self.chunk_size <= 0 or not 0 <= self.chunk_overlap < self.chunk_size:
            raise ConfigurationError(
                f"invalid chunking: size={self.chunk_size}, overlap={self.chunk_overlap}"
            )


@dataclass
class WorkflowConfig:
    """End-to-end workflow configuration."""

    chat_model: str = "gpt-4o-sim"
    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)
    #: Latency-burn override for the simulated model; None keeps the
    #: persona default, 0 disables the burn (unit tests).
    iterations_per_token: int | None = None
    record_history: bool = True

    def validate(self) -> None:
        self.retrieval.validate()
