"""Configuration for the augmented PETSc LLM workflow.

:class:`ReproConfig` is the root: one dataclass nesting every
subsystem's knobs (retrieval, resilience, observability, engine,
admission, durability, sharding, replication, ingest), with ``to_dict``/``from_dict``
round-tripping so the CLI, tests, and embedders of the library stop
threading six separate config objects.  ``WorkflowConfig`` is the
historical name and remains as an alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass

from repro.errors import ConfigurationError


@dataclass
class RetrievalConfig:
    """First-pass retrieval + reranking parameters (paper Fig. 4)."""

    embedding_model: str = "petsc-embed-large"
    first_pass_k: int = 8
    final_l: int = 4
    use_keyword_search: bool = True
    use_rerank: bool = True
    reranker: str = "flashrank-lite"
    chunk_size: int = 800
    chunk_overlap: int = 120
    include_mail_archives: bool = False

    def validate(self) -> None:
        if self.first_pass_k <= 0:
            raise ConfigurationError(f"first_pass_k must be positive, got {self.first_pass_k}")
        if not 0 < self.final_l <= self.first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got {self.final_l} with K={self.first_pass_k}"
            )
        if self.reranker not in ("flashrank-lite", "nvidia-sim"):
            raise ConfigurationError(f"unknown reranker {self.reranker!r}")
        if self.chunk_size <= 0 or not 0 <= self.chunk_overlap < self.chunk_size:
            raise ConfigurationError(
                f"invalid chunking: size={self.chunk_size}, overlap={self.chunk_overlap}"
            )


@dataclass
class ResilienceConfig:
    """Retry / circuit-breaker / deadline parameters for the pipeline hops.

    Backoff delays are derived deterministically from the retried call's
    key via :func:`repro.utils.rng.rng_for`, so two runs of the same
    workload produce identical schedules.
    """

    enabled: bool = True
    #: Total tries per LLM call (1 = no retries).
    max_attempts: int = 4
    backoff_base_seconds: float = 0.05
    backoff_max_seconds: float = 2.0
    backoff_multiplier: float = 2.0
    #: Jitter as a fraction of each delay, in [0, 1).
    jitter: float = 0.25
    #: Per-answer wall-clock budget; None disables the deadline.
    deadline_seconds: float | None = None
    #: Consecutive failures that trip the LLM breaker open.
    breaker_failure_threshold: int = 8
    breaker_recovery_seconds: float = 30.0
    #: Probe successes required to close a half-open breaker.
    breaker_half_open_max: int = 1

    def validate(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < self.backoff_base_seconds:
            raise ConfigurationError(
                f"invalid backoff range: base={self.backoff_base_seconds}, "
                f"max={self.backoff_max_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.breaker_failure_threshold <= 0:
            raise ConfigurationError(
                f"breaker_failure_threshold must be positive, got {self.breaker_failure_threshold}"
            )
        if self.breaker_recovery_seconds < 0:
            raise ConfigurationError(
                f"breaker_recovery_seconds must be >= 0, got {self.breaker_recovery_seconds}"
            )
        if self.breaker_half_open_max <= 0:
            raise ConfigurationError(
                f"breaker_half_open_max must be positive, got {self.breaker_half_open_max}"
            )


@dataclass
class ObservabilityConfig:
    """Tracing/metrics knobs for the observability layer.

    Tracing itself is always on (a span tree per invocation is cheap and
    the timing surface depends on it); these flags control where the
    data goes.
    """

    #: Report into the process-wide metrics registry.  When off, the
    #: pipeline writes to a private throwaway registry instead.
    metrics_enabled: bool = True
    #: Persist the serialized span tree into interaction-history records.
    record_traces: bool = True

    def validate(self) -> None:  # all combinations are valid
        return None


@dataclass
class AdmissionConfig:
    """Overload protection for the serving stack: admit → queue → shed.

    Admission walks a ladder per request: a deterministic token bucket
    (per-client quotas) admits what capacity allows; requests that would
    only wait a bounded time join a bounded queue; everything else is
    shed immediately with a typed
    :class:`~repro.errors.OverloadedError` carrying ``retry_after``.
    An AIMD controller narrows the batch worker pool when deadline
    misses or breaker trips rise and re-widens it on sustained success.
    All decisions are pure functions of the (simulated) arrival times,
    so same-seed runs shed byte-identically.
    """

    enabled: bool = False
    #: Token-bucket refill rate per client, in requests per second.
    requests_per_second: float = 16.0
    #: Bucket capacity: the instantaneous burst a client may spend.
    burst: int = 32
    #: Requests allowed to wait for a future token before shedding starts.
    queue_depth: int = 64
    #: Longest simulated wait a queued request may face; beyond it, shed.
    queue_timeout_seconds: float = 4.0
    #: Per-client refill-rate overrides (client id → requests/second).
    per_client_rates: dict[str, float] = field(default_factory=dict)
    #: AIMD concurrency bounds for the batch worker pool.
    min_concurrency: int = 1
    max_concurrency: int = 16
    #: Additive step added to the limit after ``aimd_window`` successes.
    aimd_increase: float = 1.0
    #: Multiplicative factor applied to the limit on an overload signal.
    aimd_decrease: float = 0.5
    aimd_window: int = 8

    def validate(self) -> None:
        if self.requests_per_second <= 0:
            raise ConfigurationError(
                f"requests_per_second must be positive, got {self.requests_per_second}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.queue_depth < 0:
            raise ConfigurationError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.queue_timeout_seconds < 0:
            raise ConfigurationError(
                f"queue_timeout_seconds must be >= 0, got {self.queue_timeout_seconds}"
            )
        for client, rate in self.per_client_rates.items():
            if rate <= 0:
                raise ConfigurationError(
                    f"per-client rate for {client!r} must be positive, got {rate}"
                )
        if not 1 <= self.min_concurrency <= self.max_concurrency:
            raise ConfigurationError(
                f"need 1 <= min_concurrency <= max_concurrency, got "
                f"{self.min_concurrency}..{self.max_concurrency}"
            )
        if self.aimd_increase <= 0:
            raise ConfigurationError(
                f"aimd_increase must be positive, got {self.aimd_increase}"
            )
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ConfigurationError(
                f"aimd_decrease must be in (0, 1), got {self.aimd_decrease}"
            )
        if self.aimd_window < 1:
            raise ConfigurationError(f"aimd_window must be >= 1, got {self.aimd_window}")


@dataclass
class DurabilityConfig:
    """Crash-safety knobs for every durable surface.

    All persistence goes through :mod:`repro.durability`: snapshots via
    ``atomic_write`` (temp file + fsync + rename) and incremental state
    via the CRC-checksummed append-only journal.  These flags tune cost
    vs. strictness; the atomicity itself is not optional.
    """

    #: fsync temp files and journal appends before acknowledging them.
    #: Turning this off trades power-loss safety for speed (tests, CI).
    fsync: bool = True
    #: Verify the index disk cache's payload checksums before serving it.
    verify_index_checksums: bool = True
    #: When set, the workflow's interaction store journals every record here.
    history_journal: str | None = None
    #: When set, the poller journals dead-letter queue mutations here.
    dead_letter_journal: str | None = None

    def validate(self) -> None:
        for label, path in (
            ("history_journal", self.history_journal),
            ("dead_letter_journal", self.dead_letter_journal),
        ):
            if path is not None and not str(path).strip():
                raise ConfigurationError(f"{label} must be a non-empty path or None")


@dataclass
class EngineConfig:
    """Query-engine parameters: caches, batch scheduling, burn kernel."""

    #: Entries kept per cache; 0 disables that cache entirely.
    answer_cache_size: int = 256
    retrieval_cache_size: int = 1024
    embedding_cache_size: int = 4096
    #: Default worker-pool width for :meth:`QueryEngine.answer_many`.
    batch_workers: int = 4
    #: Vector width of the batched latency-burn kernel.
    burn_lanes: int = 4096
    #: Directory for on-disk index artifacts; None keeps them in memory only.
    index_cache_dir: str | None = None

    def validate(self) -> None:
        for label, size in (
            ("answer_cache_size", self.answer_cache_size),
            ("retrieval_cache_size", self.retrieval_cache_size),
            ("embedding_cache_size", self.embedding_cache_size),
        ):
            if size < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {size}")
        if self.batch_workers <= 0:
            raise ConfigurationError(
                f"batch_workers must be positive, got {self.batch_workers}"
            )
        if self.burn_lanes <= 0:
            raise ConfigurationError(f"burn_lanes must be positive, got {self.burn_lanes}")


@dataclass
class ShardingConfig:
    """Knowledge-base sharding: deterministic partition + scatter-gather.

    Documents are routed to shards by a stable hash of their source
    path, each shard builds (and disk-caches) its own
    :class:`~repro.index.IndexArtifact`, and retrieval fans out across
    shards and merges top-k with a deterministic ``(score, doc_id)``
    tie-break.  ``num_shards=0`` disables sharding entirely and keeps
    the original monolithic index path byte-for-byte unchanged.
    """

    #: Number of index shards; 0 = monolithic (sharding disabled).
    num_shards: int = 0
    #: Worker-pool width for parallel per-shard index builds.
    build_workers: int = 4
    #: Worker-pool width for the per-query scatter across shards;
    #: 0 probes shards sequentially (results are identical either way).
    scatter_workers: int = 0

    def validate(self) -> None:
        if self.num_shards < 0:
            raise ConfigurationError(f"num_shards must be >= 0, got {self.num_shards}")
        if self.build_workers <= 0:
            raise ConfigurationError(
                f"build_workers must be positive, got {self.build_workers}"
            )
        if self.scatter_workers < 0:
            raise ConfigurationError(
                f"scatter_workers must be >= 0, got {self.scatter_workers}"
            )


@dataclass
class ReplicationConfig:
    """Replicated shard serving: health tracking, failover, hedging.

    Each shard serves from ``replicas`` copy-on-write forks of the same
    shard artifact (byte-identical by construction), tracked by a
    clock-free up → suspect → down health state machine fed by per-probe
    outcomes.  The scatter walks replicas in fixed order (primary first,
    then failover), so under any single-replica-per-shard fault schedule
    answers, metrics, and span digests match the healthy single-copy
    baseline byte-for-byte.  When every replica of a shard is down the
    merge degrades to the surviving shards — or raises
    :class:`~repro.errors.PartialResultError` when
    ``require_full_coverage`` is set.
    """

    #: Serving copies per shard; 1 = no replication (single copy).
    replicas: int = 1
    #: Consecutive probe failures that mark a replica *suspect*.
    suspect_after: int = 1
    #: Consecutive probe failures that mark a replica *down*.
    down_after: int = 3
    #: Selections a down replica sits out before one half-open probe.
    probe_after: int = 4
    #: Probe the first backup alongside a *suspect* primary and use its
    #: result when the primary fails (``repro.replica.hedges`` /
    #: ``hedge_wins``).
    hedging: bool = False
    #: Optional wall-clock hedge trigger: also hedge when the request
    #: deadline is more than this fraction spent.  Clock-driven, so runs
    #: using it are excluded from the byte-identical digest guarantee.
    hedge_deadline_fraction: float | None = None
    #: Raise :class:`~repro.errors.PartialResultError` instead of serving
    #: a partial merge when a whole shard is unreachable.
    require_full_coverage: bool = False

    def validate(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        if self.suspect_after < 1:
            raise ConfigurationError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.down_after < self.suspect_after:
            raise ConfigurationError(
                f"down_after must be >= suspect_after, got "
                f"{self.down_after} < {self.suspect_after}"
            )
        if self.probe_after < 1:
            raise ConfigurationError(f"probe_after must be >= 1, got {self.probe_after}")
        if self.hedge_deadline_fraction is not None and not (
            0.0 < self.hedge_deadline_fraction <= 1.0
        ):
            raise ConfigurationError(
                f"hedge_deadline_fraction must be in (0, 1], got "
                f"{self.hedge_deadline_fraction}"
            )


@dataclass
class IngestConfig:
    """Ingestion-lifecycle knobs: delta builds, epochs, invalidation.

    The write path (:mod:`repro.ingest`) stages every corpus mutation
    through one lifecycle: load → split → content-address → diff →
    embed-the-delta → apply to dirty shards → fan out to replicas →
    epoch swap → scoped cache invalidation.  These flags tune how
    aggressive the delta reuse is; they never change *what* is served —
    a delta-built artifact is value-identical to a from-scratch build
    by contract.
    """

    #: Resolve ``get_or_build_index`` via delta-from-parent when a
    #: lineage parent is available (corpus-free embeddings only).
    delta_enabled: bool = True
    #: Fall back to a full rebuild when more than this fraction of
    #: chunks changed — at that point a delta saves nothing.
    max_delta_fraction: float = 0.5
    #: Invalidate only the cache entries the delta can affect; when
    #: off, an ingest clears the query caches wholesale (old blunt
    #: behaviour, always safe).
    scoped_invalidation: bool = True

    def validate(self) -> None:
        if not 0.0 < self.max_delta_fraction <= 1.0:
            raise ConfigurationError(
                f"max_delta_fraction must be in (0, 1], got {self.max_delta_fraction}"
            )


@dataclass
class ReproConfig:
    """Root configuration nesting every subsystem's knobs.

    This is the single object the public API (:func:`repro.api.open_engine`)
    accepts; it round-trips through plain dicts via :meth:`to_dict` /
    :meth:`from_dict` so configs can live in JSON/TOML files or test
    parametrizations without touching the dataclass layer.
    """

    chat_model: str = "gpt-4o-sim"
    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    #: Latency-burn override for the simulated model; None keeps the
    #: persona default, 0 disables the burn (unit tests).
    iterations_per_token: int | None = None
    record_history: bool = True

    def validate(self) -> None:
        self.retrieval.validate()
        self.resilience.validate()
        self.observability.validate()
        self.engine.validate()
        self.admission.validate()
        self.durability.validate()
        self.sharding.validate()
        self.replication.validate()
        self.ingest.validate()

    def to_dict(self) -> dict:
        """Serialize to a plain nested dict (JSON-compatible)."""
        return _section_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReproConfig":
        """Build a config from a (possibly partial) nested dict.

        Missing keys keep their defaults; unknown keys raise
        :class:`~repro.errors.ConfigurationError` so typos do not pass
        silently.
        """
        return _section_from_dict(cls, data, path="")


def _section_to_dict(section) -> dict:
    out = {}
    for f in fields(section):
        value = getattr(section, f.name)
        if is_dataclass(value):
            out[f.name] = _section_to_dict(value)
        elif isinstance(value, dict):
            out[f.name] = dict(value)
        else:
            out[f.name] = value
    return out


def _section_from_dict(cls, data, *, path: str):
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"config section {path or 'root'!r} must be a mapping, got {type(data).__name__}"
        )
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown config key(s) {unknown} in section {path or 'root'!r}"
        )
    section = cls()
    for name, value in data.items():
        current = getattr(section, name)
        if is_dataclass(current):
            child = _section_from_dict(
                type(current), value, path=f"{path}.{name}" if path else name
            )
            setattr(section, name, child)
        else:
            setattr(section, name, value)
    return section


#: Historical name for :class:`ReproConfig`, kept as an alias so existing
#: call sites (and ``isinstance`` checks) keep working unchanged.
WorkflowConfig = ReproConfig
