"""The staged ingestion lifecycle: one write path for the knowledge base.

Two entry points, both operating on a live
:class:`~repro.engine.QueryEngine`:

* :func:`ingest_corpus` — the full lifecycle for a corpus revision:
  resolve the target artifact (memory → disk → delta-from-parent → full
  build, all inside the index layer), diff it against the artifact the
  engine is serving, swap the engine onto the new epoch, and invalidate
  exactly the affected cache entries.  A no-op ingest (same corpus,
  same config) touches nothing: no epoch advance, no cache churn, no
  disk writes — the serving digest is byte-identical before and after.
* :func:`apply_documents` — the live-store insertion path (interaction
  history fed back into the RAG database): route the documents through
  a typed :class:`~repro.ingest.delta.CorpusDelta`, apply them to the
  serving store (sharded stores fan out to every replica internally),
  and run scoped in-place invalidation instead of clearing every cache.

Every stage reports through :func:`repro.observability.stage` under
``repro.ingest.*`` metrics, so operators see chunk/diff/build/swap
timing and the re-embed counters that prove a one-paragraph edit did
not re-embed a shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.corpus.builder import CorpusBundle
from repro.documents import Document
from repro.errors import IngestError
from repro.ingest.delta import CorpusDelta, delta_from_added_documents, diff_chunks
from repro.ingest.invalidation import invalidate_engine_caches
from repro.observability.stage import stage

if TYPE_CHECKING:
    from repro.engine.engine import QueryEngine


@dataclass
class IngestReport:
    """What one ingest run did, stage by stage.

    ``resolution`` names how the target artifact was obtained:
    ``noop`` (already serving it), ``memory``/``disk`` (cache hits),
    ``delta`` (built from the lineage parent by re-embedding only
    changed chunks), ``full`` (from-scratch build), or ``live-store``
    (an :func:`apply_documents` insertion, no artifact swap).
    """

    digest: str
    previous_digest: str
    epoch: int
    swapped: bool
    noop: bool
    resolution: str
    delta: dict = field(default_factory=dict)
    invalidation: dict = field(default_factory=dict)
    added_ids: list[str] = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "digest": self.digest,
            "previous_digest": self.previous_digest,
            "epoch": self.epoch,
            "swapped": self.swapped,
            "noop": self.noop,
            "resolution": self.resolution,
            "delta": dict(self.delta),
            "invalidation": dict(self.invalidation),
            "added": len(self.added_ids),
        }


def _counter_values(registry, names: tuple[str, ...]) -> dict[str, int]:
    return {name: registry.counter(name).value for name in names}


_RESOLUTION_COUNTERS = (
    "repro.index.memory_hits",
    "repro.index.disk_hits",
    "repro.ingest.delta_builds",
    "repro.index.builds",
)


def _resolution_label(before: dict[str, int], after: dict[str, int]) -> str:
    for name, label in (
        ("repro.index.builds", "full"),
        ("repro.ingest.delta_builds", "delta"),
        ("repro.index.disk_hits", "disk"),
        ("repro.index.memory_hits", "memory"),
    ):
        if after[name] > before[name]:
            return label
    return "memory"


def ingest_corpus(
    engine: "QueryEngine",
    bundle: CorpusBundle,
    *,
    cache_dir=None,
) -> IngestReport:
    """Run the full ingestion lifecycle for a corpus revision.

    Resolves the artifact the engine *should* be serving for
    ``bundle`` under its current config, swaps the engine onto it
    (advancing the epoch), and invalidates the affected cache entries.
    Safe to call with an unchanged corpus: the run is detected as a
    no-op before any build or cache work happens.
    """
    from repro.index.builder import compute_digest, get_or_build_index
    from repro.index.sharding import (
        ShardedIndexArtifact,
        compute_composite_digest,
        get_or_build_sharded_index,
    )

    registry = engine._metrics()
    registry.counter("repro.ingest.runs").inc()
    previous = engine.artifact
    sharded = isinstance(previous, ShardedIndexArtifact)
    if sharded and engine.config.sharding.num_shards <= 0:
        raise IngestError(
            "engine serves a sharded artifact but sharding is disabled in config"
        )

    with stage("ingest:resolve", metric="repro.ingest.resolve", registry=registry):
        target = (
            compute_composite_digest(bundle, engine.config)
            if sharded
            else compute_digest(bundle, engine.config)
        )
    if target == previous.digest:
        registry.counter("repro.ingest.noops").inc()
        return IngestReport(
            digest=previous.digest,
            previous_digest=previous.digest,
            epoch=engine.epoch,
            swapped=False,
            noop=True,
            resolution="noop",
        )

    before = _counter_values(registry, _RESOLUTION_COUNTERS)
    with stage("ingest:build", metric="repro.ingest.build", registry=registry):
        if sharded:
            artifact = get_or_build_sharded_index(
                bundle, engine.config, cache_dir=cache_dir
            )
        else:
            artifact = get_or_build_index(bundle, engine.config, cache_dir=cache_dir)
    resolution = _resolution_label(before, _counter_values(registry, _RESOLUTION_COUNTERS))

    with stage("ingest:diff", metric="repro.ingest.diff", registry=registry):
        delta = diff_chunks(
            previous.chunks,
            artifact.chunks,
            parent_digest=previous.digest,
            target_digest=artifact.digest,
        )

    with stage("ingest:swap", metric="repro.ingest.swap", registry=registry):
        swapped = engine.swap_artifact(artifact, delta)

    return IngestReport(
        digest=engine.artifact.digest,
        previous_digest=previous.digest,
        epoch=engine.epoch,
        swapped=swapped,
        noop=False,
        resolution=resolution,
        delta=delta.summary(),
        invalidation=dict(getattr(engine, "_last_invalidation", {}) or {}),
    )


def apply_documents(
    engine: "QueryEngine | None",
    documents: list[Document],
    *,
    store=None,
) -> IngestReport:
    """Insert documents into a live serving store through the delta path.

    This is the one sanctioned store-level mutation: the documents
    become a :class:`~repro.ingest.delta.CorpusDelta`, land in ``store``
    (defaulting to the engine's default-mode pipeline store; sharded
    stores route per shard and fan out to replicas internally), and the
    engine's caches are invalidated *in place* — scoped to the entries
    the insertion can affect when ``config.ingest.scoped_invalidation``
    is on.  No artifact swap happens: the insertion lives on top of the
    current epoch, exactly like the workflow's history feed always has.

    ``engine=None`` (engine-less services) skips all cache work — there
    are no caches to invalidate.
    """
    if store is None:
        if engine is None:
            raise IngestError("apply_documents needs an engine or an explicit store")
        pipeline = engine.pipeline()
        if pipeline.retriever is None:
            raise IngestError("the target pipeline has no retriever store")
        store = pipeline.retriever.store

    registry = engine._metrics() if engine is not None else None

    def _count(name: str, n: int = 1) -> None:
        if registry is not None and n:
            registry.counter(name).inc(n)

    _count("repro.ingest.runs")
    with stage(
        "ingest:apply",
        metric="repro.ingest.apply",
        registry=registry,
    ) if registry is not None else _null_stage():
        added = store._add_documents(documents)
    if not added:
        _count("repro.ingest.noops")
        digest = engine.artifact.digest if engine is not None else ""
        return IngestReport(
            digest=digest,
            previous_digest=digest,
            epoch=engine.epoch if engine is not None else 0,
            swapped=False,
            noop=True,
            resolution="live-store",
        )

    added_set = set(added)
    delta = delta_from_added_documents([d for d in documents if d.doc_id in added_set])
    _count("repro.ingest.applied_documents", len(added))

    invalidation: dict = {}
    if engine is not None:
        scoped = delta if engine.config.ingest.scoped_invalidation else None
        invalidation = invalidate_engine_caches(engine, scoped, stale_digest=None)
    digest = engine.artifact.digest if engine is not None else ""
    return IngestReport(
        digest=digest,
        previous_digest=digest,
        epoch=engine.epoch if engine is not None else 0,
        swapped=False,
        noop=False,
        resolution="live-store",
        delta=delta.summary(),
        invalidation=invalidation,
        added_ids=list(added),
    )


class _null_stage:
    """``with``-compatible no-op used when there is no metrics registry."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False
