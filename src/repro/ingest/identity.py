"""Content-addressed chunk identity.

Every retrieval chunk gets a stable *content address*: the SHA-256 of
its whitespace-normalized, NFC-normalized text plus its ``source``
metadata.  The address is the unit of change the ingestion lifecycle
reasons about — a chunk whose address survives a corpus edit did not
change in any way retrieval cares about, so its embedding (and every
cache entry that depends only on it) can be reused.

Two deliberate invariances:

* **Whitespace**: runs of any whitespace collapse to one space before
  hashing, so reflowing a paragraph or converting tabs to spaces does
  not re-embed the chunk's neighbours.  (The *exact* text still keys
  vector reuse — see :func:`exact_key` — because embeddings tokenize
  raw text; the content address only classifies the edit.)
* **Unicode normalization**: text is NFC-normalized first, so an editor
  that re-encodes ``é`` from combining form to precomposed form is not
  a content change.

The address is distinct from :attr:`~repro.documents.Document.doc_id`
(which hashes the exact text plus chunk metadata): ``doc_id`` answers
"is this byte-for-byte the same chunk?", the content address answers
"is this the same piece of knowledge?".
"""

from __future__ import annotations

import hashlib
import re
import unicodedata

from repro.documents.document import Document

_WS_RE = re.compile(r"\s+")


def normalized_text(text: str) -> str:
    """NFC-normalize and collapse all whitespace runs to single spaces."""
    return _WS_RE.sub(" ", unicodedata.normalize("NFC", text)).strip()


def chunk_address(text: str, source: str = "") -> str:
    """The content address of a chunk: sha256(normalized text + source)."""
    h = hashlib.sha256()
    h.update(normalized_text(text).encode("utf-8", errors="replace"))
    h.update(b"\x1f")
    h.update(str(source).encode("utf-8", errors="replace"))
    return h.hexdigest()


def chunk_id(chunk: Document) -> str:
    """The content address of a chunk document."""
    return chunk_address(chunk.text, str(chunk.metadata.get("source", "")))


def exact_key(chunk: Document) -> str:
    """The byte-exact identity used for embedding reuse (``doc_id``)."""
    return chunk.doc_id


def source_digest(text: str) -> str:
    """Per-source document digest (exact text; drives re-chunk decisions)."""
    return hashlib.sha256(text.encode("utf-8", errors="replace")).hexdigest()
