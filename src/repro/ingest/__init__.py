"""One write path: the unified ingestion lifecycle.

Every mutation of the knowledge base flows through this package —
corpus revisions via :func:`ingest_corpus` (load → split →
content-address → diff → embed-only-changed → apply to dirty shards →
epoch swap → scoped cache invalidation) and live-store insertions via
:func:`apply_documents`.  Direct ``VectorStore.add_documents`` calls
are deprecated in favor of these entry points.

Layering: :mod:`repro.ingest.identity` and :mod:`repro.ingest.delta`
are leaves (documents-only imports) so the index builder can diff
chunk sets; :mod:`repro.ingest.lifecycle` and
:mod:`repro.ingest.invalidation` sit *above* the index and engine
layers and are therefore exposed lazily — importing them eagerly here
would cycle back through ``repro.index.builder``, which imports
:mod:`repro.ingest.delta`.
"""

from repro.ingest.delta import (
    ChunkRef,
    CorpusDelta,
    delta_from_added_documents,
    diff_chunks,
)
from repro.ingest.identity import (
    chunk_address,
    chunk_id,
    normalized_text,
    source_digest,
)

__all__ = [
    "ChunkRef",
    "CorpusDelta",
    "IngestReport",
    "apply_documents",
    "chunk_address",
    "chunk_id",
    "delta_from_added_documents",
    "diff_chunks",
    "ingest_corpus",
    "invalidate_engine_caches",
    "normalized_text",
    "source_digest",
]

_LAZY = {
    "IngestReport": ("repro.ingest.lifecycle", "IngestReport"),
    "apply_documents": ("repro.ingest.lifecycle", "apply_documents"),
    "ingest_corpus": ("repro.ingest.lifecycle", "ingest_corpus"),
    "invalidate_engine_caches": (
        "repro.ingest.invalidation",
        "invalidate_engine_caches",
    ),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.ingest' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
