"""The typed corpus delta: what changed between two chunk lists.

A :class:`CorpusDelta` is the contract between the diff stage of the
ingestion lifecycle and everything downstream of it — the delta index
build (embed exactly ``added + modified``), the replica fan-out, and
the scoped cache invalidation (drop exactly the entries those chunks
could affect).  It is a pure value computed from two chunk lists; no
stage mutates it.

Classification is two-level (see :mod:`repro.ingest.identity`):

* ``doc_id`` (byte-exact) decides whether a chunk's *embedding* can be
  reused — only byte-identical chunks reuse parent vectors, which is
  what keeps a delta-built artifact bit-equal to a from-scratch build.
* the content address (whitespace/NFC-normalized) decides how the
  change is *reported*: a chunk whose address survives but whose bytes
  moved is ``modified`` (a cosmetic rewrite), one with a fresh address
  is ``added``, one whose address disappeared is ``removed``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.documents.document import Document
from repro.ingest.identity import chunk_id


@dataclass(frozen=True)
class ChunkRef:
    """A chunk that left the corpus: enough identity to invalidate by."""

    address: str
    doc_id: str
    source: str


@dataclass
class CorpusDelta:
    """Chunk-level difference between a parent artifact and its successor.

    Attributes
    ----------
    parent_digest / target_digest:
        Artifact digests on either side of the delta (empty strings for
        live-store mutations, which happen under one artifact).
    added:
        Chunks whose content address is new — genuinely new knowledge.
    modified:
        Chunks whose content address survived but whose exact bytes
        changed (whitespace/markup-only edits).  Re-embedded, but
        reported separately so operators can see cosmetic churn.
    removed:
        References to chunks whose content address disappeared.
    unchanged:
        Count of chunks reused byte-for-byte (vectors included).
    sources_changed:
        The ``source`` paths whose documents changed, sorted.
    """

    parent_digest: str = ""
    target_digest: str = ""
    added: list[Document] = field(default_factory=list)
    modified: list[Document] = field(default_factory=list)
    removed: list[ChunkRef] = field(default_factory=list)
    unchanged: int = 0
    sources_changed: tuple[str, ...] = ()

    # ------------------------------------------------------------ views
    @property
    def is_noop(self) -> bool:
        return not (self.added or self.modified or self.removed)

    @property
    def embed_count(self) -> int:
        """Chunks the delta build must actually embed."""
        return len(self.added) + len(self.modified)

    @property
    def total(self) -> int:
        """Chunk count of the successor corpus."""
        return self.embed_count + self.unchanged

    def embedded_chunks(self) -> list[Document]:
        return list(self.added) + list(self.modified)

    def removed_doc_ids(self) -> set[str]:
        """Byte-exact ids no longer served (dropped or rewritten)."""
        return {ref.doc_id for ref in self.removed}

    @property
    def digest(self) -> str:
        """The delta's own content hash (``delta_digest`` in lineage)."""
        payload = json.dumps(
            {
                "parent": self.parent_digest,
                "target": self.target_digest,
                "added": sorted(d.doc_id for d in self.added),
                "modified": sorted(d.doc_id for d in self.modified),
                "removed": sorted(ref.doc_id for ref in self.removed),
                "unchanged": self.unchanged,
            },
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> dict:
        return {
            "added": len(self.added),
            "modified": len(self.modified),
            "removed": len(self.removed),
            "unchanged": self.unchanged,
            "embedded": self.embed_count,
            "total": self.total,
            "sources_changed": list(self.sources_changed),
            "delta_digest": self.digest,
        }


def diff_chunks(
    old_chunks: list[Document],
    new_chunks: list[Document],
    *,
    parent_digest: str = "",
    target_digest: str = "",
) -> CorpusDelta:
    """Classify every chunk of ``new_chunks`` against ``old_chunks``.

    Byte-identical chunks (same ``doc_id``) are unchanged; the rest are
    split into added / modified / removed by content address.  Sources
    touched by any non-unchanged chunk land in ``sources_changed``.
    """
    old_by_doc_id = {c.doc_id for c in old_chunks}
    old_addresses = {chunk_id(c) for c in old_chunks}
    new_doc_ids = {c.doc_id for c in new_chunks}
    new_addresses: set[str] = set()

    delta = CorpusDelta(parent_digest=parent_digest, target_digest=target_digest)
    sources: set[str] = set()
    for chunk in new_chunks:
        address = chunk_id(chunk)
        new_addresses.add(address)
        if chunk.doc_id in old_by_doc_id:
            delta.unchanged += 1
            continue
        sources.add(str(chunk.metadata.get("source", "")))
        if address in old_addresses:
            delta.modified.append(chunk)
        else:
            delta.added.append(chunk)
    for chunk in old_chunks:
        if chunk.doc_id in new_doc_ids:
            continue
        address = chunk_id(chunk)
        source = str(chunk.metadata.get("source", ""))
        sources.add(source)
        if address not in new_addresses:
            delta.removed.append(
                ChunkRef(address=address, doc_id=chunk.doc_id, source=source)
            )
        else:
            # Rewritten in place: the new bytes are already in
            # ``modified``; record the old bytes so caches holding them
            # can be invalidated.
            delta.removed.append(
                ChunkRef(address=address, doc_id=chunk.doc_id, source=source)
            )
    delta.sources_changed = tuple(sorted(sources))
    return delta


def delta_from_added_documents(documents: list[Document]) -> CorpusDelta:
    """A delta describing a live-store insertion (no artifact swap).

    Used by the one mutation path serving stores still support — the
    workflow feeding vetted history back into its RAG database.
    """
    return CorpusDelta(
        added=list(documents),
        sources_changed=tuple(
            sorted({str(d.metadata.get("source", "")) for d in documents})
        ),
    )
