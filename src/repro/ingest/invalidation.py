"""Scoped cache invalidation: drop exactly what a delta can affect.

The engine keeps three query-time caches — answer, retrieval, and
query-embedding LRUs.  Before the ingestion lifecycle existed the only
tool was :meth:`~repro.engine.QueryEngine.clear_query_caches`, which
throws away every warm entry on any corpus mutation.  This module
replaces that with per-entry reasoning driven by the typed
:class:`~repro.ingest.delta.CorpusDelta`:

**Retrieval entries** (key ``(retriever_name, query, k)``, value a tuple
of :class:`~repro.retrieval.base.RetrievedDocument`):

* An entry containing a removed/rewritten chunk (byte-exact ``doc_id``)
  is stale — evict.
* For additions, a ``vector`` entry survives iff no added chunk can
  enter its top-k: the entry is full (``len == k``) and
  ``max(added_vectors @ query_vector)`` is strictly below the entry's
  k-th score.  Brute-force cosine retrieval admits a new document only
  when it beats the boundary, so this test is exact (ties evict,
  conservatively, because the merge tie-break could prefer the new
  doc_id).
* Entries from retrievers whose scores depend on corpus statistics
  (``bm25``, ``hybrid``) or on tables the delta may have changed
  (``keyword``) are evicted whenever the delta is non-empty — correct,
  just not minimal.  In practice the engine caches only ``vector``
  retrievals, so the conservative branch is a safety net.

**Answer entries** (key ``(question_digest, mode, artifact_digest)``):
after an epoch swap the stale-digest entries are unreachable (the
answer-cache key function reads the live artifact digest) — they are
evicted to free capacity.  For an in-place store mutation (no digest
change) an entry survives only if its question's retrieval entries
*provably* survived: its question digest must match a surviving
retrieval query and must not match an evicted one.

**Query-embedding entries** depend only on the embedding model, which a
delta build preserves by contract — they are kept unless the swap
changed models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ingest.delta import CorpusDelta
from repro.service.lifecycle import question_digest

if TYPE_CHECKING:
    from repro.engine.engine import QueryEngine


def invalidate_engine_caches(
    engine: "QueryEngine",
    delta: CorpusDelta | None = None,
    *,
    stale_digest: str | None = None,
    embedding_preserved: bool = True,
) -> dict:
    """Invalidate the engine's query caches for one corpus change.

    ``delta=None`` is the blunt path: every retrieval and answer entry
    is dropped (and the embedding cache too unless the embedding model
    was preserved).  With a delta, eviction is scoped as described in
    the module docstring.  ``stale_digest`` marks an epoch swap — the
    digest the engine just moved off — while ``None`` means an in-place
    mutation of the live store.

    Returns an accounting dict; the same numbers land on
    ``repro.ingest.invalidated_*`` / ``repro.ingest.retained_retrieval``
    counters.
    """
    registry = engine._metrics()
    if delta is None:
        summary = {
            "scoped": False,
            "invalidated_retrieval": len(engine._retrieval_lru),
            "retained_retrieval": 0,
            "invalidated_answers": len(engine._answer_lru),
            "invalidated_embeddings": (
                0 if embedding_preserved else len(engine._embedding_lru)
            ),
        }
        engine._retrieval_lru.clear()
        engine._answer_lru.clear()
        if not embedding_preserved:
            engine._embedding_lru.clear()
        registry.counter("repro.ingest.invalidated_retrieval").inc(
            summary["invalidated_retrieval"]
        )
        registry.counter("repro.ingest.invalidated_answers").inc(
            summary["invalidated_answers"]
        )
        return summary

    removed_ids = delta.removed_doc_ids()
    added = delta.embedded_chunks()
    embedding = engine.artifact.embedding
    added_vectors = (
        embedding.embed_documents([c.text for c in added]) if added else None
    )
    changed = not delta.is_noop

    evicted_queries: set[str] = set()
    surviving_queries: set[str] = set()

    def retrieval_stale(key, value) -> bool:
        if not (isinstance(key, tuple) and len(key) == 3):
            return True  # unrecognized entry shape: never serve it stale
        name, query, k = key
        hits = value if isinstance(value, tuple) else tuple(value)
        stale = _entry_stale(name, query, k, hits)
        (evicted_queries if stale else surviving_queries).add(str(query))
        return stale

    def _entry_stale(name, query, k, hits) -> bool:
        if any(hit.doc_id in removed_ids for hit in hits):
            return True
        if added_vectors is None:
            return False
        if name != "vector":
            return changed  # corpus-statistic scores: conservative
        if len(hits) < k:
            return True  # a free slot: any addition could fill it
        qvec = embedding.embed_query(str(query))
        boundary = min(hit.score for hit in hits)
        return bool(float((added_vectors @ qvec).max()) >= boundary)

    invalidated_retrieval = engine._retrieval_lru.evict_where(retrieval_stale)
    retained_retrieval = len(engine._retrieval_lru)

    if stale_digest is not None:
        # Epoch swap: entries keyed to the previous digest are
        # unreachable behind the live key function — reclaim them.
        live = engine.artifact.digest

        def answer_stale(key, _value) -> bool:
            return not (isinstance(key, tuple) and key and key[-1] == live)

    else:
        # In-place mutation: same artifact digest, so stale answers
        # would be served verbatim.  Keep an entry only when its
        # question's retrieval provably survived.
        unsafe = {question_digest(q) for q in evicted_queries}
        safe = {question_digest(q) for q in surviving_queries} - unsafe

        def answer_stale(key, _value) -> bool:
            if not (isinstance(key, tuple) and key):
                return True
            return key[0] in unsafe or key[0] not in safe

    invalidated_answers = engine._answer_lru.evict_where(answer_stale)
    invalidated_embeddings = 0
    if not embedding_preserved:
        invalidated_embeddings = len(engine._embedding_lru)
        engine._embedding_lru.clear()

    registry.counter("repro.ingest.invalidated_retrieval").inc(invalidated_retrieval)
    registry.counter("repro.ingest.retained_retrieval").inc(retained_retrieval)
    registry.counter("repro.ingest.invalidated_answers").inc(invalidated_answers)
    return {
        "scoped": True,
        "invalidated_retrieval": invalidated_retrieval,
        "retained_retrieval": retained_retrieval,
        "invalidated_answers": invalidated_answers,
        "invalidated_embeddings": invalidated_embeddings,
    }
