"""Named vector-database catalog (paper Section III-A).

"multiple databases can be built for different embeddings ... Similar
processes will be used for PETSc publications and the open PETSc mailing
lists.  Developers and users will be able to choose which vector
databases to use."

:class:`DatabaseCatalog` holds named stores (e.g. ``docs``, ``mail``,
``history``) and retrieves across any chosen subset, fusing the per-store
rankings with reciprocal rank fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import VectorStoreError
from repro.retrieval.base import RetrievedDocument, Retriever
from repro.retrieval.hybrid import reciprocal_rank_fusion
from repro.vectorstore.store import VectorStore

if TYPE_CHECKING:
    from repro.context import RequestContext


@dataclass
class DatabaseCatalog:
    """A registry of named vector stores with subset retrieval."""

    stores: dict[str, VectorStore] = field(default_factory=dict)

    def register(self, name: str, store: VectorStore) -> None:
        if not name:
            raise VectorStoreError("database name must be non-empty")
        if name in self.stores:
            raise VectorStoreError(f"database {name!r} is already registered")
        self.stores[name] = store

    def unregister(self, name: str) -> VectorStore:
        try:
            return self.stores.pop(name)
        except KeyError:
            raise VectorStoreError(f"no database named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self.stores)

    def get(self, name: str) -> VectorStore:
        try:
            return self.stores[name]
        except KeyError:
            raise VectorStoreError(
                f"no database named {name!r}; registered: {self.names()}"
            ) from None

    def search(
        self,
        query: str,
        *,
        databases: list[str] | None = None,
        k: int = 8,
        rrf_k: float = 60.0,
    ) -> list[RetrievedDocument]:
        """Top-k across the chosen databases (default: all), RRF-fused.

        Each hit's ``origin`` records which database produced it, so the
        developer-facing UI can show provenance per source.
        """
        chosen = databases if databases is not None else self.names()
        if not chosen:
            raise VectorStoreError("no databases selected")
        ranked_lists: list[list[RetrievedDocument]] = []
        for name in chosen:
            store = self.get(name)
            hits = [
                RetrievedDocument(document=doc, score=score, origin=f"db:{name}")
                for doc, score in store.similarity_search_with_score(query, k=k)
            ]
            ranked_lists.append(hits)
        fused = reciprocal_rank_fusion(ranked_lists, k=k, rrf_k=rrf_k)
        # Preserve per-database origins (RRF stamps "hybrid").
        by_id = {h.doc_id: h.origin for hits in ranked_lists for h in hits}
        return [
            RetrievedDocument(
                document=h.document, score=h.score, origin=by_id.get(h.doc_id, h.origin)
            )
            for h in fused
        ]


class CatalogRetriever(Retriever):
    """A :class:`Retriever` view over a catalog subset, for pipelines."""

    def __init__(self, catalog: DatabaseCatalog, *, databases: list[str] | None = None) -> None:
        self.catalog = catalog
        self.databases = databases

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        return self.catalog.search(query, databases=self.databases, k=k)
