"""The vector store: documents + embeddings + kNN index + persistence."""

from __future__ import annotations

import io
import json
import warnings
from pathlib import Path

import numpy as np

from repro.documents import Document
from repro.durability.atomic import atomic_write
from repro.embeddings.base import EmbeddingModel
from repro.errors import VectorStoreError
from repro.vectorstore.filters import matches_where
from repro.vectorstore.index import BruteForceIndex, VectorIndex


def mmr_search(
    store,
    query: str,
    *,
    k: int = 4,
    fetch_k: int = 20,
    lambda_mult: float = 0.5,
    where: dict | None = None,
) -> list[Document]:
    """MMR selection over any store exposing the VectorStore search surface."""
    if not 0.0 <= lambda_mult <= 1.0:
        raise VectorStoreError(f"lambda_mult must be in [0, 1], got {lambda_mult}")
    candidates = store.similarity_search_with_score(query, k=max(fetch_k, k), where=where)
    if not candidates:
        return []
    qvec = store.embedding.embed_query(query)
    cand_vecs = store.embedding.embed_documents([d.text for d, _ in candidates])
    rel = cand_vecs @ qvec
    selected: list[int] = []
    remaining = list(range(len(candidates)))
    while remaining and len(selected) < k:
        if not selected:
            best = max(remaining, key=lambda i: rel[i])
        else:
            sel_mat = cand_vecs[selected]
            # Max similarity of each remaining candidate to the picks.
            redundancy = (cand_vecs[remaining] @ sel_mat.T).max(axis=1)
            mmr = lambda_mult * rel[remaining] - (1.0 - lambda_mult) * redundancy
            best = remaining[int(np.argmax(mmr))]
        selected.append(best)
        remaining.remove(best)
    return [candidates[i][0] for i in selected]


class VectorStore:
    """A Chroma-shaped collection of embedded documents.

    Construction mirrors the paper's pipeline::

        store = VectorStore.from_documents(chunks, embedding_model)
        hits = store.similarity_search("What does KSPSolve do?", k=8)

    Duplicate documents (same :attr:`Document.doc_id`) are skipped on
    insert, so rebuilding a database over an unchanged corpus is
    idempotent.
    """

    def __init__(
        self,
        embedding: EmbeddingModel,
        *,
        index: VectorIndex | None = None,
        collection_name: str = "petsc-docs",
    ) -> None:
        self.embedding = embedding
        self.collection_name = collection_name
        self.index = index or BruteForceIndex(embedding.dim)
        if self.index.dim != embedding.dim:
            raise VectorStoreError(
                f"index dim {self.index.dim} != embedding dim {embedding.dim}"
            )
        self._docs: list[Document] = []
        self._ids: dict[str, int] = {}
        self._deleted: set[int] = set()

    # ------------------------------------------------------------ construction
    @classmethod
    def from_documents(
        cls,
        documents: list[Document],
        embedding: EmbeddingModel,
        *,
        index: VectorIndex | None = None,
        collection_name: str = "petsc-docs",
    ) -> "VectorStore":
        store = cls(embedding, index=index, collection_name=collection_name)
        store._add_documents(documents)
        return store

    @classmethod
    def from_precomputed(
        cls,
        documents: list[Document],
        vectors: np.ndarray,
        embedding: EmbeddingModel,
        *,
        collection_name: str = "petsc-docs",
    ) -> "VectorStore":
        """Build a store from documents whose vectors are already known.

        This is the delta-build primitive: the ingest lifecycle reuses a
        parent artifact's rows for unchanged chunks and embeds only the
        changed ones, then assembles the successor store here without
        touching the embedding model.  ``vectors`` must be row-aligned
        with ``documents``; duplicates (same ``doc_id``) keep the first
        occurrence, exactly like :meth:`from_documents`.
        """
        if vectors.shape[0] != len(documents):
            raise VectorStoreError(
                f"{len(documents)} documents but {vectors.shape[0]} vectors"
            )
        if len(documents) and vectors.shape[1] != embedding.dim:
            raise VectorStoreError(
                f"vector dim {vectors.shape[1]} != embedding dim {embedding.dim}"
            )
        store = cls(embedding, collection_name=collection_name)
        keep: list[int] = []
        for row, doc in enumerate(documents):
            if doc.doc_id in store._ids:
                continue
            store._ids[doc.doc_id] = len(store._docs)
            store._docs.append(doc)
            keep.append(row)
        if keep:
            store.index.add(np.ascontiguousarray(vectors[keep]))
        return store

    def add_documents(self, documents: list[Document]) -> list[str]:
        """Deprecated direct mutation; use the ingest lifecycle instead.

        Store-level writes bypass the artifact/digest contract — nothing
        invalidates caches, updates lineage, or fans out to replicas.
        The supported write path is :func:`repro.ingest.apply_documents`
        (or a full :func:`repro.ingest.ingest_corpus`), which stages the
        same insertion through a typed :class:`~repro.ingest.CorpusDelta`.
        """
        warnings.warn(
            "VectorStore.add_documents is deprecated; route mutations through "
            "repro.ingest (apply_documents / ingest_corpus) so caches, lineage, "
            "and replicas stay coherent",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._add_documents(documents)

    def _add_documents(self, documents: list[Document]) -> list[str]:
        """Embed and insert documents; returns the ids actually added."""
        fresh = [d for d in documents if d.doc_id not in self._ids]
        # Dedupe within the batch as well.
        unique: dict[str, Document] = {}
        for d in fresh:
            unique.setdefault(d.doc_id, d)
        batch = list(unique.values())
        if not batch:
            return []
        vectors = self.embedding.embed_documents([d.text for d in batch])
        self.index.add(vectors)
        added: list[str] = []
        for d in batch:
            self._ids[d.doc_id] = len(self._docs)
            self._docs.append(d)
            added.append(d.doc_id)
        return added

    def delete(self, ids: list[str]) -> int:
        """Tombstone documents by id; returns how many were deleted."""
        n = 0
        for doc_id in ids:
            row = self._ids.get(doc_id)
            if row is not None and row not in self._deleted:
                self._deleted.add(row)
                n += 1
        return n

    def __len__(self) -> int:
        return len(self._docs) - len(self._deleted)

    def get(self, doc_id: str) -> Document:
        row = self._ids.get(doc_id)
        if row is None or row in self._deleted:
            raise VectorStoreError(f"unknown document id {doc_id!r}")
        return self._docs[row]

    # ------------------------------------------------------------ search
    def similarity_search_with_score(
        self,
        query: str,
        *,
        k: int = 4,
        where: dict | None = None,
    ) -> list[tuple[Document, float]]:
        """Top-k documents by cosine similarity, with scores.

        Filtering and tombstones are applied after the kNN scan by
        over-fetching, which is exact as long as matches are not
        vanishingly rare; the fetch width doubles until ``k`` matches are
        found or the index is exhausted.
        """
        if k <= 0:
            return []
        qvec = self.embedding.embed_query(query)
        return self.similarity_search_by_vector_with_score(qvec, k=k, where=where)

    def similarity_search_by_vector_with_score(
        self,
        qvec: np.ndarray,
        *,
        k: int = 4,
        where: dict | None = None,
    ) -> list[tuple[Document, float]]:
        """Top-k documents for an already-embedded query vector.

        This is the scatter primitive for sharded search: the composite
        store embeds the query once and probes every shard by vector, so
        embedding cost (and the embedding cache) stays per-query rather
        than per-shard.
        """
        if k <= 0:
            return []
        fetch = k if (where is None and not self._deleted) else max(4 * k, 32)
        while True:
            idx, scores = self.index.search(qvec, fetch)
            hits: list[tuple[Document, float]] = []
            for i, s in zip(idx.tolist(), scores.tolist()):
                if i in self._deleted:
                    continue
                doc = self._docs[i]
                if matches_where(doc.metadata, where):
                    hits.append((doc, float(s)))
                    if len(hits) == k:
                        return hits
            if fetch >= self.index.size:
                return hits
            fetch = min(2 * fetch, self.index.size)

    def similarity_search(
        self, query: str, *, k: int = 4, where: dict | None = None
    ) -> list[Document]:
        return [doc for doc, _ in self.similarity_search_with_score(query, k=k, where=where)]

    def max_marginal_relevance_search(
        self,
        query: str,
        *,
        k: int = 4,
        fetch_k: int = 20,
        lambda_mult: float = 0.5,
        where: dict | None = None,
    ) -> list[Document]:
        """MMR search: trade off query relevance against mutual diversity."""
        return mmr_search(
            self, query, k=k, fetch_k=fetch_k, lambda_mult=lambda_mult, where=where
        )

    # ------------------------------------------------------------ sharing
    def fork(self, *, embedding: EmbeddingModel | None = None) -> "VectorStore":
        """Independent store sharing this one's vectors copy-on-write.

        Document bookkeeping (list/ids/tombstones) is copied eagerly —
        it is small — while the embedding matrix is shared through
        :meth:`BruteForceIndex.fork` until the child first adds vectors.
        Mutations on either side are invisible to the other, which is
        the contract that lets one immutable index artifact back many
        live pipelines (e.g. a workflow feeding interaction history into
        its own store without poisoning the shared cache).

        ``embedding`` substitutes a different (typically caching) model
        for the child's query embedding; it must match the parent's
        dimension since the shared vectors came from the parent's model.
        """
        if not isinstance(self.index, BruteForceIndex):
            raise VectorStoreError("only BruteForceIndex-backed stores can be forked")
        if embedding is not None and embedding.dim != self.embedding.dim:
            raise VectorStoreError(
                f"fork embedding dim {embedding.dim} != store dim {self.embedding.dim}"
            )
        child = VectorStore(
            embedding if embedding is not None else self.embedding,
            index=self.index.fork(),
            collection_name=self.collection_name,
        )
        child._docs = list(self._docs)
        child._ids = dict(self._ids)
        child._deleted = set(self._deleted)
        return child

    # ------------------------------------------------------------ persistence
    def save(self, directory: str | Path) -> Path:
        """Persist documents + vectors; format is npz + jsonl + manifest.

        Each file lands via :func:`~repro.durability.atomic.atomic_write`
        (temp + fsync + rename), so a crash mid-save never leaves a
        half-written file where a complete one used to be.
        """
        if not isinstance(self.index, BruteForceIndex):
            raise VectorStoreError("only BruteForceIndex-backed stores can be persisted")
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        live = [i for i in range(len(self._docs)) if i not in self._deleted]
        buf = io.BytesIO()
        np.savez_compressed(buf, vectors=self.index.matrix[live])
        atomic_write(d / "vectors.npz", buf.getvalue())
        lines = [
            json.dumps({"text": self._docs[i].text, "metadata": self._docs[i].metadata})
            for i in live
        ]
        atomic_write(d / "documents.jsonl", "".join(line + "\n" for line in lines))
        atomic_write(d / "manifest.json", json.dumps({
            "collection_name": self.collection_name,
            "embedding_model": self.embedding.name,
            "dim": self.embedding.dim,
            "count": len(live),
        }))
        return d

    @classmethod
    def load(cls, directory: str | Path, embedding: EmbeddingModel) -> "VectorStore":
        """Load a persisted store; the embedding model must match the manifest."""
        d = Path(directory)
        try:
            manifest = json.loads((d / "manifest.json").read_text())
        except OSError as exc:
            raise VectorStoreError(f"cannot read manifest in {d}: {exc}") from exc
        if manifest["embedding_model"] != embedding.name:
            raise VectorStoreError(
                f"store was built with {manifest['embedding_model']!r}, "
                f"got {embedding.name!r}"
            )
        if manifest["dim"] != embedding.dim:
            raise VectorStoreError(
                f"store dim {manifest['dim']} != embedding dim {embedding.dim}"
            )
        vectors = np.load(d / "vectors.npz")["vectors"]
        store = cls(embedding, collection_name=manifest["collection_name"])
        docs: list[Document] = []
        for line in (d / "documents.jsonl").read_text(encoding="utf-8").splitlines():
            obj = json.loads(line)
            docs.append(Document(text=obj["text"], metadata=obj["metadata"]))
        if len(docs) != vectors.shape[0]:
            raise VectorStoreError(
                f"corrupt store: {len(docs)} documents but {vectors.shape[0]} vectors"
            )
        # Re-insert without re-embedding: push vectors straight into the index.
        store.index.add(vectors)
        for doc in docs:
            store._ids[doc.doc_id] = len(store._docs)
            store._docs.append(doc)
        return store
