"""Chroma-like vector database.

The paper feeds LangChain loader/splitter output into
``Chroma.from_documents``; :class:`VectorStore` provides the same
surface: ``from_documents``, ``similarity_search(_with_score)``,
metadata ``where`` filters, deletion, persistence, and maximal marginal
relevance search.  Exact brute-force kNN is the default index; an
IVF-style coarse-quantized index is available for the approximate-search
ablation.
"""

from repro.vectorstore.filters import matches_where
from repro.vectorstore.index import BruteForceIndex, IVFIndex, VectorIndex
from repro.vectorstore.store import VectorStore
from repro.vectorstore.sharded import (
    ShardedVectorStore,
    shard_for_document,
    shard_for_source,
)
from repro.vectorstore.catalog import CatalogRetriever, DatabaseCatalog

__all__ = [
    "VectorStore",
    "ShardedVectorStore",
    "VectorIndex",
    "BruteForceIndex",
    "IVFIndex",
    "matches_where",
    "shard_for_document",
    "shard_for_source",
    "DatabaseCatalog",
    "CatalogRetriever",
]
