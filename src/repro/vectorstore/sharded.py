"""Scatter-gather vector search over deterministically partitioned shards.

The planner routes every document to a shard by a stable hash of its
``source`` metadata (:func:`shard_for_source`), so a given corpus always
partitions the same way across processes and runs.  At query time the
composite store embeds the query **once**, probes every shard by vector,
and merges the per-shard top-k under the total order ``(-score,
doc_id)``.

Partition invariance is the load-bearing property: the merged top-k must
be the same list for 1, 2, 4, or 8 shards.  Two details make that hold
exactly rather than approximately:

* Per-shard candidate lists are re-sorted by ``(-score, doc_id)`` before
  the merge — the brute-force index breaks score ties by insertion row,
  which is a per-shard accident.
* When a shard's k-th score ties with candidates beyond the fetch
  boundary, the fetch width doubles until the boundary score strictly
  separates (or the shard is exhausted), so no tied candidate that could
  win the global ``doc_id`` tie-break is left unfetched.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.documents import Document
from repro.embeddings.base import EmbeddingModel
from repro.errors import VectorStoreError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.utils.rng import stable_hash
from repro.vectorstore.store import VectorStore, mmr_search

if TYPE_CHECKING:
    from repro.engine.caches import ContextBinder

#: Hash namespace for the shard planner; changing it repartitions every
#: corpus, so it is part of the sharded-artifact digest contract.
SHARD_NAMESPACE = "shard-planner"


def shard_for_source(source: str, num_shards: int) -> int:
    """The shard a source path routes to: stable hash, mod shard count."""
    if num_shards <= 0:
        raise VectorStoreError(f"num_shards must be positive, got {num_shards}")
    return stable_hash(str(source), namespace=SHARD_NAMESPACE) % num_shards


def shard_for_document(doc: Document, num_shards: int) -> int:
    """Route a document by its ``source`` metadata (doc_id when absent).

    Chunks inherit their parent document's ``source``, so every chunk of
    one source page lands on the same shard as the page itself.
    """
    source = doc.metadata.get("source")
    key = str(source) if source else doc.doc_id
    return shard_for_source(key, num_shards)


def _shard_top_k(
    store: VectorStore, qvec: np.ndarray, k: int, where: dict | None
) -> list[tuple[Document, float]]:
    """One shard's top-k under the global ``(-score, doc_id)`` order."""
    fetch = k
    while True:
        hits = store.similarity_search_by_vector_with_score(qvec, k=fetch, where=where)
        exhausted = len(hits) < fetch
        boundary_clear = len(hits) > k and hits[-1][1] < hits[k - 1][1]
        if exhausted or boundary_clear:
            break
        fetch *= 2
    hits.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
    return hits[:k]


class ShardedVectorStore:
    """N per-shard :class:`VectorStore`\\ s behind the VectorStore surface.

    Queries scatter across shards (optionally on a thread pool) and
    gather under a deterministic merge; mutations route each document to
    its planner-assigned shard.  Search results are identical whether
    the scatter runs sequentially or on any number of workers.
    """

    def __init__(
        self,
        shards: list[VectorStore],
        embedding: EmbeddingModel,
        *,
        collection_name: str = "petsc-docs-sharded",
        scatter_workers: int = 0,
        binder: "ContextBinder | None" = None,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
    ) -> None:
        if not shards:
            raise VectorStoreError("a sharded store needs at least one shard")
        for i, shard in enumerate(shards):
            if shard.embedding.dim != embedding.dim:
                raise VectorStoreError(
                    f"shard {i} dim {shard.embedding.dim} != embedding dim {embedding.dim}"
                )
        self.shards = list(shards)
        self.embedding = embedding
        self.collection_name = collection_name
        self.scatter_workers = scatter_workers
        self.binder = binder
        self._registry_fn = registry_fn if registry_fn is not None else get_registry

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------ search
    def similarity_search_with_score(
        self,
        query: str,
        *,
        k: int = 4,
        where: dict | None = None,
    ) -> list[tuple[Document, float]]:
        """Scatter the query across shards, gather a deterministic top-k."""
        if k <= 0:
            return []
        registry = self._registry_fn()
        registry.counter("repro.shard.queries").inc()
        registry.counter("repro.shard.probes").inc(self.num_shards)
        qvec = self.embedding.embed_query(query)
        ctx = self.binder.ctx if self.binder is not None else None
        if ctx is not None and ctx.tracer._stack:
            # One constant-named child span regardless of shard count:
            # shard details ride in attributes, which the span-structure
            # digest excludes, so the digest contract holds at any N.
            with ctx.tracer.span("scatter", shards=self.num_shards, k=k) as span:
                merged = self._scatter(qvec, k, where)
                span.attributes["candidates"] = len(merged)
        else:
            merged = self._scatter(qvec, k, where)
        merged.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
        out = merged[:k]
        registry.counter("repro.shard.merged").inc(len(out))
        return out

    def _scatter(
        self, qvec: np.ndarray, k: int, where: dict | None
    ) -> list[tuple[Document, float]]:
        if self.scatter_workers > 1 and self.num_shards > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.scatter_workers, self.num_shards)
            ) as pool:
                per_shard = list(
                    pool.map(lambda s: _shard_top_k(s, qvec, k, where), self.shards)
                )
        else:
            per_shard = [_shard_top_k(s, qvec, k, where) for s in self.shards]
        return [hit for hits in per_shard for hit in hits]

    def similarity_search(
        self, query: str, *, k: int = 4, where: dict | None = None
    ) -> list[Document]:
        return [doc for doc, _ in self.similarity_search_with_score(query, k=k, where=where)]

    def max_marginal_relevance_search(
        self,
        query: str,
        *,
        k: int = 4,
        fetch_k: int = 20,
        lambda_mult: float = 0.5,
        where: dict | None = None,
    ) -> list[Document]:
        return mmr_search(
            self, query, k=k, fetch_k=fetch_k, lambda_mult=lambda_mult, where=where
        )

    # ------------------------------------------------------------ mutation
    def add_documents(self, documents: list[Document]) -> list[str]:
        """Route each document to its planner shard; returns added ids
        in input order."""
        by_shard: dict[int, list[Document]] = {}
        for doc in documents:
            by_shard.setdefault(shard_for_document(doc, self.num_shards), []).append(doc)
        added: set[str] = set()
        for shard_idx in sorted(by_shard):
            added.update(self.shards[shard_idx].add_documents(by_shard[shard_idx]))
        if added:
            self._registry_fn().counter("repro.shard.adds").inc(len(added))
        out: list[str] = []
        for doc in documents:
            if doc.doc_id in added:
                out.append(doc.doc_id)
                added.discard(doc.doc_id)
        return out

    def delete(self, ids: list[str]) -> int:
        return sum(shard.delete(ids) for shard in self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def get(self, doc_id: str) -> Document:
        for shard in self.shards:
            try:
                return shard.get(doc_id)
            except VectorStoreError:
                continue
        raise VectorStoreError(f"unknown document id {doc_id!r}")

    # ------------------------------------------------------------ sharing
    def fork(
        self, *, embedding: EmbeddingModel | None = None
    ) -> "ShardedVectorStore":
        """Copy-on-write fork of every shard (see :meth:`VectorStore.fork`).

        The fork's query embedding (typically a caching wrapper) applies
        at the composite layer — shards are probed by vector, so the
        query is embedded once per search regardless of shard count.
        """
        emb = embedding if embedding is not None else self.embedding
        if emb.dim != self.embedding.dim:
            raise VectorStoreError(
                f"fork embedding dim {emb.dim} != store dim {self.embedding.dim}"
            )
        return ShardedVectorStore(
            [shard.fork() for shard in self.shards],
            emb,
            collection_name=self.collection_name,
            scatter_workers=self.scatter_workers,
            binder=self.binder,
            registry_fn=self._registry_fn,
        )

    def with_serving_context(
        self,
        *,
        binder: "ContextBinder | None" = None,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
        scatter_workers: int | None = None,
    ) -> "ShardedVectorStore":
        """A view bound to an engine's request plumbing (binder/metrics)."""
        clone = ShardedVectorStore(
            self.shards,
            self.embedding,
            collection_name=self.collection_name,
            scatter_workers=(
                scatter_workers if scatter_workers is not None else self.scatter_workers
            ),
            binder=binder if binder is not None else self.binder,
            registry_fn=registry_fn if registry_fn is not None else self._registry_fn,
        )
        return clone

    # ------------------------------------------------------------ persistence
    def save(self, directory) -> None:
        raise VectorStoreError(
            "sharded stores persist per shard through the index disk cache, "
            "not VectorStore.save"
        )

    @classmethod
    def load(cls, directory, embedding) -> "ShardedVectorStore":
        raise VectorStoreError(
            "sharded stores load per shard through the index disk cache, "
            "not VectorStore.load"
        )
