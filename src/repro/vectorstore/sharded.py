"""Scatter-gather vector search over deterministically partitioned shards.

The planner routes every document to a shard by a stable hash of its
``source`` metadata (:func:`shard_for_source`), so a given corpus always
partitions the same way across processes and runs.  At query time the
composite store embeds the query **once**, probes every shard by vector,
and merges the per-shard top-k under the total order ``(-score,
doc_id)``.

Partition invariance is the load-bearing property: the merged top-k must
be the same list for 1, 2, 4, or 8 shards.  Two details make that hold
exactly rather than approximately:

* Per-shard candidate lists are re-sorted by ``(-score, doc_id)`` before
  the merge — the brute-force index breaks score ties by insertion row,
  which is a per-shard accident.
* When a shard's k-th score ties with candidates beyond the fetch
  boundary, the fetch width doubles until the boundary score strictly
  separates (or the shard is exhausted), so no tied candidate that could
  win the global ``doc_id`` tie-break is left unfetched.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.documents import Document
from repro.embeddings.base import EmbeddingModel
from repro.errors import PartialResultError, VectorStoreError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.utils.rng import stable_hash
from repro.vectorstore.store import VectorStore, mmr_search

if TYPE_CHECKING:
    from repro.config import ReplicationConfig
    from repro.engine.caches import ContextBinder
    from repro.replication import HealthTracker, ReplicaSet

#: Hash namespace for the shard planner; changing it repartitions every
#: corpus, so it is part of the sharded-artifact digest contract.
SHARD_NAMESPACE = "shard-planner"


def shard_for_source(source: str, num_shards: int) -> int:
    """The shard a source path routes to: stable hash, mod shard count."""
    if num_shards <= 0:
        raise VectorStoreError(f"num_shards must be positive, got {num_shards}")
    return stable_hash(str(source), namespace=SHARD_NAMESPACE) % num_shards


def shard_for_document(doc: Document, num_shards: int) -> int:
    """Route a document by its ``source`` metadata (doc_id when absent).

    Chunks inherit their parent document's ``source``, so every chunk of
    one source page lands on the same shard as the page itself.
    """
    source = doc.metadata.get("source")
    key = str(source) if source else doc.doc_id
    return shard_for_source(key, num_shards)


def _shard_top_k(
    store: VectorStore, qvec: np.ndarray, k: int, where: dict | None
) -> list[tuple[Document, float]]:
    """One shard's top-k under the global ``(-score, doc_id)`` order."""
    fetch = k
    while True:
        hits = store.similarity_search_by_vector_with_score(qvec, k=fetch, where=where)
        exhausted = len(hits) < fetch
        boundary_clear = len(hits) > k and hits[-1][1] < hits[k - 1][1]
        if exhausted or boundary_clear:
            break
        fetch *= 2
    hits.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
    return hits[:k]


class ShardedVectorStore:
    """N per-shard :class:`VectorStore`\\ s behind the VectorStore surface.

    Queries scatter across shards (optionally on a thread pool) and
    gather under a deterministic merge; mutations route each document to
    its planner-assigned shard.  Search results are identical whether
    the scatter runs sequentially or on any number of workers.
    """

    def __init__(
        self,
        shards: list[VectorStore],
        embedding: EmbeddingModel,
        *,
        collection_name: str = "petsc-docs-sharded",
        scatter_workers: int = 0,
        binder: "ContextBinder | None" = None,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
        replica_sets: "list[ReplicaSet] | None" = None,
        replication: "ReplicationConfig | None" = None,
    ) -> None:
        if not shards:
            raise VectorStoreError("a sharded store needs at least one shard")
        for i, shard in enumerate(shards):
            if shard.embedding.dim != embedding.dim:
                raise VectorStoreError(
                    f"shard {i} dim {shard.embedding.dim} != embedding dim {embedding.dim}"
                )
        if replica_sets is not None and len(replica_sets) != len(shards):
            raise VectorStoreError(
                f"{len(replica_sets)} replica set(s) for {len(shards)} shard(s)"
            )
        self.shards = list(shards)
        self.embedding = embedding
        self.collection_name = collection_name
        self.scatter_workers = scatter_workers
        self.binder = binder
        self._registry_fn = registry_fn if registry_fn is not None else get_registry
        self.replica_sets = replica_sets
        self.replication = replication

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_replicas(self) -> int:
        """Serving copies per shard (1 when replication is off)."""
        if self.replica_sets is None:
            return 1
        return self.replica_sets[0].num_replicas

    # ------------------------------------------------------------ search
    def similarity_search_with_score(
        self,
        query: str,
        *,
        k: int = 4,
        where: dict | None = None,
    ) -> list[tuple[Document, float]]:
        """Scatter the query across shards, gather a deterministic top-k."""
        if k <= 0:
            return []
        registry = self._registry_fn()
        registry.counter("repro.shard.queries").inc()
        registry.counter("repro.shard.probes").inc(self.num_shards)
        qvec = self.embedding.embed_query(query)
        ctx = self.binder.ctx if self.binder is not None else None
        if ctx is not None and ctx.tracer._stack:
            # One constant-named child span regardless of shard count:
            # shard details ride in attributes, which the span-structure
            # digest excludes, so the digest contract holds at any N.
            # Failover/hedging likewise report through attributes and
            # ``repro.replica.*`` counters only — never span events — so
            # a rescued query digests identically to a healthy one.
            with ctx.tracer.span("scatter", shards=self.num_shards, k=k) as span:
                out = self._gather(qvec, k, where, ctx, registry, span)
        else:
            out = self._gather(qvec, k, where, ctx, registry, None)
        registry.counter("repro.shard.merged").inc(len(out))
        return out

    def _gather(
        self,
        qvec: np.ndarray,
        k: int,
        where: dict | None,
        ctx,
        registry: MetricsRegistry,
        span,
    ) -> list[tuple[Document, float]]:
        """Merge the scatter; degrade (or raise) when shards went dark."""
        per_shard = self._scatter(qvec, k, where)
        merged = [hit for hits in per_shard if hits is not None for hit in hits]
        if span is not None:
            span.attributes["candidates"] = len(merged)
        failed = [index for index, hits in enumerate(per_shard) if hits is None]
        coverage = (self.num_shards - len(failed)) / self.num_shards
        if failed:
            registry.counter("repro.shard.partial_queries").inc()
            registry.counter("repro.shard.unanswered").inc(len(failed))
            if span is not None:
                # The one deliberate digest change for partial results:
                # partial runs are compared rerun-vs-rerun, never against
                # the full-coverage baseline.
                span.attributes["coverage"] = round(coverage, 6)
                ctx.tracer.event(
                    "shard:partial",
                    coverage=round(coverage, 6),
                    failed_shards=",".join(str(index) for index in failed),
                )
            if self.replication is not None and self.replication.require_full_coverage:
                raise PartialResultError(
                    f"{len(failed)}/{self.num_shards} shard(s) unreachable "
                    f"(no surviving replica): {failed}",
                    coverage=coverage,
                    failed_shards=tuple(failed),
                )
        if ctx is not None:
            previous = float(ctx.scratch.get("shard_coverage", 1.0))
            ctx.scratch["shard_coverage"] = min(previous, coverage)
        merged.sort(key=lambda pair: (-pair[1], pair[0].doc_id))
        return merged[:k]

    def _scatter(
        self, qvec: np.ndarray, k: int, where: dict | None
    ) -> "list[list[tuple[Document, float]] | None]":
        hedge_pressure = (
            self._deadline_pressure() if self.replica_sets is not None else False
        )
        if self.num_shards == 1 or self.scatter_workers <= 1:
            # Fast serial path: pool setup dominates single-shard probes.
            return [
                self._probe_shard(index, qvec, k, where, hedge_pressure)
                for index in range(self.num_shards)
            ]
        with ThreadPoolExecutor(
            max_workers=min(self.scatter_workers, self.num_shards)
        ) as pool:
            return list(
                pool.map(
                    lambda index: self._probe_shard(index, qvec, k, where, hedge_pressure),
                    range(self.num_shards),
                )
            )

    def _probe_shard(
        self,
        index: int,
        qvec: np.ndarray,
        k: int,
        where: dict | None,
        hedge_pressure: bool,
    ) -> "list[tuple[Document, float]] | None":
        """One shard's top-k; ``None`` when no replica answered.

        Without replication the shard store is probed directly and its
        failures propagate — byte-for-byte the pre-replication path.
        """
        if self.replica_sets is None:
            return _shard_top_k(self.shards[index], qvec, k, where)
        return self.replica_sets[index].top_k(
            qvec, k, where, deadline_pressure=hedge_pressure
        )

    def _deadline_pressure(self) -> bool:
        """Whether the wall-clock hedge trigger fired for this request.

        Only consulted when ``hedge_deadline_fraction`` is set — the one
        clock-driven decision in the replication layer, excluded from
        the byte-identical digest guarantee.
        """
        rep = self.replication
        if rep is None or rep.hedge_deadline_fraction is None or self.binder is None:
            return False
        ctx = self.binder.ctx
        deadline = ctx.deadline if ctx is not None else None
        if deadline is None:
            return False
        return deadline.elapsed() >= rep.hedge_deadline_fraction * deadline.budget_seconds

    def similarity_search(
        self, query: str, *, k: int = 4, where: dict | None = None
    ) -> list[Document]:
        return [doc for doc, _ in self.similarity_search_with_score(query, k=k, where=where)]

    def max_marginal_relevance_search(
        self,
        query: str,
        *,
        k: int = 4,
        fetch_k: int = 20,
        lambda_mult: float = 0.5,
        where: dict | None = None,
    ) -> list[Document]:
        return mmr_search(
            self, query, k=k, fetch_k=fetch_k, lambda_mult=lambda_mult, where=where
        )

    # ------------------------------------------------------------ mutation
    def add_documents(self, documents: list[Document]) -> list[str]:
        """Deprecated direct mutation; use the ingest lifecycle instead.

        See :meth:`VectorStore.add_documents` — the same contract
        applies, plus the sharded-specific hazard that direct writes
        bypass the per-shard artifact digests entirely.
        """
        warnings.warn(
            "ShardedVectorStore.add_documents is deprecated; route mutations "
            "through repro.ingest (apply_documents / ingest_corpus) so caches, "
            "lineage, and replicas stay coherent",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._add_documents(documents)

    def _add_documents(self, documents: list[Document]) -> list[str]:
        """Route each document to its planner shard; returns added ids
        in input order."""
        by_shard: dict[int, list[Document]] = {}
        for doc in documents:
            by_shard.setdefault(shard_for_document(doc, self.num_shards), []).append(doc)
        added: set[str] = set()
        for shard_idx in sorted(by_shard):
            added.update(self.shards[shard_idx]._add_documents(by_shard[shard_idx]))
            if self.replica_sets is not None:
                # Replica 0 *is* the shard store; apply the same batch to
                # every fork so copies stay byte-identical under mutation.
                for replica in self.replica_sets[shard_idx].replicas[1:]:
                    replica._add_documents(by_shard[shard_idx])
        if added:
            self._registry_fn().counter("repro.shard.adds").inc(len(added))
        out: list[str] = []
        for doc in documents:
            if doc.doc_id in added:
                out.append(doc.doc_id)
                added.discard(doc.doc_id)
        return out

    def delete(self, ids: list[str]) -> int:
        if self.replica_sets is not None:
            for replica_set in self.replica_sets:
                for replica in replica_set.replicas[1:]:
                    replica.delete(ids)
        return sum(shard.delete(ids) for shard in self.shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def get(self, doc_id: str) -> Document:
        for shard in self.shards:
            try:
                return shard.get(doc_id)
            except VectorStoreError:
                continue
        raise VectorStoreError(f"unknown document id {doc_id!r}")

    # ------------------------------------------------------------ sharing
    def fork(
        self, *, embedding: EmbeddingModel | None = None
    ) -> "ShardedVectorStore":
        """Copy-on-write fork of every shard (see :meth:`VectorStore.fork`).

        The fork's query embedding (typically a caching wrapper) applies
        at the composite layer — shards are probed by vector, so the
        query is embedded once per search regardless of shard count.
        """
        emb = embedding if embedding is not None else self.embedding
        if emb.dim != self.embedding.dim:
            raise VectorStoreError(
                f"fork embedding dim {emb.dim} != store dim {self.embedding.dim}"
            )
        return ShardedVectorStore(
            [shard.fork() for shard in self.shards],
            emb,
            collection_name=self.collection_name,
            scatter_workers=self.scatter_workers,
            binder=self.binder,
            registry_fn=self._registry_fn,
        )

    def with_serving_context(
        self,
        *,
        binder: "ContextBinder | None" = None,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
        scatter_workers: int | None = None,
    ) -> "ShardedVectorStore":
        """A view bound to an engine's request plumbing (binder/metrics)."""
        clone = ShardedVectorStore(
            self.shards,
            self.embedding,
            collection_name=self.collection_name,
            scatter_workers=(
                scatter_workers if scatter_workers is not None else self.scatter_workers
            ),
            binder=binder if binder is not None else self.binder,
            registry_fn=registry_fn if registry_fn is not None else self._registry_fn,
            replica_sets=self.replica_sets,
            replication=self.replication,
        )
        return clone

    def with_replication(
        self,
        config: "ReplicationConfig",
        *,
        health: "HealthTracker",
        store_wrapper: Callable[[VectorStore, int, int], VectorStore] | None = None,
    ) -> "ShardedVectorStore":
        """A serving view where each shard answers from a replica set.

        Replica 0 of every set is this store's shard object; replicas
        1..N-1 are copy-on-write forks of it, byte-identical until
        mutated (and mutations fan out, see :meth:`add_documents`).
        ``store_wrapper(store, shard_index, replica_index)`` is the
        fault seam: the engine uses it to interpose
        :meth:`~repro.resilience.faults.FaultInjector.wrap_store` on
        chosen replicas so shard outages join the seeded fault-schedule
        machinery instead of ad-hoc monkeypatching.
        """
        from repro.replication import ReplicaSet

        config.validate()
        replica_sets = []
        for index, shard in enumerate(self.shards):
            replicas: list[VectorStore] = [shard]
            replicas.extend(shard.fork() for _ in range(config.replicas - 1))
            if store_wrapper is not None:
                replicas = [
                    store_wrapper(replica, index, position)
                    for position, replica in enumerate(replicas)
                ]
            replica_sets.append(
                ReplicaSet(
                    index,
                    replicas,
                    health,
                    hedging=config.hedging,
                    registry_fn=self._registry_fn,
                )
            )
        return ShardedVectorStore(
            self.shards,
            self.embedding,
            collection_name=self.collection_name,
            scatter_workers=self.scatter_workers,
            binder=self.binder,
            registry_fn=self._registry_fn,
            replica_sets=replica_sets,
            replication=config,
        )

    # ------------------------------------------------------------ persistence
    def save(self, directory) -> None:
        raise VectorStoreError(
            "sharded stores persist per shard through the index disk cache, "
            "not VectorStore.save"
        )

    @classmethod
    def load(cls, directory, embedding) -> "ShardedVectorStore":
        raise VectorStoreError(
            "sharded stores load per shard through the index disk cache, "
            "not VectorStore.load"
        )
