"""Chroma-style metadata ``where`` filters.

Supported operators::

    {"doc_type": "manual_page"}                      # implicit $eq
    {"doc_type": {"$eq": "manual_page"}}
    {"chunk": {"$gt": 0}}, $gte, $lt, $lte, $ne
    {"doc_type": {"$in": ["faq", "tutorial"]}}, $nin
    {"title": {"$contains": "KSP"}}                  # substring on str()
    {"$and": [ ... ]}, {"$or": [ ... ]}, {"$not": { ... }}
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import VectorStoreError

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda a, b: a == b,
    "$ne": lambda a, b: a != b,
    "$gt": lambda a, b: a is not None and a > b,
    "$gte": lambda a, b: a is not None and a >= b,
    "$lt": lambda a, b: a is not None and a < b,
    "$lte": lambda a, b: a is not None and a <= b,
    "$in": lambda a, b: a in b,
    "$nin": lambda a, b: a not in b,
    "$contains": lambda a, b: str(b) in str(a),
}


def matches_where(metadata: dict[str, Any], where: dict[str, Any] | None) -> bool:
    """Whether ``metadata`` satisfies the ``where`` clause (None = match all)."""
    if not where:
        return True
    for key, cond in where.items():
        if key == "$and":
            if not all(matches_where(metadata, sub) for sub in cond):
                return False
        elif key == "$or":
            if not any(matches_where(metadata, sub) for sub in cond):
                return False
        elif key == "$not":
            if matches_where(metadata, cond):
                return False
        elif key.startswith("$"):
            raise VectorStoreError(f"unknown logical operator {key!r}")
        elif isinstance(cond, dict):
            value = metadata.get(key)
            for op, operand in cond.items():
                cmp = _COMPARATORS.get(op)
                if cmp is None:
                    raise VectorStoreError(f"unknown comparison operator {op!r}")
                if not cmp(value, operand):
                    return False
        else:
            if metadata.get(key) != cond:
                return False
    return True
