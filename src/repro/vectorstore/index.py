"""kNN indexes over a contiguous embedding matrix.

:class:`BruteForceIndex` is exact: one GEMV over a row-major float32
matrix, following the HPC guidance (contiguous access, no Python-level
loops in the hot path).  :class:`IVFIndex` trades recall for speed with
coarse k-means clustering and ``nprobe`` cluster scans — used by the
approximate-search ablation benchmark.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.embeddings.similarity import top_k_indices
from repro.errors import VectorStoreError


class VectorIndex(ABC):
    """Grows-only index over L2-normalized vectors."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise VectorStoreError(f"index dim must be positive, got {dim}")
        self.dim = dim

    @abstractmethod
    def add(self, vectors: np.ndarray) -> None:
        """Append rows (n, dim)."""

    @abstractmethod
    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (indices, scores) of the top-k most similar rows."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of stored vectors."""

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        q = np.asarray(query, dtype=np.float32).reshape(-1)
        if q.shape[0] != self.dim:
            raise VectorStoreError(f"query dim {q.shape[0]} != index dim {self.dim}")
        return q


class BruteForceIndex(VectorIndex):
    """Exact inner-product search with amortized-doubling storage."""

    def __init__(self, dim: int, *, initial_capacity: int = 1024) -> None:
        super().__init__(dim)
        self._data = np.empty((max(initial_capacity, 1), dim), dtype=np.float32)
        self._n = 0

    @property
    def size(self) -> int:
        return self._n

    @property
    def matrix(self) -> np.ndarray:
        """A read-only view of the stored vectors (no copy)."""
        view = self._data[: self._n]
        view.flags.writeable = False
        return view

    def add(self, vectors: np.ndarray) -> None:
        vecs = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vecs.shape[1] != self.dim:
            raise VectorStoreError(f"vector dim {vecs.shape[1]} != index dim {self.dim}")
        needed = self._n + vecs.shape[0]
        if needed > self._data.shape[0]:
            new_cap = max(needed, 2 * self._data.shape[0])
            grown = np.empty((new_cap, self.dim), dtype=np.float32)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n : needed] = vecs
        self._n = needed

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        q = self._check_query(query)
        if self._n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        scores = self._data[: self._n] @ q
        idx = top_k_indices(scores, k)
        return idx, scores[idx]

    def fork(self) -> "BruteForceIndex":
        """Copy-on-write child sharing this index's rows (no copy now).

        The child references the parent's storage through a read-only
        view sized exactly to the current row count, so its first
        :meth:`add` necessarily reallocates (``needed > capacity``) and
        copies — the parent never observes the child's writes.  Forks are
        how one cached :class:`~repro.index.IndexArtifact` serves many
        mutable pipeline stores.
        """
        child = BruteForceIndex.__new__(BruteForceIndex)
        child.dim = self.dim
        view = self._data[: self._n]
        view.flags.writeable = False
        child._data = view
        child._n = self._n
        return child


class IVFIndex(VectorIndex):
    """Inverted-file (coarse k-means) approximate index.

    Vectors are buffered until :meth:`train` (or the first search, which
    trains lazily).  Search scans only the ``nprobe`` closest clusters.
    """

    def __init__(self, dim: int, *, n_clusters: int = 16, nprobe: int = 4, seed: int = 7) -> None:
        super().__init__(dim)
        if n_clusters < 1:
            raise VectorStoreError(f"n_clusters must be >= 1, got {n_clusters}")
        if not 1 <= nprobe:
            raise VectorStoreError(f"nprobe must be >= 1, got {nprobe}")
        self.n_clusters = n_clusters
        self.nprobe = nprobe
        self.seed = seed
        self._pending: list[np.ndarray] = []
        self._n = 0
        self._centroids: np.ndarray | None = None
        self._cluster_rows: list[np.ndarray] = []
        self._cluster_ids: list[np.ndarray] = []

    @property
    def size(self) -> int:
        return self._n

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def add(self, vectors: np.ndarray) -> None:
        vecs = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vecs.shape[1] != self.dim:
            raise VectorStoreError(f"vector dim {vecs.shape[1]} != index dim {self.dim}")
        if self.is_trained:
            raise VectorStoreError("IVFIndex does not support adding after training")
        self._pending.append(vecs.copy())
        self._n += vecs.shape[0]

    def train(self, *, iterations: int = 8) -> None:
        """Run mini k-means over buffered vectors and build inverted lists."""
        if self.is_trained:
            return
        if self._n == 0:
            raise VectorStoreError("cannot train an empty IVF index")
        data = np.concatenate(self._pending, axis=0)
        self._pending.clear()
        k = min(self.n_clusters, data.shape[0])
        rng = np.random.default_rng(self.seed)
        centroids = data[rng.choice(data.shape[0], size=k, replace=False)].copy()
        assign = np.zeros(data.shape[0], dtype=np.int64)
        for _ in range(iterations):
            # E-step: nearest centroid by inner product (vectors normalized).
            assign = np.argmax(data @ centroids.T, axis=1)
            # M-step: recompute centroids; empty clusters keep their position.
            for c in range(k):
                members = data[assign == c]
                if members.shape[0]:
                    centroid = members.mean(axis=0)
                    norm = np.linalg.norm(centroid)
                    if norm > 0:
                        centroids[c] = centroid / norm
        self._centroids = centroids
        self._cluster_rows = []
        self._cluster_ids = []
        for c in range(k):
            ids = np.nonzero(assign == c)[0]
            self._cluster_ids.append(ids)
            self._cluster_rows.append(np.ascontiguousarray(data[ids]))

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        q = self._check_query(query)
        if self._n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        if not self.is_trained:
            self.train()
        assert self._centroids is not None
        nprobe = min(self.nprobe, self._centroids.shape[0])
        probe = top_k_indices(self._centroids @ q, nprobe)
        cand_ids = np.concatenate([self._cluster_ids[c] for c in probe])
        if cand_ids.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        cand_scores = np.concatenate([self._cluster_rows[c] @ q for c in probe])
        local = top_k_indices(cand_scores, k)
        return cand_ids[local], cand_scores[local]
