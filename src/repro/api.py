"""The consolidated public API.

Four PRs of growth left entry-point plumbing sprawled across
``build_rag_pipeline`` (bare pipelines), ``build_workflow`` (engine +
postprocessing + history), and ``build_support_system`` (the Fig. 5
topology), each resolving corpora, artifacts, and engines its own way.
This module is the one front door:

* :func:`open_engine` — config in, :class:`~repro.engine.QueryEngine`
  out.  Picks the monolithic or sharded engine from
  ``config.sharding.num_shards`` and resolves the shared index artifact
  (memory → disk → build) on the way.
* :func:`open_service` — config in,
  :class:`~repro.service.ReproService` out: the request front door over
  an :func:`open_engine` engine.  Serving code (CLI, bots, evaluation,
  chaos sweeps) should hold a service, not a raw engine or pipeline.
* :func:`open_pipeline` / :func:`open_workflow` /
  :func:`open_support_system` — the higher assemblies, all built on the
  same artifact/engine resolution.

The historical builders remain as thin wrappers delegating here — same
signatures, same return types, no behaviour change at default config.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ReproConfig
from repro.corpus.builder import CorpusBundle, build_default_corpus
from repro.pipeline.types import PipelineMode

if TYPE_CHECKING:
    from repro.bots.system import SupportSystem
    from repro.engine import QueryEngine
    from repro.history import InteractionStore
    from repro.index import IndexArtifact
    from repro.observability import MetricsRegistry
    from repro.pipeline.rag import RAGPipeline
    from repro.pipeline.workflow import AugmentedWorkflow
    from repro.resilience.faults import FaultInjector
    from repro.service import ReproService


def resolve_artifact(
    bundle: CorpusBundle | None = None, config: ReproConfig | None = None
) -> "IndexArtifact":
    """The shared index artifact for (bundle, config): sharded when
    ``config.sharding.num_shards >= 1``, monolithic otherwise."""
    from repro.index import get_or_build_index, get_or_build_sharded_index

    config = config or ReproConfig()
    bundle = bundle or build_default_corpus()
    if config.sharding.num_shards >= 1:
        return get_or_build_sharded_index(bundle, config)
    return get_or_build_index(bundle, config)


def open_engine(
    config: ReproConfig | None = None,
    *,
    bundle: CorpusBundle | None = None,
    fault_injector: "FaultInjector | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> "QueryEngine":
    """Open a query engine over the shared index artifact.

    This is the single engine factory: every consumer — CLI, workflow,
    bots, benchmarks — gets its engine here, so one process serves every
    caller from one artifact build.  ``config.sharding.num_shards >= 1``
    returns a :class:`~repro.engine.ShardedQueryEngine` (scatter-gather
    retrieval over N shards); the default ``0`` returns the monolithic
    :class:`~repro.engine.QueryEngine`.  Answer/metric/span digests are
    byte-identical across shard counts >= 1 for the same workload.
    """
    from repro.engine import QueryEngine, ShardedQueryEngine

    config = config or ReproConfig()
    config.validate()
    bundle = bundle or build_default_corpus()
    cls = ShardedQueryEngine if config.sharding.num_shards >= 1 else QueryEngine
    return cls.from_corpus(
        bundle, config, fault_injector=fault_injector, registry=registry
    )


def open_service(
    config: ReproConfig | None = None,
    *,
    bundle: CorpusBundle | None = None,
    fault_injector: "FaultInjector | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> "ReproService":
    """Open the serving front door: an :func:`open_engine` engine wrapped
    in its :class:`~repro.service.ReproService`.

    Every request — single or batch, from any consumer — runs the same
    interceptor chain (``admission → dedupe → answer-cache → tracing →
    execute → record``) and the same deterministic scheduler.
    """
    engine = open_engine(
        config, bundle=bundle, fault_injector=fault_injector, registry=registry
    )
    return engine.service


def open_pipeline(
    config: ReproConfig | None = None,
    *,
    bundle: CorpusBundle | None = None,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    fault_injector: "FaultInjector | None" = None,
) -> "RAGPipeline":
    """A bare pipeline (no engine caches) over the shared artifact.

    Baseline mode needs no index and is assembled directly; retrieval
    modes resolve the (possibly sharded) artifact first.
    """
    from repro.pipeline.rag import baseline_pipeline, pipeline_from_artifact

    config = config or ReproConfig()
    config.validate()
    mode = PipelineMode.coerce(mode)
    bundle = bundle or build_default_corpus()
    if mode is PipelineMode.BASELINE:
        return baseline_pipeline(bundle, config, fault_injector=fault_injector)
    artifact = resolve_artifact(bundle, config)
    return pipeline_from_artifact(
        artifact, config, mode=mode, fault_injector=fault_injector
    )


def open_workflow(
    config: ReproConfig | None = None,
    *,
    bundle: CorpusBundle | None = None,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    store: "InteractionStore | None" = None,
) -> "AugmentedWorkflow":
    """The complete workflow: engine-served pipeline + postprocessing +
    interaction history (+ durable journal when configured)."""
    from repro.pipeline.workflow import AugmentedWorkflow

    config = config or ReproConfig()
    config.validate()
    bundle = bundle or build_default_corpus()
    mode = PipelineMode.coerce(mode)
    if mode is PipelineMode.BASELINE:
        engine = None
        pipeline = open_pipeline(config, bundle=bundle, mode=mode)
    else:
        engine = open_engine(config, bundle=bundle)
        pipeline = engine.pipeline(mode)
    workflow = AugmentedWorkflow(
        bundle,
        pipeline,
        engine=engine,
        store=store,
        embedding_model=(
            config.retrieval.embedding_model if mode is not PipelineMode.BASELINE else ""
        ),
        record_history=config.record_history,
        record_traces=config.observability.record_traces,
    )
    if config.durability.history_journal and workflow.store.journal is None:
        # Every recorded interaction becomes durable the moment it lands;
        # `repro recover` rebuilds the store from this journal after a crash.
        workflow.store.attach_journal(
            config.durability.history_journal, fsync=config.durability.fsync
        )
    return workflow


def open_support_system(
    config: ReproConfig | None = None,
    *,
    bundle: CorpusBundle | None = None,
    developers: tuple[str, ...] = ("barry", "junchao", "hong"),
    mode: str = "rag+rerank",
    fault_injector: "FaultInjector | None" = None,
) -> "SupportSystem":
    """The full Fig. 5 support topology, chatbot served by
    :func:`open_engine`."""
    from repro.bots.system import build_support_system

    return build_support_system(
        bundle,
        config,
        developers=developers,
        mode=mode,
        fault_injector=fault_injector,
    )
