"""Additional manual pages: the long tail of the API surface.

These pages are real PETSc API (getters, setters, viewers, auxiliary
objects) written in the same prose style as the core pages.  They are
deliberate *ranking competition*: they share the solver vocabulary
("residual", "tolerance", "iteration", "preconditioner") without
asserting the benchmark's key facts, which is what makes the first-pass
embedding ranking noisy — the situation the paper's reranking stage
exists to fix ("the retriever quickly returns a few top results, which
may include both relevant and tangential information").
"""

from __future__ import annotations

from repro.corpus.model import ManualPageSpec


def misc_pages() -> list[ManualPageSpec]:
    specs: list[tuple[str, str, list[str], list[str]]] = [
        # (name, summary, description paragraphs, see_also)
        ("KSPGetType",
         "Gets the KSP type as a string from the KSP object.",
         ["Returns the name of the Krylov method currently configured on the solver, "
          "for example gmres or cg."],
         ["KSPSetType", "KSPView"]),
        ("KSPSetUp",
         "Sets up the internal data structures for the later use of an iterative solver.",
         ["Called automatically by KSPSolve(), but calling it explicitly separates the "
          "setup time of the solver and preconditioner from the iteration time in "
          "performance profiles."],
         ["KSPCreate", "KSPSolve"]),
        ("KSPGetSolution",
         "Gets the location of the solution for the linear system to be solved.",
         ["Returns the vector where the approximate solution is stored; note that this "
          "may not contain the final answer until KSPSolve() has completed."],
         ["KSPGetRhs", "KSPSolve"]),
        ("KSPGetRhs",
         "Gets the right-hand-side vector for the linear system to be solved.",
         ["Returns the vector b of the linear system A x = b associated with the solver."],
         ["KSPGetSolution", "KSPSolve"]),
        ("KSPGetResidualNorm",
         "Gets the last computed residual norm of the iterative solver.",
         ["Returns the residual norm from the most recent iteration; the norm type "
          "(preconditioned or unpreconditioned) matches the solver's convergence test "
          "configuration. Call after KSPSolve() or inside a monitor."],
         ["KSPGetIterationNumber", "KSPMonitorSet"]),
        ("KSPGetTolerances",
         "Gets the relative, absolute, divergence, and maximum iteration tolerances.",
         ["Returns the convergence parameters currently configured on the iterative "
          "solver; any output argument may be NULL if that value is not needed."],
         ["KSPSetTolerances"]),
        ("KSPMonitorCancel",
         "Clears all monitors for a KSP object.",
         ["Removes every monitor previously set with KSPMonitorSet(), including the "
          "ones installed from the options database."],
         ["KSPMonitorSet"]),
        ("KSPSetUpOnBlocks",
         "Sets up the preconditioner for each block in a block Jacobi, ASM, or field-split preconditioner.",
         ["Called automatically during KSPSolve(); exposed so that block setup time can "
          "be attributed correctly in performance profiling."],
         ["KSPSetUp", "PCBJACOBI"]),
        ("KSPSetComputeEigenvalues",
         "Sets a flag so that the extreme eigenvalues are calculated via a Lanczos or Arnoldi process as the linear system is solved.",
         ["Eigenvalue estimates are a cheap by-product of Krylov iterations and help "
          "diagnose preconditioner quality; view them with -ksp_view_eigenvalues."],
         ["KSPComputeEigenvalues", "KSPCHEBYSHEV"]),
        ("KSPComputeEigenvalues",
         "Computes the extreme eigenvalues for the preconditioned operator using the Krylov iteration data.",
         ["Requires KSPSetComputeEigenvalues() before the solve; the estimates improve "
          "with the number of iterations performed."],
         ["KSPSetComputeEigenvalues"]),
        ("KSPSetDM",
         "Sets the DM that may be used by some preconditioners to construct grid hierarchies.",
         ["Associating a DM with the solver lets geometric multigrid (PCMG) build its "
          "coarse levels automatically from the mesh hierarchy."],
         ["PCMG", "KSPSetOperators"]),
        ("KSPSetErrorIfNotConverged",
         "Causes KSPSolve() to generate an error immediately if the solver fails to converge.",
         ["By default a failed solve sets a negative converged reason without raising an "
          "error; with this flag set, divergence aborts with a full stack trace, which "
          "is convenient in batch jobs."],
         ["KSPGetConvergedReason"]),
        ("KSPSetReusePreconditioner",
         "Reuses the current preconditioner for subsequent solves even if the matrix values change.",
         ["Freezing the preconditioner trades convergence rate for setup cost, often a "
          "large net win inside Newton iterations or time stepping when the matrix "
          "changes slowly."],
         ["KSPSetOperators", "PCSetReusePreconditioner"]),
        ("KSPGetOperators",
         "Gets the matrix associated with the linear system and a (possibly) different one used to construct the preconditioner.",
         ["Returns the Amat and Pmat previously supplied with KSPSetOperators()."],
         ["KSPSetOperators"]),
        ("PCApply",
         "Applies the preconditioner to a vector.",
         ["Computes y = B x where B is the configured preconditioner; called internally "
          "once or twice per Krylov iteration depending on the method and side."],
         ["PCSetUp", "KSPSolve"]),
        ("PCSetUp",
         "Prepares for the use of a preconditioner.",
         ["Performs the potentially expensive setup phase — factorization for PCILU and "
          "PCLU, hierarchy construction for PCGAMG — separate from the per-iteration "
          "application cost."],
         ["PCApply", "KSPSetUp"]),
        ("PCFactorSetLevels",
         "Sets the number of levels of fill to use for ILU or ICC factorization.",
         ["Equivalent to the option -pc_factor_levels; larger values produce a more "
          "accurate but denser incomplete factorization."],
         ["PCILU", "PCICC"]),
        ("PCFactorSetShiftType",
         "Sets the type of shift to add to the diagonal during numerical factorization.",
         ["Equivalent to -pc_factor_shift_type; shifts rescue factorizations that "
          "encounter zero or negative pivots."],
         ["PCILU", "PCCHOLESKY"]),
        ("PCView",
         "Prints information about the preconditioner data structure.",
         ["Displays the preconditioner type and its configuration; invoked as part of "
          "KSPView() and by -ksp_view."],
         ["KSPView"]),
        ("VecDot",
         "Computes the vector dot product.",
         ["On parallel vectors the result requires a global reduction across all "
          "processes, which at extreme scale becomes a synchronization point in Krylov "
          "methods."],
         ["VecNorm", "VecTDot"]),
        ("VecAXPY",
         "Computes y = alpha x + y.",
         ["A local, embarrassingly parallel vector update used by every Krylov method; "
          "runs at memory bandwidth."],
         ["VecWAXPY", "VecScale"]),
        ("VecScale",
         "Scales a vector by multiplying each entry by a scalar.",
         ["A purely local operation with no communication."],
         ["VecAXPY"]),
        ("VecSet",
         "Sets all components of a vector to a single scalar value.",
         ["Commonly used to zero the initial guess before an iterative solve."],
         ["VecSetValues"]),
        ("VecSetValues",
         "Inserts or adds values into certain locations of a vector.",
         ["Like MatSetValues(), insertions are cached and become visible only after "
          "VecAssemblyBegin() and VecAssemblyEnd()."],
         ["VecAssemblyBegin", "MatSetValues"]),
        ("VecDuplicate",
         "Creates a new vector of the same type as an existing vector.",
         ["The standard way to obtain work vectors compatible with a given layout; "
          "Krylov methods allocate their basis vectors this way."],
         ["VecCreate"]),
        ("MatNorm",
         "Calculates various norms of a matrix.",
         ["Supports NORM_1, NORM_FROBENIUS and NORM_INFINITY; used in convergence "
          "diagnostics and scaling analyses."],
         ["VecNorm"]),
        ("MatTranspose",
         "Computes the transpose of a matrix, either in-place or out-of-place.",
         ["Explicit transposes are rarely needed by the solvers — KSPSolveTranspose() "
          "and MatMultTranspose() operate without forming one."],
         ["MatMultTranspose", "KSPSolveTranspose"]),
        ("MatMultTranspose",
         "Computes the matrix-vector product with the transpose, y = A^T x.",
         ["Required by methods such as KSPLSQR and KSPBICG that iterate on the normal "
          "or bi-orthogonal systems."],
         ["MatMult", "KSPLSQR"]),
        ("MatGetDiagonal",
         "Gets the diagonal of a matrix as a vector.",
         ["Used by PCJACOBI to build the diagonal scaling; a shell matrix must provide "
          "MATOP_GET_DIAGONAL for Jacobi preconditioning to work matrix-free."],
         ["PCJACOBI", "MatCreateShell"]),
        ("MatGetRow",
         "Gets a row of a sparse matrix (column indices and values).",
         ["Intended for inspection rather than performance; iterating over all rows "
          "this way is far slower than built-in matrix operations."],
         ["MatGetDiagonal"]),
        ("MatZeroRows",
         "Zeros all entries of a set of rows of a matrix, optionally placing a value on the diagonal.",
         ["The standard tool for imposing Dirichlet boundary conditions on an assembled "
          "system without changing the nonzero structure."],
         ["MatSetValues"]),
        ("MatDuplicate",
         "Duplicates a matrix including its nonzero structure and optionally its values.",
         ["Useful for building a modified preconditioning matrix Pmat from the system "
          "matrix Amat."],
         ["MatCreate", "KSPSetOperators"]),
        ("MatView",
         "Displays a matrix in a viewer: ASCII, binary, or graphical form.",
         ["Small matrices print readably with -mat_view; large matrices are better "
          "viewed with -mat_view draw or dumped in binary."],
         ["PetscViewerASCIIOpen"]),
        ("PetscViewerASCIIOpen",
         "Opens an ASCII file viewer for printing PETSc object information.",
         ["Viewers decouple what is printed from where it goes — stdout, a file, or a "
          "string buffer."],
         ["KSPView", "MatView"]),
        ("PetscPrintf",
         "Prints to standard out, only from the first processor of the communicator.",
         ["Avoids the interleaved output of naive printf in parallel programs."],
         ["PetscViewerASCIIOpen"]),
        ("PetscMalloc1",
         "Allocates an array of memory aligned to PETSC_MEMALIGN.",
         ["All PETSc internal allocations route through this interface, which is what "
          "lets -malloc_view and -info report allocation statistics."],
         ["PetscFree"]),
        ("PetscFree",
         "Frees memory allocated with PetscMalloc1().",
         ["Freeing memory not obtained from PetscMalloc1() generates an error in "
          "debugging builds."],
         ["PetscMalloc1"]),
        ("PetscOptionsGetInt",
         "Gets the integer value for a particular option in the database.",
         ["The programmatic counterpart of command-line option parsing; returns whether "
          "the option was actually set."],
         ["PetscOptionsSetValue"]),
        ("SNESSolve",
         "Solves a nonlinear system F(x) = 0.",
         ["Each Newton step solves a linear system with the current Jacobian through an "
          "inner KSP whose options use the same -ksp_ and -pc_ prefixes."],
         ["SNESSetFunction", "KSPSolve"]),
        ("SNESSetFunction",
         "Sets the function evaluation routine and function vector for use by the SNES routines.",
         ["The residual callback is the heart of a nonlinear solve; its output also "
          "drives matrix-free Jacobian applications under -snes_mf."],
         ["SNESSolve", "SNESSetJacobian"]),
        ("SNESSetJacobian",
         "Sets the function to compute the Jacobian as well as the location to store the matrix.",
         ["Supplying an analytic Jacobian usually outperforms finite-difference "
          "approximations; coloring-based finite differences are a practical middle "
          "ground for sparse problems."],
         ["SNESSetFunction"]),
        ("TSSolve",
         "Steps the requested number of timesteps of an ODE/DAE integrator.",
         ["Implicit methods solve a nonlinear system each step through SNES, which in "
          "turn uses KSP — so solver options compose across all three levels."],
         ["SNESSolve", "TSSetType"]),
        ("TSSetType",
         "Sets the method to be used as the timestepping solver.",
         ["Choices include backward Euler, Crank-Nicolson, theta methods, and "
          "strong-stability-preserving Runge-Kutta schemes."],
         ["TSSolve"]),
    ]
    pages = [
        ManualPageSpec(
            name=name,
            summary=summary,
            level="intermediate",
            description=desc,
            see_also=see_also,
        )
        for name, summary, desc, see_also in specs
    ]
    return pages
