"""Manual pages for Mat/Vec objects, options, and profiling infrastructure."""

from __future__ import annotations

from repro.corpus.model import ManualPageSpec


def mat_vec_pages() -> list[ManualPageSpec]:
    pages: list[ManualPageSpec] = []

    pages.append(ManualPageSpec(
        name="MatCreate",
        summary="Creates a matrix where the type is determined later.",
        synopsis='#include "petscmat.h"\nPetscErrorCode MatCreate(MPI_Comm comm, Mat *A);',
        level="beginner",
        description=[
            "Creates an empty matrix object; the format is chosen with MatSetType() or "
            "-mat_type, and the dimensions with MatSetSizes(). {fact:mat.aij_default}",
        ],
        see_also=["MatSetSizes", "MatSetType", "MatSetUp", "MatDestroy"],
    ))

    pages.append(ManualPageSpec(
        name="MatSetValues",
        summary="Inserts or adds a block of values into a matrix.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatSetValues(Mat mat, PetscInt m, const PetscInt idxm[], PetscInt n, "
            "const PetscInt idxn[], const PetscScalar v[], InsertMode addv);"
        ),
        level="beginner",
        description=[
            "{fact:mat.setvalues}",
            "Values are cached until assembly; off-process entries are communicated during "
            "MatAssemblyBegin()/MatAssemblyEnd().",
        ],
        notes=[
            "{fact:mat.preallocation}",
        ],
        see_also=["MatAssemblyBegin", "MatAssemblyEnd", "MatSetValuesBlocked", "MatSeqAIJSetPreallocation"],
    ))

    pages.append(ManualPageSpec(
        name="MatAssemblyBegin",
        summary="Begins assembling the matrix; the matrix is unusable until MatAssemblyEnd().",
        synopsis='#include "petscmat.h"\nPetscErrorCode MatAssemblyBegin(Mat mat, MatAssemblyType type);',
        level="beginner",
        description=[
            "{fact:mat.setvalues}",
            "Use MAT_FLUSH_ASSEMBLY between phases that mix ADD_VALUES and INSERT_VALUES, "
            "and MAT_FINAL_ASSEMBLY before using the matrix.",
        ],
        see_also=["MatAssemblyEnd", "MatSetValues"],
    ))

    pages.append(ManualPageSpec(
        name="MatSeqAIJSetPreallocation",
        summary="Preallocates memory for a sequential sparse AIJ matrix.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatSeqAIJSetPreallocation(Mat B, PetscInt nz, const PetscInt nnz[]);"
        ),
        level="intermediate",
        description=[
            "{fact:mat.preallocation}",
        ],
        notes=[
            "{fact:mat.info_option}",
            "Supplying an exact per-row count nnz[] eliminates all mallocs during assembly; "
            "a decent uniform estimate nz is often sufficient.",
        ],
        see_also=["MatMPIAIJSetPreallocation", "MatCreateSeqAIJ", "MatSetValues"],
    ))

    pages.append(ManualPageSpec(
        name="MatMPIAIJSetPreallocation",
        summary="Preallocates memory for a parallel sparse AIJ matrix.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatMPIAIJSetPreallocation(Mat B, PetscInt d_nz, const PetscInt d_nnz[], "
            "PetscInt o_nz, const PetscInt o_nnz[]);"
        ),
        level="intermediate",
        description=[
            "The diagonal block (d_nz/d_nnz) and off-diagonal block (o_nz/o_nnz) of each "
            "process's rows are preallocated separately.",
            "{fact:mat.preallocation}",
        ],
        see_also=["MatSeqAIJSetPreallocation", "MatCreateAIJ"],
    ))

    pages.append(ManualPageSpec(
        name="MatSetOption",
        summary="Sets a parameter option for a matrix.",
        synopsis='#include "petscmat.h"\nPetscErrorCode MatSetOption(Mat mat, MatOption op, PetscBool flg);',
        level="intermediate",
        description=[
            "{fact:mat.symmetric_option}",
            "Other commonly used options include MAT_NEW_NONZERO_LOCATION_ERR to catch "
            "insertions outside the preallocated pattern.",
        ],
        see_also=["MatSetValues", "MatIsSymmetric"],
    ))

    pages.append(ManualPageSpec(
        name="MatMult",
        summary="Computes the matrix-vector product y = A x.",
        synopsis='#include "petscmat.h"\nPetscErrorCode MatMult(Mat mat, Vec x, Vec y);',
        level="beginner",
        description=[
            "The work-horse operation of every Krylov method; for MATAIJ it is a sparse "
            "matrix-vector product overlapping communication of ghost values with "
            "computation on the local block.",
        ],
        see_also=["MatMultTranspose", "MatMultAdd"],
    ))

    pages.append(ManualPageSpec(
        name="MatCreateShell",
        summary="Creates a matrix-free matrix object with user-defined operations.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatCreateShell(MPI_Comm comm, PetscInt m, PetscInt n, PetscInt M, PetscInt N, "
            "void *ctx, Mat *A);"
        ),
        level="advanced",
        description=[
            "{fact:mf.shell}",
        ],
        notes=[
            "{fact:mf.pc_restriction}",
        ],
        see_also=["MatShellSetOperation", "MatShellGetContext", "PCSHELL", "KSPSetOperators"],
    ))

    pages.append(ManualPageSpec(
        name="MatShellSetOperation",
        summary="Allows user to set a matrix operation for a shell matrix.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatShellSetOperation(Mat mat, MatOperation op, void (*g)(void));"
        ),
        level="advanced",
        description=["{fact:mf.shell}"],
        see_also=["MatCreateShell"],
    ))

    pages.append(ManualPageSpec(
        name="MatSetNullSpace",
        summary="Attaches a null space to a matrix, used by solvers of singular systems.",
        synopsis='#include "petscmat.h"\nPetscErrorCode MatSetNullSpace(Mat mat, MatNullSpace nullsp);',
        level="advanced",
        description=[
            "{fact:nullspace.set}",
            "{fact:nullspace.constant}",
        ],
        notes=[
            "{fact:nullspace.pc_care}",
        ],
        see_also=["MatNullSpaceCreate", "MatSetNearNullSpace", "KSPSolve"],
    ))

    pages.append(ManualPageSpec(
        name="MatNullSpaceCreate",
        summary="Creates a data structure describing the null space of a matrix.",
        synopsis=(
            '#include "petscmat.h"\n'
            "PetscErrorCode MatNullSpaceCreate(MPI_Comm comm, PetscBool has_cnst, PetscInt n, "
            "const Vec vecs[], MatNullSpace *SP);"
        ),
        level="advanced",
        description=["{fact:nullspace.constant}"],
        see_also=["MatSetNullSpace"],
    ))

    pages.append(ManualPageSpec(
        name="VecCreate",
        summary="Creates an empty vector object; the type can be set with VecSetType().",
        synopsis='#include "petscvec.h"\nPetscErrorCode VecCreate(MPI_Comm comm, Vec *vec);',
        level="beginner",
        description=[
            "Vectors store the right-hand side and solution of linear systems; parallel "
            "layout follows the matrix row distribution set by MatSetSizes().",
        ],
        see_also=["VecSetSizes", "VecSetFromOptions", "VecDuplicate"],
    ))

    pages.append(ManualPageSpec(
        name="VecNorm",
        summary="Computes the vector norm.",
        synopsis='#include "petscvec.h"\nPetscErrorCode VecNorm(Vec x, NormType type, PetscReal *val);',
        level="beginner",
        description=[
            "Supports NORM_1, NORM_2 and NORM_INFINITY; on parallel vectors the reduction "
            "requires a collective operation across all processes.",
        ],
        see_also=["VecDot", "VecNormalize"],
    ))

    pages.append(ManualPageSpec(
        name="PetscInitialize",
        summary="Initializes the PETSc database and MPI.",
        synopsis=(
            '#include "petscsys.h"\n'
            "PetscErrorCode PetscInitialize(int *argc, char ***args, const char file[], const char help[]);"
        ),
        level="beginner",
        description=[
            "Must be the first PETSc call in a program; it initializes MPI if needed and "
            "reads the options database from the command line, the environment variable "
            "PETSC_OPTIONS, and any -options_file.",
        ],
        options=[
            ("-help", "print help for the options relevant to this run"),
            ("-info", "print verbose informational messages"),
            ("-log_view", "print performance summary at PetscFinalize()"),
        ],
        see_also=["PetscFinalize", "PetscOptionsGetInt"],
    ))

    pages.append(ManualPageSpec(
        name="PetscLogView",
        summary="Prints a summary of flop and timing information to a viewer (-log_view).",
        synopsis='#include "petscsys.h"\nPetscErrorCode PetscLogView(PetscViewer viewer);',
        level="intermediate",
        description=[
            "{fact:perf.logview}",
        ],
        notes=[
            "{fact:perf.stages}",
        ],
        see_also=["PetscLogStageRegister", "PetscLogStagePush", "PetscInitialize"],
    ))

    pages.append(ManualPageSpec(
        name="PetscLogStageRegister",
        summary="Attaches a character string name to a profiling stage.",
        synopsis='#include "petscsys.h"\nPetscErrorCode PetscLogStageRegister(const char sname[], PetscLogStage *stage);',
        level="intermediate",
        description=["{fact:perf.stages}"],
        see_also=["PetscLogStagePush", "PetscLogStagePop", "PetscLogView"],
    ))

    pages.append(ManualPageSpec(
        name="PetscOptionsSetValue",
        summary="Sets an option name-value pair in the options database.",
        synopsis='#include "petscsys.h"\nPetscErrorCode PetscOptionsSetValue(PetscOptions options, const char name[], const char value[]);',
        level="intermediate",
        description=["{fact:options.database}"],
        notes=["{fact:options.help}"],
        see_also=["PetscOptionsGetInt", "PetscInitialize"],
    ))

    return pages
