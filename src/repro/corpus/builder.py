"""Corpus assembly: render specs, write the Markdown tree, produce chunks.

The builder is the single entry point the rest of the library uses:

>>> corpus = build_default_corpus()
>>> len(corpus.documents) > 50
True

It renders every spec against the fact registry, optionally writes the
result to an on-disk tree shaped like the PETSc docs repository
(``manualpages/``, ``manual/``, ``faq.md``, ``tutorials/``,
``archives/petsc-users.jsonl``), and produces retrieval chunks tagged
with the fact ids they assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.corpus.chapters import manual_chapters
from repro.corpus.facts import FactRegistry, default_registry
from repro.corpus.faq import faq_entries
from repro.corpus.mailing_list import mail_threads
from repro.corpus.manpages_ksp import ksp_function_pages, ksp_type_pages
from repro.corpus.manpages_mat import mat_vec_pages
from repro.corpus.manpages_misc import misc_pages
from repro.corpus.manpages_pc import pc_pages
from repro.corpus.model import ManualPageSpec
from repro.corpus.tutorials import tutorial_pages
from repro.documents import Document, MarkdownHeaderTextSplitter, RecursiveCharacterTextSplitter
from repro.errors import CorpusError


@dataclass
class CorpusBundle:
    """The fully rendered knowledge base.

    Attributes
    ----------
    registry:
        Ground-truth facts and falsehoods.
    documents:
        One :class:`Document` per source page (unchunked).
    manual_page_names:
        All manual-page identifiers, for PETSc-specific keyword search.
    """

    registry: FactRegistry
    documents: list[Document] = field(default_factory=list)
    manual_page_names: dict[str, Document] = field(default_factory=dict)

    def by_type(self, doc_type: str) -> list[Document]:
        return [d for d in self.documents if d.metadata.get("doc_type") == doc_type]

    def official(self) -> list[Document]:
        """The official knowledge base: everything except mail archives.

        Mirrors the paper's distinction between the official (reviewed)
        and unofficial knowledge bases; the default RAG database is built
        from the official subset only.
        """
        return [d for d in self.documents if d.metadata.get("doc_type") != "mail_thread"]

    def manual_page(self, name: str) -> Document | None:
        return self.manual_page_names.get(name)


class CorpusBuilder:
    """Renders all corpus specs into documents and chunks."""

    def __init__(self, registry: FactRegistry | None = None) -> None:
        self.registry = registry or default_registry()

    # ------------------------------------------------------------- rendering
    def build(self) -> CorpusBundle:
        bundle = CorpusBundle(registry=self.registry)

        man_pages: list[ManualPageSpec] = []
        man_pages += ksp_type_pages()
        man_pages += ksp_function_pages()
        man_pages += pc_pages()
        man_pages += mat_vec_pages()
        man_pages += misc_pages()

        seen: set[str] = set()
        for spec in man_pages:
            if spec.name in seen:
                raise CorpusError(f"duplicate manual page {spec.name!r}")
            seen.add(spec.name)
            doc = Document(
                text=spec.render(self.registry),
                metadata={
                    "source": f"manualpages/{spec.name}.md",
                    "doc_type": "manual_page",
                    "title": spec.name,
                    "level": spec.level,
                },
            )
            bundle.documents.append(doc)
            bundle.manual_page_names[spec.name] = doc

        for chap in manual_chapters():
            bundle.documents.append(Document(
                text=chap.render(self.registry),
                metadata={
                    "source": f"manual/{chap.slug}.md",
                    "doc_type": "manual_chapter",
                    "title": chap.title,
                },
            ))

        faq_md = ["# PETSc Frequently Asked Questions", ""]
        for entry in faq_entries():
            faq_md.append(entry.render(self.registry))
        bundle.documents.append(Document(
            text="\n".join(faq_md),
            metadata={"source": "faq.md", "doc_type": "faq", "title": "PETSc FAQ"},
        ))

        for tut in tutorial_pages():
            bundle.documents.append(Document(
                text=tut.render(self.registry),
                metadata={
                    "source": f"tutorials/{tut.slug}.md",
                    "doc_type": "tutorial",
                    "title": tut.title,
                },
            ))

        for thread in mail_threads():
            bundle.documents.append(Document(
                text=thread.render(self.registry),
                metadata={
                    "source": f"archives/petsc-users/{thread.slug}.md",
                    "doc_type": "mail_thread",
                    "title": thread.subject,
                },
            ))

        return bundle

    # ------------------------------------------------------------- disk tree
    def write_tree(self, root: str | Path, bundle: CorpusBundle | None = None) -> Path:
        """Write the corpus as a Markdown tree under ``root``."""
        bundle = bundle or self.build()
        rootp = Path(root)
        for doc in bundle.documents:
            path = rootp / str(doc.metadata["source"])
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(doc.text, encoding="utf-8")
        return rootp


def tag_chunks_with_facts(chunks: list[Document], registry: FactRegistry) -> list[Document]:
    """Annotate each chunk with the fact/falsehood ids it asserts.

    Tagging is derived from the text itself (not from the specs), so it
    stays correct regardless of how the splitter cut the source pages.
    """
    tagged: list[Document] = []
    for chunk in chunks:
        fact_ids = sorted(f.fact_id for f in registry.facts_in(chunk.text))
        false_ids = sorted(f.false_id for f in registry.falsehoods_in(chunk.text))
        md = dict(chunk.metadata)
        if fact_ids:
            md["facts"] = ",".join(fact_ids)
        if false_ids:
            md["falsehoods"] = ",".join(false_ids)
        tagged.append(Document(text=chunk.text, metadata=md))
    return tagged


def chunk_corpus(
    bundle: CorpusBundle,
    *,
    include_mail: bool = False,
    chunk_size: int = 800,
    chunk_overlap: int = 120,
) -> list[Document]:
    """Split the corpus into tagged retrieval chunks.

    Manual pages are small and semantically atomic — they stay whole
    (splitting one puts its title chunk and its fact-bearing Notes chunk
    in competition, and the title always wins the similarity contest
    while telling the LLM nothing).  Long documents — users-manual
    chapters, the FAQ, tutorials, mail threads — are first split on
    Markdown headers (chunks carry a ``section`` path) and oversized
    sections then go through the recursive character splitter, the same
    two-stage scheme the paper's LangChain pipeline uses.
    """
    header_splitter = MarkdownHeaderTextSplitter(max_depth=2)
    char_splitter = RecursiveCharacterTextSplitter(
        chunk_size=chunk_size, chunk_overlap=chunk_overlap
    )

    docs = list(bundle.documents) if include_mail else bundle.official()
    whole: list[Document] = []
    to_split: list[Document] = []
    for doc in docs:
        if doc.metadata.get("doc_type") == "manual_page" and len(doc.text) <= 4 * chunk_size:
            whole.append(doc)
        else:
            to_split.append(doc)
    sectioned = header_splitter.split_documents(to_split)
    split_chunks: list[Document] = []
    for sec in sectioned:
        pieces = char_splitter.split_text(sec.text)
        section = str(sec.metadata.get("section", ""))
        for i, piece in enumerate(pieces):
            md = dict(sec.metadata)
            md["chunk"] = f"{md.get('chunk', 0)}.{i}"
            # Continuation chunks keep their section path as a heading —
            # "Choosing a Krylov Method" is retrieval signal every piece
            # of the section deserves.
            if i > 0 and section and not piece.startswith(section):
                piece = f"{section}\n\n{piece}"
            split_chunks.append(Document(text=piece, metadata=md))
    chunks = whole + split_chunks
    return tag_chunks_with_facts(chunks, bundle.registry)


def build_default_corpus() -> CorpusBundle:
    """Build the default synthetic PETSc knowledge base."""
    return CorpusBuilder().build()
