"""Corpus assembly: render specs, write the Markdown tree, produce chunks.

The builder is the single entry point the rest of the library uses:

>>> corpus = build_default_corpus()
>>> len(corpus.documents) > 50
True

It renders every spec against the fact registry, optionally writes the
result to an on-disk tree shaped like the PETSc docs repository
(``manualpages/``, ``manual/``, ``faq.md``, ``tutorials/``,
``archives/petsc-users.jsonl``), and produces retrieval chunks tagged
with the fact ids they assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.corpus.chapters import manual_chapters
from repro.corpus.facts import FactRegistry, default_registry
from repro.corpus.faq import faq_entries
from repro.corpus.mailing_list import mail_threads
from repro.corpus.manpages_ksp import ksp_function_pages, ksp_type_pages
from repro.corpus.manpages_mat import mat_vec_pages
from repro.corpus.manpages_misc import misc_pages
from repro.corpus.manpages_pc import pc_pages
from repro.corpus.model import ManualPageSpec
from repro.corpus.tutorials import tutorial_pages
from repro.documents import Document, MarkdownHeaderTextSplitter, RecursiveCharacterTextSplitter
from repro.errors import CorpusError


@dataclass
class CorpusBundle:
    """The fully rendered knowledge base.

    Attributes
    ----------
    registry:
        Ground-truth facts and falsehoods.
    documents:
        One :class:`Document` per source page (unchunked).
    manual_page_names:
        All manual-page identifiers, for PETSc-specific keyword search.
    """

    registry: FactRegistry
    documents: list[Document] = field(default_factory=list)
    manual_page_names: dict[str, Document] = field(default_factory=dict)

    def by_type(self, doc_type: str) -> list[Document]:
        return [d for d in self.documents if d.metadata.get("doc_type") == doc_type]

    def official(self) -> list[Document]:
        """The official knowledge base: everything except mail archives.

        Mirrors the paper's distinction between the official (reviewed)
        and unofficial knowledge bases; the default RAG database is built
        from the official subset only.
        """
        return [d for d in self.documents if d.metadata.get("doc_type") != "mail_thread"]

    def manual_page(self, name: str) -> Document | None:
        return self.manual_page_names.get(name)


class CorpusBuilder:
    """Renders all corpus specs into documents and chunks."""

    def __init__(self, registry: FactRegistry | None = None) -> None:
        self.registry = registry or default_registry()

    # ------------------------------------------------------------- rendering
    def build(self) -> CorpusBundle:
        bundle = CorpusBundle(registry=self.registry)

        man_pages: list[ManualPageSpec] = []
        man_pages += ksp_type_pages()
        man_pages += ksp_function_pages()
        man_pages += pc_pages()
        man_pages += mat_vec_pages()
        man_pages += misc_pages()

        seen: set[str] = set()
        for spec in man_pages:
            if spec.name in seen:
                raise CorpusError(f"duplicate manual page {spec.name!r}")
            seen.add(spec.name)
            doc = Document(
                text=spec.render(self.registry),
                metadata={
                    "source": f"manualpages/{spec.name}.md",
                    "doc_type": "manual_page",
                    "title": spec.name,
                    "level": spec.level,
                },
            )
            bundle.documents.append(doc)
            bundle.manual_page_names[spec.name] = doc

        for chap in manual_chapters():
            bundle.documents.append(Document(
                text=chap.render(self.registry),
                metadata={
                    "source": f"manual/{chap.slug}.md",
                    "doc_type": "manual_chapter",
                    "title": chap.title,
                },
            ))

        faq_md = ["# PETSc Frequently Asked Questions", ""]
        for entry in faq_entries():
            faq_md.append(entry.render(self.registry))
        bundle.documents.append(Document(
            text="\n".join(faq_md),
            metadata={"source": "faq.md", "doc_type": "faq", "title": "PETSc FAQ"},
        ))

        for tut in tutorial_pages():
            bundle.documents.append(Document(
                text=tut.render(self.registry),
                metadata={
                    "source": f"tutorials/{tut.slug}.md",
                    "doc_type": "tutorial",
                    "title": tut.title,
                },
            ))

        for thread in mail_threads():
            bundle.documents.append(Document(
                text=thread.render(self.registry),
                metadata={
                    "source": f"archives/petsc-users/{thread.slug}.md",
                    "doc_type": "mail_thread",
                    "title": thread.subject,
                },
            ))

        return bundle

    # ------------------------------------------------------------- disk tree
    def write_tree(self, root: str | Path, bundle: CorpusBundle | None = None) -> Path:
        """Write the corpus as a Markdown tree under ``root``."""
        bundle = bundle or self.build()
        rootp = Path(root)
        for doc in bundle.documents:
            path = rootp / str(doc.metadata["source"])
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(doc.text, encoding="utf-8")
        return rootp


_TREE_DOC_TYPES = (
    ("manualpages/", "manual_page"),
    ("manual/", "manual_chapter"),
    ("tutorials/", "tutorial"),
    ("archives/", "mail_thread"),
)


def _doc_type_for_path(rel: str) -> str:
    if rel == "faq.md":
        return "faq"
    for prefix, doc_type in _TREE_DOC_TYPES:
        if rel.startswith(prefix):
            return doc_type
    return "manual_chapter"


def overlay_tree(bundle: CorpusBundle, root: str | Path) -> CorpusBundle:
    """A revised bundle: on-disk edits overlaid onto ``bundle``.

    The inverse direction of :meth:`CorpusBuilder.write_tree` for the
    ingestion lifecycle: every ``*.md`` file under ``root`` whose
    relative path matches a document's ``source`` replaces that
    document's text *in place* (same corpus position, same metadata), so
    an unedited tree reproduces the bundle's corpus digest byte for byte
    and ``repro ingest`` detects it as a no-op.  Files with no matching
    source are appended as new documents, sorted by path, with their
    ``doc_type`` inferred from the tree layout.
    """
    rootp = Path(root)
    if not rootp.is_dir():
        raise CorpusError(f"corpus tree {rootp} is not a directory")
    on_disk = {
        str(p.relative_to(rootp)): p.read_text(encoding="utf-8")
        for p in sorted(rootp.rglob("*.md"))
    }
    revised = CorpusBundle(registry=bundle.registry)
    for doc in bundle.documents:
        source = str(doc.metadata.get("source", ""))
        text = on_disk.pop(source, None)
        new_doc = doc if text is None or text == doc.text else Document(
            text=text, metadata=dict(doc.metadata)
        )
        revised.documents.append(new_doc)
        if new_doc.metadata.get("doc_type") == "manual_page":
            revised.manual_page_names[str(new_doc.metadata["title"])] = new_doc
    for rel in sorted(on_disk):
        revised.documents.append(Document(
            text=on_disk[rel],
            metadata={
                "source": rel,
                "doc_type": _doc_type_for_path(rel),
                "title": Path(rel).stem,
            },
        ))
    return revised


def tag_chunks_with_facts(chunks: list[Document], registry: FactRegistry) -> list[Document]:
    """Annotate each chunk with the fact/falsehood ids it asserts.

    Tagging is derived from the text itself (not from the specs), so it
    stays correct regardless of how the splitter cut the source pages.
    """
    tagged: list[Document] = []
    for chunk in chunks:
        fact_ids = sorted(f.fact_id for f in registry.facts_in(chunk.text))
        false_ids = sorted(f.false_id for f in registry.falsehoods_in(chunk.text))
        md = dict(chunk.metadata)
        if fact_ids:
            md["facts"] = ",".join(fact_ids)
        if false_ids:
            md["falsehoods"] = ",".join(false_ids)
        tagged.append(Document(text=chunk.text, metadata=md))
    return tagged


def _chunk_source(
    doc: Document,
    header_splitter: MarkdownHeaderTextSplitter,
    char_splitter: RecursiveCharacterTextSplitter,
    chunk_size: int,
) -> tuple[list[Document], list[Document]]:
    """One source document's chunks, partitioned into (whole, split).

    Chunking is self-contained per source — no splitter state crosses
    document boundaries — which is what lets the ingest delta path
    re-chunk only the sources whose text changed
    (:func:`chunk_corpus_delta`) and still match a full
    :func:`chunk_corpus` byte-for-byte.
    """
    if doc.metadata.get("doc_type") == "manual_page" and len(doc.text) <= 4 * chunk_size:
        return [doc], []
    split_chunks: list[Document] = []
    for sec in header_splitter.split_documents([doc]):
        pieces = char_splitter.split_text(sec.text)
        section = str(sec.metadata.get("section", ""))
        for i, piece in enumerate(pieces):
            md = dict(sec.metadata)
            md["chunk"] = f"{md.get('chunk', 0)}.{i}"
            # Continuation chunks keep their section path as a heading —
            # "Choosing a Krylov Method" is retrieval signal every piece
            # of the section deserves.
            if i > 0 and section and not piece.startswith(section):
                piece = f"{section}\n\n{piece}"
            split_chunks.append(Document(text=piece, metadata=md))
    return [], split_chunks


def _chunking_docs(bundle: CorpusBundle, include_mail: bool) -> list[Document]:
    return list(bundle.documents) if include_mail else bundle.official()


def chunk_corpus(
    bundle: CorpusBundle,
    *,
    include_mail: bool = False,
    chunk_size: int = 800,
    chunk_overlap: int = 120,
) -> list[Document]:
    """Split the corpus into tagged retrieval chunks.

    Manual pages are small and semantically atomic — they stay whole
    (splitting one puts its title chunk and its fact-bearing Notes chunk
    in competition, and the title always wins the similarity contest
    while telling the LLM nothing).  Long documents — users-manual
    chapters, the FAQ, tutorials, mail threads — are first split on
    Markdown headers (chunks carry a ``section`` path) and oversized
    sections then go through the recursive character splitter, the same
    two-stage scheme the paper's LangChain pipeline uses.

    Output order is all whole pages in corpus order, then all split
    chunks in corpus order — the order every artifact digest is pinned
    to.
    """
    header_splitter = MarkdownHeaderTextSplitter(max_depth=2)
    char_splitter = RecursiveCharacterTextSplitter(
        chunk_size=chunk_size, chunk_overlap=chunk_overlap
    )
    whole: list[Document] = []
    split_chunks: list[Document] = []
    for doc in _chunking_docs(bundle, include_mail):
        w, s = _chunk_source(doc, header_splitter, char_splitter, chunk_size)
        whole.extend(w)
        split_chunks.extend(s)
    return tag_chunks_with_facts(whole + split_chunks, bundle.registry)


def chunk_corpus_delta(
    bundle: CorpusBundle,
    parent_chunks: list[Document],
    parent_source_digests: dict[str, str],
    *,
    include_mail: bool = False,
    chunk_size: int = 800,
    chunk_overlap: int = 120,
) -> tuple[list[Document], list[str]]:
    """Chunk the corpus, re-splitting only the sources whose text changed.

    ``parent_source_digests`` maps each source path to the sha256 of the
    text it had when ``parent_chunks`` were produced (see
    :func:`repro.ingest.identity.source_digest` /
    :func:`corpus_source_digests`).  Sources whose digest is unchanged
    reuse their parent chunks verbatim — tags included — so the result
    is byte-identical to a fresh :func:`chunk_corpus` over the same
    bundle while paying splitter + tagger cost only for the dirty
    sources.

    Returns ``(chunks, changed_sources)`` where ``changed_sources``
    lists the source paths that were re-chunked (added or modified) or
    dropped.
    """
    from repro.ingest.identity import source_digest as _source_digest

    header_splitter = MarkdownHeaderTextSplitter(max_depth=2)
    char_splitter = RecursiveCharacterTextSplitter(
        chunk_size=chunk_size, chunk_overlap=chunk_overlap
    )
    # Parent chunks grouped by source, preserving the whole/split
    # partition (whole pages are exactly the chunks with no "chunk"
    # metadata — split chunks always carry a chunk index).
    parent_whole: dict[str, list[Document]] = {}
    parent_split: dict[str, list[Document]] = {}
    for chunk in parent_chunks:
        source = str(chunk.metadata.get("source", ""))
        bucket = parent_split if "chunk" in chunk.metadata else parent_whole
        bucket.setdefault(source, []).append(chunk)

    changed: list[str] = []
    seen_sources: set[str] = set()
    whole: list[Document] = []
    split_chunks: list[Document] = []
    for doc in _chunking_docs(bundle, include_mail):
        source = str(doc.metadata.get("source", ""))
        seen_sources.add(source)
        if (
            source in parent_source_digests
            and parent_source_digests[source] == _source_digest(doc.text)
        ):
            whole.extend(parent_whole.get(source, ()))
            split_chunks.extend(parent_split.get(source, ()))
            continue
        changed.append(source)
        w, s = _chunk_source(doc, header_splitter, char_splitter, chunk_size)
        whole.extend(tag_chunks_with_facts(w, bundle.registry))
        split_chunks.extend(tag_chunks_with_facts(s, bundle.registry))
    changed.extend(sorted(set(parent_source_digests) - seen_sources))
    return whole + split_chunks, changed


def corpus_source_digests(
    bundle: CorpusBundle, *, include_mail: bool = False
) -> dict[str, str]:
    """Per-source text digests for the documents chunking would consume."""
    from repro.ingest.identity import source_digest as _source_digest

    return {
        str(doc.metadata.get("source", "")): _source_digest(doc.text)
        for doc in _chunking_docs(bundle, include_mail)
    }


def build_default_corpus() -> CorpusBundle:
    """Build the default synthetic PETSc knowledge base."""
    return CorpusBuilder().build()
