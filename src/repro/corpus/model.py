"""Structured records for synthetic corpus content and Markdown rendering.

Corpus content is authored as structured specs rather than raw Markdown so
that (a) every page has the same shape as a real PETSc manual page
(Synopsis / Description / Options / Notes / See Also), and (b) ground-truth
fact statements are spliced in by reference — a spec writes ``{fact:id}``
and the builder resolves it against the :class:`~repro.corpus.facts.FactRegistry`,
guaranteeing that the canonical sentence the grader looks for actually
appears in the corpus text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.corpus.facts import FactRegistry
from repro.errors import CorpusError

_PLACEHOLDER_RE = re.compile(r"\{(fact|false):([a-z0-9_.]+)\}")


def resolve_placeholders(text: str, registry: FactRegistry) -> str:
    """Replace ``{fact:id}`` / ``{false:id}`` with the canonical statement."""

    def _sub(m: re.Match[str]) -> str:
        kind, ident = m.group(1), m.group(2)
        if kind == "fact":
            return registry.fact(ident).statement
        if ident not in registry.falsehoods and f"false.{ident}" in registry.falsehoods:
            ident = f"false.{ident}"
        return registry.falsehood(ident).statement

    return _PLACEHOLDER_RE.sub(_sub, text)


@dataclass
class ManualPageSpec:
    """One PETSc-style manual page.

    ``description``, ``notes`` paragraphs and option descriptions may embed
    ``{fact:id}`` placeholders.
    """

    name: str
    summary: str
    synopsis: str = ""
    level: str = "beginner"
    description: list[str] = field(default_factory=list)
    options: list[tuple[str, str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    see_also: list[str] = field(default_factory=list)
    kind: str = "manual_page"

    def render(self, registry: FactRegistry) -> str:
        if not self.name:
            raise CorpusError("manual page needs a name")
        lines: list[str] = [f"# {self.name}", "", self.summary.strip(), ""]
        if self.synopsis:
            lines += ["## Synopsis", "", "```c", self.synopsis.strip(), "```", ""]
        if self.description:
            lines += ["## Description", ""]
            for para in self.description:
                lines += [resolve_placeholders(para.strip(), registry), ""]
        if self.options:
            lines += ["## Options Database Keys", ""]
            for key, desc in self.options:
                lines.append(f"- `{key}` — {resolve_placeholders(desc, registry)}")
            lines.append("")
        if self.notes:
            lines += ["## Notes", ""]
            for para in self.notes:
                lines += [resolve_placeholders(para.strip(), registry), ""]
        lines += [f"## Level", "", self.level, ""]
        if self.see_also:
            lines += ["## See Also", "", ", ".join(f"`{s}`" for s in self.see_also), ""]
        return "\n".join(lines)


@dataclass
class ChapterSpec:
    """A users-manual chapter: a title plus Markdown sections.

    ``sections`` maps header path strings (``"## Convergence Tests"``) to
    body paragraphs; bodies may embed fact placeholders.
    """

    slug: str
    title: str
    intro: list[str] = field(default_factory=list)
    sections: list[tuple[str, list[str]]] = field(default_factory=list)
    kind: str = "manual_chapter"

    def render(self, registry: FactRegistry) -> str:
        lines: list[str] = [f"# {self.title}", ""]
        for para in self.intro:
            lines += [resolve_placeholders(para.strip(), registry), ""]
        for header, paras in self.sections:
            lines += [header.strip(), ""]
            for para in paras:
                lines += [resolve_placeholders(para.strip(), registry), ""]
        return "\n".join(lines)


@dataclass
class FaqEntry:
    """One FAQ question/answer; the answer may embed fact placeholders."""

    slug: str
    question: str
    answer: list[str]

    def render(self, registry: FactRegistry) -> str:
        lines = [f"## {self.question}", ""]
        for para in self.answer:
            lines += [resolve_placeholders(para.strip(), registry), ""]
        return "\n".join(lines)


@dataclass
class TutorialSpec:
    """A tutorial page with prose and code blocks."""

    slug: str
    title: str
    body: list[str] = field(default_factory=list)
    kind: str = "tutorial"

    def render(self, registry: FactRegistry) -> str:
        lines = [f"# {self.title}", ""]
        for para in self.body:
            lines += [resolve_placeholders(para.strip(), registry), ""]
        return "\n".join(lines)


@dataclass
class MailMessageSpec:
    """One message in a synthetic mailing-list thread."""

    sender: str
    body: list[str]

    def render(self, registry: FactRegistry) -> str:
        return "\n\n".join(resolve_placeholders(p.strip(), registry) for p in self.body)


@dataclass
class MailThreadSpec:
    """A synthetic petsc-users thread (subject + message sequence).

    Threads are retrieval *noise* by design: they are topically close to
    benchmark questions but informal, sometimes containing registered
    falsehoods (a user's misconception that a developer later corrects).
    """

    slug: str
    subject: str
    messages: list[MailMessageSpec] = field(default_factory=list)
    kind: str = "mail_thread"

    def render(self, registry: FactRegistry) -> str:
        lines = [f"# [petsc-users] {self.subject}", ""]
        for msg in self.messages:
            lines += [f"**From: {msg.sender}**", "", msg.render(registry), "", "---", ""]
        return "\n".join(lines)
