"""Synthetic petsc-users mailing-list archive.

The paper's RAG databases are built from documentation only (the authors
explicitly did not index the mailing-list archives yet), so the builder
keeps these threads out of the default RAG database.  They exist for two
purposes:

1. The Discord/email workflow simulation (:mod:`repro.bots`) needs a
   realistic stream of user questions.
2. An ablation benchmark indexes them *with* the documentation to
   measure what raw, unvetted archive content does to answer quality —
   several threads contain registered falsehoods (a user's misconception,
   corrected later in the thread), which is precisely the noise the paper
   warns about.
"""

from __future__ import annotations

from repro.corpus.model import MailMessageSpec, MailThreadSpec


def mail_threads() -> list[MailThreadSpec]:
    threads: list[MailThreadSpec] = []

    threads.append(MailThreadSpec(
        slug="gmres-memory",
        subject="GMRES runs out of memory on large problem",
        messages=[
            MailMessageSpec(
                sender="user.aldridge@university.edu",
                body=[
                    "Hi all, we are solving a convection-diffusion system with about 40M "
                    "unknowns and the solver gets killed by the OOM killer after a few "
                    "hundred iterations. We use the defaults. Is PETSc leaking memory?",
                    "I thought Krylov methods only need a handful of vectors. "
                    "{false:gmres_constant_memory}",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "No leak — that is GMRES semantics. {fact:gmres.memory_grows}",
                    "{fact:gmres.restart_option} Or switch to BiCGStab which uses a few "
                    "vectors total. {fact:bcgs.nonsymmetric}",
                ],
            ),
            MailMessageSpec(
                sender="user.aldridge@university.edu",
                body=["Restarting at 30 fixed it, thanks! We'll also compare -ksp_type bcgs."],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="cg-wrong-matrix",
        subject="CG diverges on my system",
        messages=[
            MailMessageSpec(
                sender="grad.student@lab.org",
                body=[
                    "I'm using -ksp_type cg on the matrix from an upwinded finite volume "
                    "discretization and it diverges after 12 iterations. "
                    "{false:cg_nonsymmetric} — at least that's what a colleague told me, "
                    "so I'm confused why it fails.",
                ],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=[
                    "Your colleague is mistaken. {fact:cg.spd} Upwinding makes the operator "
                    "nonsymmetric, so CG is not applicable. {fact:cg.indefinite_fail}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="rectangular-confusion",
        subject="Solving rectangular system — convert to square first?",
        messages=[
            MailMessageSpec(
                sender="postdoc.ming@institute.edu",
                body=[
                    "We have an overdetermined system from data assimilation (more equations "
                    "than unknowns). A forum post said: {false:lsqr_square_only} Is forming "
                    "A^T A myself really the recommended path?",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "Please do not form the normal equations yourself — that squares the "
                    "condition number. {fact:ksplsqr.rectangular} {fact:ksplsqr.normal_equiv}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="slow-assembly-info",
        subject="Matrix assembly takes 30 minutes",
        messages=[
            MailMessageSpec(
                sender="engineer.patel@company.com",
                body=[
                    "Assembling our 8M x 8M sparse matrix takes half an hour while the solve "
                    "is two minutes. Someone suggested a diagnostic flag but I can't find it: "
                    "{false:info_imaginary_option}",
                ],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=[
                    "That option does not exist. {fact:mat.info_option}",
                    "The underlying problem is certainly preallocation. {fact:mat.preallocation}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="tolerance-default",
        subject="What is the default rtol?",
        messages=[
            MailMessageSpec(
                sender="newuser.k@school.edu",
                body=[
                    "Quick question — the manual I found via a search engine says "
                    "{false:rtol_default} but my runs behave like it is much looser.",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "That page must be third-party and wrong. {fact:conv.defaults} "
                    "{fact:conv.settolerances}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="monitor-option-name",
        subject="Option to print residuals?",
        messages=[
            MailMessageSpec(
                sender="user.svoboda@tech.cz",
                body=[
                    "A blog post said {false:monitor_option} but PETSc errors with unknown "
                    "option. What is the right flag?",
                ],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=["{fact:conv.monitor}"],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="fgmres-side",
        subject="FGMRES ignores -ksp_pc_side left",
        messages=[
            MailMessageSpec(
                sender="user.rahimi@hpc.center",
                body=[
                    "Setting -ksp_pc_side left with fgmres produces an error. I expected "
                    "{false:fgmres_left}",
                ],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=["{fact:fgmres.right_only} Use plain GMRES if you need left preconditioning."],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="pipecg-accuracy",
        subject="pipecg gives slightly different answers",
        messages=[
            MailMessageSpec(
                sender="user.liu@climate.gov",
                body=[
                    "We switched to -ksp_type pipecg for scaling and see small differences in "
                    "the converged solution versus cg. A colleague claimed "
                    "{false:pipecg_always_faster}",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "Not identical. {fact:pipelined.stability} Also the benefit requires "
                    "non-blocking collectives: {fact:pipelined.async}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="asm-vs-bjacobi",
        subject="Is ASM the same as block Jacobi?",
        messages=[
            MailMessageSpec(
                sender="student.wb@uni.edu",
                body=["Our lecture notes say {false:asm_no_overlap} Is that right?"],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=[
                    "Not quite. {fact:pcasm.overlap} With zero overlap it coincides with "
                    "block Jacobi; the overlap is what buys faster convergence.",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="neumann-singular",
        subject="Poisson with pure Neumann BCs stagnates",
        messages=[
            MailMessageSpec(
                sender="user.okafor@geo.edu",
                body=[
                    "Our pressure Poisson solve with all-Neumann boundaries stagnates at "
                    "rtol 1e-3. Online advice: {false:nullspace_rhs}",
                ],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=[
                    "PETSc has a first-class interface for exactly this. {fact:nullspace.set} "
                    "{fact:nullspace.constant} Also make sure the right-hand side is "
                    "consistent (orthogonal to the null space).",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="preonly-ilu",
        subject="preonly with ilu gives garbage",
        messages=[
            MailMessageSpec(
                sender="user.tanaka@auto.co.jp",
                body=[
                    "With -ksp_type preonly -pc_type ilu the 'solution' has residual 1e-1. "
                    "A tutorial video said {false:preonly_iterates}",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "The video is wrong. {fact:preonly.check} ILU is only approximate, so "
                    "pair it with an actual Krylov method, or use -pc_type lu for a direct "
                    "solve. {fact:preonly.direct}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="direct-solve-option",
        subject="single option for a direct solve?",
        messages=[
            MailMessageSpec(
                sender="newuser.q@startup.io",
                body=["Is there something like {false:direct_option}"],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=["No such option. {fact:preonly.direct} In parallel: {fact:pclu.parallel}"],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="profile-option-name",
        subject="how to profile KSPSolve?",
        messages=[
            MailMessageSpec(
                sender="user.nowak@aero.pl",
                body=["I tried {false:logview_name} — unknown option. What's the real one?"],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=["{fact:perf.logview} {fact:perf.stages}"],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="chebyshev-setup",
        subject="Chebyshev diverges immediately",
        messages=[
            MailMessageSpec(
                sender="user.ferrari@cfd.it",
                body=[
                    "Switching the multigrid smoother to chebyshev makes the solve diverge. "
                    "Documentation found through a search engine claimed "
                    "{false:chebyshev_no_bounds}",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "It needs spectral bounds. {fact:chebyshev.bounds} The automatic "
                    "estimation (-ksp_chebyshev_esteig) is the usual fix.",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="mumps-missing",
        subject="parallel LU fails: external package missing",
        messages=[
            MailMessageSpec(
                sender="user.garcia@bio.mx",
                body=[
                    "-pc_type lu on 16 ranks errors out asking for an external package. "
                    "I thought {false:mumps_builtin}",
                ],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=[
                    "{fact:pclu.parallel} Configure PETSc with --download-mumps "
                    "--download-scalapack and select it with -pc_factor_mat_solver_type mumps.",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="initial-guess-ignored",
        subject="KSP ignores my initial guess",
        messages=[
            MailMessageSpec(
                sender="user.berg@met.no",
                body=[
                    "We warm-start each time step with the previous solution but iteration "
                    "counts do not drop at all.",
                ],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=["Classic. {fact:conv.initial_guess}"],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="ilu-zero-pivot",
        subject="PC failed due to zero pivot",
        messages=[
            MailMessageSpec(
                sender="user.dubois@nuclear.fr",
                body=[
                    "KSP stops with KSP_DIVERGED_PC_FAILED and a message about a zero pivot "
                    "in the ILU factorization. The matrix comes from a mixed discretization.",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "{fact:pcilu.zeropivot} For saddle-point structure also consider "
                    "-pc_type fieldsplit. {fact:pcfieldsplit.blocks}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="transpose-solve",
        subject="Solving A^T x = b with the same KSP?",
        messages=[
            MailMessageSpec(
                sender="user.adjoint@optimization.edu",
                body=[
                    "For the adjoint equation in our optimization loop we need the transpose "
                    "system. Do we have to assemble the transpose explicitly?",
                ],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=["No. {fact:ksp.solvetranspose}"],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="stokes-fieldsplit",
        subject="Preconditioning Stokes saddle point system",
        messages=[
            MailMessageSpec(
                sender="user.oceanmodel@whoi.edu",
                body=[
                    "ILU on our Stokes system fails (zero diagonal block). What's the "
                    "recommended preconditioner for incompressible flow?",
                ],
            ),
            MailMessageSpec(
                sender="developer.d@petsc.dev",
                body=[
                    "{fact:pcfieldsplit.blocks} Use "
                    "-pc_fieldsplit_detect_saddle_point with a Schur complement, and a mass "
                    "matrix preconditioner for the pressure block.",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="gamg-elasticity",
        subject="GAMG slow on elasticity",
        messages=[
            MailMessageSpec(
                sender="user.structure@civil.edu",
                body=[
                    "GAMG needs 200+ iterations on our linear elasticity model, while on a "
                    "scalar Poisson problem it converges in 15.",
                ],
            ),
            MailMessageSpec(
                sender="developer.b@petsc.dev",
                body=[
                    "Provide the rigid body modes as the near-null space with "
                    "MatSetNearNullSpace(); without them smoothed aggregation cannot build a "
                    "good coarse space for vector problems. {fact:pcgamg.amg}",
                ],
            ),
        ],
    ))

    threads.append(MailThreadSpec(
        slug="bicgstab-erratic",
        subject="BiCGStab residual jumps around",
        messages=[
            MailMessageSpec(
                sender="user.plasma@fusion.org",
                body=[
                    "The -ksp_monitor output for bcgs oscillates wildly before converging. "
                    "Is something wrong?",
                ],
            ),
            MailMessageSpec(
                sender="developer.c@petsc.dev",
                body=[
                    "Normal for BiCGStab. {fact:bcgsl.ell} {fact:tfqmr.smooth} If you want a "
                    "monotone residual, GMRES minimizes it at each step. {fact:gmres.nonsymmetric}",
                ],
            ),
        ],
    ))

    return threads
