"""Tutorial pages for the synthetic PETSc knowledge base."""

from __future__ import annotations

from repro.corpus.model import TutorialSpec


def tutorial_pages() -> list[TutorialSpec]:
    return [
        TutorialSpec(
            slug="ex1-first-solve",
            title="Tutorial: Solving Your First Linear System",
            body=[
                "This tutorial solves a one-dimensional Laplacian with the default solver. "
                "{fact:ksp.solve_sequence}",
                "```c\n"
                "#include <petscksp.h>\n"
                "int main(int argc, char **argv) {\n"
                "  Mat A; Vec x, b; KSP ksp;\n"
                "  PetscInitialize(&argc, &argv, NULL, NULL);\n"
                "  /* ... assemble tridiagonal A and right-hand side b ... */\n"
                "  KSPCreate(PETSC_COMM_WORLD, &ksp);\n"
                "  KSPSetOperators(ksp, A, A);\n"
                "  KSPSetFromOptions(ksp);\n"
                "  KSPSolve(ksp, b, x);\n"
                "  KSPDestroy(&ksp);\n"
                "  PetscFinalize();\n"
                "  return 0;\n"
                "}\n"
                "```",
                "Run with -ksp_monitor to watch convergence and -ksp_view to inspect the "
                "configuration. {fact:conv.monitor}",
                "Experiment: try -ksp_type cg -pc_type icc for this symmetric positive "
                "definite system. {fact:cg.spd}",
            ],
        ),
        TutorialSpec(
            slug="ex2-poisson",
            title="Tutorial: A 2D Poisson Problem in Parallel",
            body=[
                "We discretize the Poisson equation with a five-point stencil and solve in "
                "parallel. The default parallel preconditioner applies. {fact:pc.default}",
                "Preallocate five nonzeros per row for the interior stencil. "
                "{fact:mat.preallocation}",
                "For larger meshes, algebraic multigrid scales far better than one-level "
                "methods: -pc_type gamg. {fact:pcgamg.amg}",
                "Measure performance with -log_view. {fact:perf.logview}",
            ],
        ),
        TutorialSpec(
            slug="ex3-convergence",
            title="Tutorial: Controlling and Monitoring Convergence",
            body=[
                "{fact:conv.settolerances}",
                "{fact:conv.monitor}",
                "{fact:conv.reason}",
                "A custom stopping criterion can replace the default test. "
                "{fact:conv.custom_test}",
            ],
        ),
        TutorialSpec(
            slug="ex4-least-squares",
            title="Tutorial: Least Squares Fitting with KSPLSQR",
            body=[
                "Fitting a model with more observations than parameters yields a rectangular "
                "system. {fact:ksplsqr.rectangular}",
                "```c\n"
                "KSPSetType(ksp, KSPLSQR);\n"
                "KSPSetOperators(ksp, A, A);  /* A is m x n with m > n */\n"
                "KSPSolve(ksp, b, x);\n"
                "```",
                "{fact:ksplsqr.normal_equiv}",
                "{fact:ksplsqr.pc_normal}",
            ],
        ),
        TutorialSpec(
            slug="ex5-matrix-free",
            title="Tutorial: Matrix-Free Krylov Solves",
            body=[
                "{fact:mf.shell}",
                "```c\n"
                "MatCreateShell(PETSC_COMM_WORLD, n, n, N, N, ctx, &A);\n"
                "MatShellSetOperation(A, MATOP_MULT, (void (*)(void))MyMult);\n"
                "KSPSetOperators(ksp, A, A);\n"
                "```",
                "Choose a Krylov method that does not need the transpose. "
                "{fact:bcgs.no_transpose}",
                "{fact:mf.pc_restriction}",
            ],
        ),
        TutorialSpec(
            slug="ex6-scaling",
            title="Tutorial: Strong Scaling a Krylov Solver",
            body=[
                "At scale, the dominant cost shifts from local flops to global reductions. "
                "{fact:perf.reductions_scaling}",
                "Try the pipelined variants: -ksp_type pipecg. {fact:pipecg.overlap}",
                "{fact:pipelined.async}",
                "Beware: {fact:pipelined.stability}",
            ],
        ),
    ]
