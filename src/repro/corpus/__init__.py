"""Synthetic PETSc knowledge base.

The paper's RAG databases are built from the real PETSc documentation
(Markdown processed by Sphinx).  This package provides a faithful,
self-contained substitute: manual pages, users-manual chapters, FAQ
entries, tutorials, and a synthetic ``petsc-users`` mailing-list archive,
all generated deterministically and writable to an on-disk Markdown tree.

Ground truth runs through :mod:`repro.corpus.facts`: every substantive
sentence in the corpus that the evaluation relies on is a registered
:class:`~repro.corpus.facts.Fact`, and misleading statements planted in
mail threads are registered :class:`~repro.corpus.facts.Falsehood`
objects.  The simulated LLM and the mechanical blind grader both resolve
text against this registry, which is what makes the paper's rubric
(Table I) mechanically checkable.
"""

from repro.corpus.facts import (
    Fact,
    Falsehood,
    FactRegistry,
    default_registry,
)
from repro.corpus.builder import CorpusBuilder, build_default_corpus
from repro.corpus.model import FaqEntry, MailMessageSpec, MailThreadSpec, ManualPageSpec

__all__ = [
    "Fact",
    "Falsehood",
    "FactRegistry",
    "default_registry",
    "CorpusBuilder",
    "build_default_corpus",
    "FaqEntry",
    "MailMessageSpec",
    "MailThreadSpec",
    "ManualPageSpec",
]
