"""Manual pages for preconditioner (PC) types and PC interface functions."""

from __future__ import annotations

from repro.corpus.model import ManualPageSpec


def pc_pages() -> list[ManualPageSpec]:
    pages: list[ManualPageSpec] = []

    pages.append(ManualPageSpec(
        name="PCSetType",
        summary="Builds the preconditioner for a particular implementation.",
        synopsis='#include "petscpc.h"\nPetscErrorCode PCSetType(PC pc, PCType type);',
        level="beginner",
        description=["{fact:pc.settype}", "{fact:pc.concept}"],
        options=[("-pc_type <type>", "jacobi, bjacobi, sor, ilu, icc, lu, cholesky, asm, gamg, mg, fieldsplit, none, shell, ...")],
        see_also=["PCCreate", "KSPGetPC", "PCJACOBI", "PCILU", "PCGAMG"],
    ))

    pages.append(ManualPageSpec(
        name="PCJACOBI",
        summary="Jacobi (diagonal scaling) preconditioning.",
        level="beginner",
        description=["{fact:pcjacobi.diag}"],
        options=[
            ("-pc_jacobi_type <diagonal,rowmax,rowsum>", "how the diagonal is formed"),
            ("-pc_jacobi_abs", "use the absolute values of the diagonal"),
        ],
        notes=[
            "Jacobi preserves matrix symmetry, so it is safe with KSPCG on a symmetric "
            "positive definite system.",
        ],
        see_also=["PCBJACOBI", "PCSOR", "PCNONE"],
    ))

    pages.append(ManualPageSpec(
        name="PCBJACOBI",
        summary="Block Jacobi preconditioning, each block solved independently.",
        level="beginner",
        description=["{fact:pcbjacobi.blocks}"],
        options=[
            ("-pc_bjacobi_blocks <n>", "total number of blocks"),
            ("-sub_ksp_type <type>", "KSP used on each block (default preonly)"),
            ("-sub_pc_type <type>", "PC used on each block (default ilu)"),
        ],
        notes=[
            "{fact:pc.default}",
            "Configure the inner solver with the -sub_ prefix, for example "
            "-sub_pc_type lu for exact subdomain solves.",
        ],
        see_also=["PCASM", "PCJACOBI", "PCILU"],
    ))

    pages.append(ManualPageSpec(
        name="PCASM",
        summary="Restricted additive Schwarz method with overlapping subdomains.",
        level="intermediate",
        description=["{fact:pcasm.overlap}"],
        options=[
            ("-pc_asm_overlap <n>", "amount of subdomain overlap (default 1)"),
            ("-pc_asm_type <basic,restrict,interpolate,none>", "Schwarz variant (default restrict)"),
        ],
        notes=[
            "With zero overlap PCASM reduces to block Jacobi; increasing the overlap usually "
            "reduces iteration counts at higher communication and memory cost.",
        ],
        see_also=["PCBJACOBI", "PCGASM", "PCASMSetOverlap"],
    ))

    pages.append(ManualPageSpec(
        name="PCASMSetOverlap",
        summary="Sets the overlap between subdomains for the additive Schwarz preconditioner.",
        synopsis='#include "petscpc.h"\nPetscErrorCode PCASMSetOverlap(PC pc, PetscInt ovl);',
        level="intermediate",
        description=["{fact:pcasm.overlap}"],
        see_also=["PCASM"],
    ))

    pages.append(ManualPageSpec(
        name="PCILU",
        summary="Incomplete LU factorization preconditioning.",
        level="beginner",
        description=[
            "ILU computes an approximate factorization keeping limited fill, giving a strong "
            "general-purpose single-process preconditioner for nonsymmetric systems.",
        ],
        options=[
            ("-pc_factor_levels <k>", "number of levels of fill (default 0)"),
            ("-pc_factor_shift_type <none,nonzero,positive_definite,inblocks>", "diagonal shift strategy on zero pivot"),
            ("-pc_factor_reuse_ordering", "reuse the previous ordering on refactorization"),
        ],
        notes=[
            "{fact:pcilu.zeropivot}",
            "{fact:pcilu.levels}",
            "ILU does not preserve symmetry; for symmetric positive definite systems use "
            "PCICC, the incomplete Cholesky variant.",
        ],
        see_also=["PCICC", "PCLU", "PCBJACOBI"],
    ))

    pages.append(ManualPageSpec(
        name="PCICC",
        summary="Incomplete Cholesky factorization preconditioning for symmetric matrices.",
        level="beginner",
        description=[
            "PCICC is the symmetric counterpart of PCILU, preserving symmetry so that it can "
            "be used with KSPCG and KSPMINRES.",
        ],
        options=[("-pc_factor_levels <k>", "levels of fill (default 0)")],
        see_also=["PCILU", "PCCHOLESKY", "KSPCG"],
    ))

    pages.append(ManualPageSpec(
        name="PCLU",
        summary="Direct solve via (sparse) LU factorization used as a preconditioner.",
        level="beginner",
        description=[
            "{fact:preonly.direct}",
        ],
        options=[
            ("-pc_factor_mat_solver_type <petsc,mumps,superlu_dist,umfpack>", "factorization package"),
            ("-pc_factor_mat_ordering_type <nd,rcm,qmd,natural>", "fill-reducing ordering"),
        ],
        notes=[
            "{fact:pclu.parallel}",
        ],
        see_also=["PCCHOLESKY", "PCILU", "KSPPREONLY"],
    ))

    pages.append(ManualPageSpec(
        name="PCCHOLESKY",
        summary="Direct solve via Cholesky factorization for symmetric positive definite systems.",
        level="beginner",
        description=[
            "Cholesky factorization halves the work and storage of LU for symmetric positive "
            "definite matrices; in parallel it requires MUMPS or another external package.",
        ],
        see_also=["PCLU", "PCICC", "KSPPREONLY"],
    ))

    pages.append(ManualPageSpec(
        name="PCSOR",
        summary="(S)SOR — successive over-relaxation preconditioning.",
        level="beginner",
        description=["{fact:pcsor.gpu}"],
        options=[
            ("-pc_sor_omega <omega>", "relaxation factor (default 1.0)"),
            ("-pc_sor_its <its>", "number of inner SOR iterations"),
            ("-pc_sor_symmetric", "use symmetric SOR (SSOR)"),
        ],
        see_also=["PCJACOBI", "KSPRICHARDSON"],
    ))

    pages.append(ManualPageSpec(
        name="PCGAMG",
        summary="Geometric-algebraic multigrid preconditioning.",
        level="intermediate",
        description=["{fact:pcgamg.amg}"],
        options=[
            ("-pc_gamg_type <agg,classical,geo>", "aggregation strategy (default agg)"),
            ("-pc_gamg_threshold <t>", "drop tolerance for graph edges during coarsening"),
            ("-pc_gamg_agg_nsmooths <n>", "number of smoothing steps for smoothed aggregation"),
        ],
        notes=[
            "GAMG's default smoother is Chebyshev with Jacobi, chosen because "
            "{fact:chebyshev.no_reductions}",
            "For elasticity, provide the near-null space (rigid body modes) with "
            "MatSetNearNullSpace() to dramatically improve convergence.",
        ],
        see_also=["PCMG", "PCHYPRE", "MatSetNearNullSpace", "KSPCHEBYSHEV"],
    ))

    pages.append(ManualPageSpec(
        name="PCMG",
        summary="Geometric multigrid preconditioning.",
        level="intermediate",
        description=[
            "PCMG implements V-, W- and full-multigrid cycles over a user-provided grid "
            "hierarchy with configurable smoothers on each level.",
        ],
        options=[
            ("-pc_mg_levels <n>", "number of levels"),
            ("-pc_mg_cycle_type <v,w>", "cycle type"),
            ("-mg_levels_ksp_type <type>", "smoother KSP on the levels (default chebyshev)"),
        ],
        see_also=["PCGAMG", "KSPCHEBYSHEV"],
    ))

    pages.append(ManualPageSpec(
        name="PCFIELDSPLIT",
        summary="Preconditioners built from splittings of the problem's fields.",
        level="intermediate",
        description=["{fact:pcfieldsplit.blocks}"],
        options=[
            ("-pc_fieldsplit_type <additive,multiplicative,symmetric_multiplicative,schur>", "composition"),
            ("-pc_fieldsplit_detect_saddle_point", "detect a zero diagonal block and use a Schur complement"),
            ("-fieldsplit_<name>_ksp_type <type>", "solver for each split"),
        ],
        notes=[
            "For Stokes-like saddle-point systems, the Schur complement variant with a "
            "pressure mass-matrix preconditioner is the standard approach.",
        ],
        see_also=["PCCOMPOSITE", "MatNest", "KSPFGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="PCNONE",
        summary="No preconditioning (the identity operator).",
        level="beginner",
        description=["{fact:pcnone.identity}"],
        see_also=["PCSetType", "PCSHELL"],
    ))

    pages.append(ManualPageSpec(
        name="PCSHELL",
        summary="Creates a user-defined preconditioner.",
        level="advanced",
        description=[
            "PCSHELL calls back into user code via PCShellSetApply(), allowing an arbitrary "
            "operation — for instance a physics-based approximate inverse — to serve as the "
            "preconditioner.",
        ],
        notes=[
            "{fact:mf.pc_restriction}",
        ],
        see_also=["PCShellSetApply", "MatCreateShell", "PCNONE"],
    ))

    pages.append(ManualPageSpec(
        name="PCHYPRE",
        summary="Interface to the hypre preconditioner package (BoomerAMG and others).",
        level="intermediate",
        description=[
            "PCHYPRE exposes hypre's BoomerAMG algebraic multigrid, Euclid ILU, and "
            "ParaSails sparse approximate inverse, selected with -pc_hypre_type.",
        ],
        options=[("-pc_hypre_type <boomeramg,euclid,parasails,pilut>", "hypre method")],
        see_also=["PCGAMG", "PCMG"],
    ))

    return pages
