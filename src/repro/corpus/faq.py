"""FAQ entries for the synthetic PETSc knowledge base."""

from __future__ import annotations

from repro.corpus.model import FaqEntry


def faq_entries() -> list[FaqEntry]:
    return [
        FaqEntry(
            slug="default-solver",
            question="What solver does PETSc use by default?",
            answer=[
                "{fact:ksp.default_gmres}",
                "{fact:pc.default}",
            ],
        ),
        FaqEntry(
            slug="change-solver",
            question="How do I change the linear solver or preconditioner?",
            answer=[
                "{fact:ksp.settype} {fact:pc.settype}",
                "No recompilation is necessary; the options database is read when "
                "KSPSetFromOptions() runs.",
            ],
        ),
        FaqEntry(
            slug="diverged",
            question="My linear solve fails with KSP_DIVERGED_ITS. What should I do?",
            answer=[
                "{fact:conv.reason}",
                "First run with -ksp_monitor_true_residual and -ksp_converged_reason to see "
                "the convergence history. Then try a stronger preconditioner (e.g. "
                "-pc_type gamg for elliptic problems), verify the matrix assembly, and check "
                "for a null space. {fact:nullspace.set}",
            ],
        ),
        FaqEntry(
            slug="slow-assembly",
            question="Why is my matrix assembly extremely slow?",
            answer=[
                "Almost always this is missing preallocation. {fact:mat.preallocation}",
                "{fact:mat.info_option}",
            ],
        ),
        FaqEntry(
            slug="direct-solver",
            question="How do I use a direct solver instead of an iterative one?",
            answer=[
                "{fact:preonly.direct}",
                "{fact:pclu.parallel}",
            ],
        ),
        FaqEntry(
            slug="cg-requirements",
            question="When can I use the conjugate gradient method?",
            answer=[
                "{fact:cg.spd} {fact:cg.matrix_check}",
                "{fact:cg.indefinite_fail}",
            ],
        ),
        FaqEntry(
            slug="residual-monitor",
            question="How can I see the residual at every iteration?",
            answer=["{fact:conv.monitor}", "{fact:conv.monitorset}"],
        ),
        FaqEntry(
            slug="tolerances",
            question="How do I tighten or loosen the solver tolerances?",
            answer=["{fact:conv.settolerances}", "{fact:conv.defaults}"],
        ),
        FaqEntry(
            slug="nonzero-guess",
            question="Does KSPSolve use the vector I pass in as an initial guess?",
            answer=["{fact:conv.initial_guess}"],
        ),
        FaqEntry(
            slug="memory-gmres",
            question="Why does my solver run out of memory as iterations increase?",
            answer=[
                "{fact:gmres.memory_grows}",
                "Either lower the restart (-ksp_gmres_restart), or switch to a short-recurrence "
                "method. {fact:cg.short_recurrence} {fact:bcgs.nonsymmetric}",
            ],
        ),
        FaqEntry(
            slug="least-squares",
            question="Can PETSc solve over- or under-determined (rectangular) systems?",
            answer=[
                "{fact:ksplsqr.rectangular}",
                "{fact:ksplsqr.no_invert}",
            ],
        ),
        FaqEntry(
            slug="matrix-free",
            question="Can I solve a system without ever storing the matrix?",
            answer=[
                "{fact:mf.shell}",
                "{fact:mf.pc_restriction}",
            ],
        ),
        FaqEntry(
            slug="performance-report",
            question="How do I get a performance/profiling report?",
            answer=["{fact:perf.logview}", "{fact:perf.stages}"],
        ),
        FaqEntry(
            slug="singular-system",
            question="How do I solve a singular system (e.g. pure Neumann boundary conditions)?",
            answer=[
                "{fact:nullspace.set}",
                "{fact:nullspace.constant}",
                "{fact:nullspace.pc_care}",
            ],
        ),
        FaqEntry(
            slug="pc-side",
            question="What is the difference between left and right preconditioning?",
            answer=[
                "{fact:pc.side_default}",
                "{fact:conv.true_residual_norm}",
                "{fact:fgmres.right_only}",
            ],
        ),
        FaqEntry(
            slug="scaling-reductions",
            question="My Krylov solver stops scaling beyond a few thousand ranks. Why?",
            answer=[
                "{fact:perf.reductions_scaling}",
                "{fact:pipecg.overlap} {fact:pipelined.async}",
            ],
        ),
        FaqEntry(
            slug="zero-pivot",
            question="ILU fails with a zero pivot error. How do I fix it?",
            answer=["{fact:pcilu.zeropivot}", "{fact:pcilu.levels}"],
        ),
        FaqEntry(
            slug="which-options",
            question="How do I find out which options apply to my program?",
            answer=["{fact:options.help}", "{fact:ksp.view_option}"],
        ),
    ]
