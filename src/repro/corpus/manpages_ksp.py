"""Manual pages for KSP solver types and KSP interface functions.

Each page mirrors the structure of a real PETSc manual page.  Sentences
that the evaluation depends on are spliced in from the fact registry via
``{fact:id}`` placeholders (see :mod:`repro.corpus.model`).
"""

from __future__ import annotations

from repro.corpus.model import ManualPageSpec


def ksp_type_pages() -> list[ManualPageSpec]:
    """Manual pages for the Krylov solver implementations (KSPXXX types)."""
    pages: list[ManualPageSpec] = []

    pages.append(ManualPageSpec(
        name="KSPGMRES",
        summary="Implements the Generalized Minimal Residual method with restarts.",
        synopsis='#include "petscksp.h"\nKSPSetType(ksp, KSPGMRES);',
        level="beginner",
        description=[
            "{fact:gmres.nonsymmetric} The implementation restarts after a fixed number of "
            "iterations to bound memory and orthogonalization cost.",
            "{fact:ksp.default_gmres}",
        ],
        options=[
            ("-ksp_gmres_restart <n>", "number of Krylov directions before restart (default 30)"),
            ("-ksp_gmres_modifiedgramschmidt", "use modified Gram-Schmidt orthogonalization"),
            ("-ksp_gmres_cgs_refinement_type <never,ifneeded,always>",
             "iterative refinement for classical Gram-Schmidt"),
            ("-ksp_gmres_preallocate", "preallocate all Krylov basis vectors up front"),
        ],
        notes=[
            "{fact:gmres.restart_option}",
            "{fact:gmres.memory_grows} {fact:gmres.restart_tradeoff}",
            "{fact:gmres.modified_gs}",
            "Left preconditioning is the default; with right preconditioning the true residual "
            "norm is available at no extra cost.",
        ],
        see_also=["KSPFGMRES", "KSPLGMRES", "KSPDGMRES", "KSPBCGS", "KSPSetType", "KSPGMRESSetRestart"],
    ))

    pages.append(ManualPageSpec(
        name="KSPFGMRES",
        summary="Implements the Flexible Generalized Minimal Residual method.",
        synopsis='#include "petscksp.h"\nKSPSetType(ksp, KSPFGMRES);',
        level="intermediate",
        description=[
            "{fact:fgmres.variable_pc} A typical use is an inner KSP solve as the "
            "preconditioner via PCKSP, or a multigrid cycle whose strength varies.",
        ],
        options=[
            ("-ksp_gmres_restart <n>", "number of Krylov directions before restart"),
            ("-ksp_fgmres_modifypcnochange", "do not modify the preconditioner between iterations"),
        ],
        notes=[
            "{fact:fgmres.right_only}",
            "Flexible GMRES stores two sets of basis vectors, so it needs roughly twice the "
            "memory of plain GMRES at the same restart.",
        ],
        see_also=["KSPGMRES", "KSPGCR", "PCKSP", "KSPSetPCSide"],
    ))

    pages.append(ManualPageSpec(
        name="KSPLGMRES",
        summary="Augments restarted GMRES with error approximations from previous restart cycles.",
        level="intermediate",
        description=["{fact:lgmres.augment}"],
        options=[
            ("-ksp_lgmres_augment <k>", "number of error approximations to augment with (default 2)"),
        ],
        notes=[
            "LGMRES often recovers much of the convergence lost to restarting while keeping "
            "the memory bound of the restarted method.",
        ],
        see_also=["KSPGMRES", "KSPDGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPDGMRES",
        summary="Deflated restarted GMRES.",
        level="advanced",
        description=["{fact:dgmres.deflation}"],
        options=[
            ("-ksp_dgmres_eigen <n>", "number of eigenvalues to deflate"),
            ("-ksp_dgmres_max_eigen <n>", "maximum number of eigenvalues to deflate"),
        ],
        notes=[
            "Deflation is most effective when a few isolated small eigenvalues dominate the "
            "convergence behavior.",
        ],
        see_also=["KSPGMRES", "KSPLGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPCG",
        summary="Implements the Preconditioned Conjugate Gradient method.",
        synopsis='#include "petscksp.h"\nKSPSetType(ksp, KSPCG);',
        level="beginner",
        description=[
            "{fact:cg.spd} For symmetric indefinite systems see KSPMINRES and KSPSYMMLQ.",
            "{fact:cg.short_recurrence}",
        ],
        options=[
            ("-ksp_cg_type <symmetric,hermitian>", "variant for complex matrices"),
            ("-ksp_cg_single_reduction", "merge the two inner products into one reduction"),
        ],
        notes=[
            "{fact:cg.matrix_check}",
            "{fact:cg.indefinite_fail}",
            "The preconditioner must also be symmetric positive definite; PCICC and PCJACOBI "
            "preserve symmetry while PCILU generally does not.",
        ],
        see_also=["KSPMINRES", "KSPSYMMLQ", "KSPPIPECG", "KSPCGNE", "PCICC"],
    ))

    pages.append(ManualPageSpec(
        name="KSPMINRES",
        summary="Implements the Minimum Residual method for symmetric indefinite matrices.",
        level="intermediate",
        description=["{fact:minres.symmetric_indefinite}"],
        notes=[
            "The preconditioner must be symmetric positive definite even though the matrix "
            "itself may be indefinite.",
        ],
        see_also=["KSPCG", "KSPSYMMLQ"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSYMMLQ",
        summary="Implements the SYMMLQ method for symmetric indefinite matrices.",
        level="intermediate",
        description=["{fact:symmlq.symmetric}"],
        notes=[
            "SYMMLQ minimizes the error in a different norm than MINRES minimizes the residual.",
        ],
        see_also=["KSPMINRES", "KSPCG"],
    ))

    pages.append(ManualPageSpec(
        name="KSPCGNE",
        summary="Applies conjugate gradient to the normal equations without forming A^T A.",
        level="advanced",
        description=["{fact:cgne.normal}"],
        notes=[
            "The condition number of the normal equations is the square of that of A, so "
            "convergence can be slow; KSPLSQR is usually preferred for least squares problems.",
        ],
        see_also=["KSPLSQR", "KSPCG"],
    ))

    pages.append(ManualPageSpec(
        name="KSPBCGS",
        summary="Implements the stabilized BiConjugate Gradient method (BiCGStab).",
        synopsis='#include "petscksp.h"\nKSPSetType(ksp, KSPBCGS);',
        level="beginner",
        description=[
            "{fact:bcgs.nonsymmetric}",
            "{fact:bcgs.no_transpose}",
        ],
        notes=[
            "Convergence of BiCGStab can be erratic; KSPBCGSL smooths the residual history "
            "with a higher-dimensional minimization.",
        ],
        see_also=["KSPBCGSL", "KSPIBCGS", "KSPTFQMR", "KSPGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPIBCGS",
        summary="Implements an improved BiCGStab with a single reduction per iteration.",
        level="advanced",
        description=["{fact:ibcgs.reductions}"],
        notes=[
            "The reformulation changes floating-point behavior slightly; residual histories "
            "will not match KSPBCGS bit for bit.",
        ],
        see_also=["KSPBCGS", "KSPPIPECG"],
    ))

    pages.append(ManualPageSpec(
        name="KSPBCGSL",
        summary="Implements BiCGStab(L) with an L-dimensional minimization step.",
        level="advanced",
        description=["{fact:bcgsl.ell}"],
        options=[("-ksp_bcgsl_ell <l>", "dimension of the minimization step (default 2)")],
        see_also=["KSPBCGS", "KSPTFQMR"],
    ))

    pages.append(ManualPageSpec(
        name="KSPTFQMR",
        summary="Implements the transpose-free Quasi-Minimal Residual method.",
        level="intermediate",
        description=["{fact:tfqmr.smooth}"],
        see_also=["KSPBCGS", "KSPGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPLSQR",
        summary="Implements the LSQR iterative method for least squares problems.",
        synopsis='#include "petscksp.h"\nKSPSetType(ksp, KSPLSQR);',
        level="intermediate",
        description=[
            "{fact:ksplsqr.rectangular}",
            "{fact:ksplsqr.normal_equiv}",
        ],
        options=[
            ("-ksp_lsqr_compute_standard_error", "compute the standard error estimate"),
            ("-ksp_lsqr_monitor", "monitor the norm of the residual of the normal equations"),
        ],
        notes=[
            "{fact:ksplsqr.no_invert}",
            "{fact:ksplsqr.pc_normal}",
        ],
        see_also=["KSPCGNE", "KSPSetType", "PCNONE"],
    ))

    pages.append(ManualPageSpec(
        name="KSPRICHARDSON",
        summary="Implements the preconditioned Richardson iterative method.",
        level="beginner",
        description=["{fact:richardson.relaxation}"],
        options=[("-ksp_richardson_scale <s>", "damping factor (default 1.0)")],
        notes=[
            "With PCSOR this reproduces classical SOR iteration; with a multigrid "
            "preconditioner and one iteration it is a single V-cycle.",
        ],
        see_also=["KSPCHEBYSHEV", "PCSOR"],
    ))

    pages.append(ManualPageSpec(
        name="KSPCHEBYSHEV",
        summary="Implements the Chebyshev semi-iterative method.",
        level="intermediate",
        description=[
            "{fact:chebyshev.bounds}",
            "{fact:chebyshev.no_reductions}",
        ],
        options=[
            ("-ksp_chebyshev_eigenvalues <emin,emax>", "eigenvalue bounds of the preconditioned operator"),
            ("-ksp_chebyshev_esteig <a,b,c,d>", "estimate eigenvalues with a few Krylov iterations"),
        ],
        see_also=["KSPRICHARDSON", "PCMG", "KSPChebyshevSetEigenvalues"],
    ))

    pages.append(ManualPageSpec(
        name="KSPPREONLY",
        summary="Applies only the preconditioner exactly once; performs no Krylov iterations.",
        level="beginner",
        description=[
            "{fact:preonly.direct}",
        ],
        notes=[
            "{fact:preonly.check}",
            "KSPPREONLY is also the right choice for the inner solve of PCBJACOBI blocks when "
            "an exact subdomain solve is wanted.",
        ],
        see_also=["PCLU", "PCCHOLESKY", "KSPSetType"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGCR",
        summary="Implements the Generalized Conjugate Residual method with flexible preconditioning.",
        level="intermediate",
        description=[
            "KSPGCR, like KSPFGMRES, tolerates a preconditioner that changes from iteration "
            "to iteration, and additionally allows the true residual to be monitored cheaply.",
        ],
        options=[("-ksp_gcr_restart <n>", "restart length (default 30)")],
        see_also=["KSPFGMRES", "KSPGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPPIPECG",
        summary="Implements pipelined conjugate gradient with a single non-blocking reduction.",
        level="advanced",
        description=[
            "{fact:pipecg.overlap}",
            "{fact:pipelined.async}",
        ],
        notes=[
            "{fact:pipelined.stability}",
        ],
        see_also=["KSPCG", "KSPGROPPCG", "KSPPIPECR", "KSPIBCGS"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGROPPCG",
        summary="Implements Gropp's overlapped conjugate gradient variant.",
        level="advanced",
        description=["{fact:groppcg.variant}"],
        see_also=["KSPPIPECG", "KSPCG"],
    ))

    pages.append(ManualPageSpec(
        name="KSPPIPECR",
        summary="Implements pipelined conjugate residual for symmetric systems.",
        level="advanced",
        description=[
            "KSPPIPECR overlaps the reduction with the matrix-vector product like KSPPIPECG "
            "but minimizes the residual norm instead of the A-norm of the error.",
        ],
        see_also=["KSPPIPECG", "KSPCR"],
    ))

    pages.append(ManualPageSpec(
        name="KSPCR",
        summary="Implements the Conjugate Residual method for symmetric systems.",
        level="intermediate",
        description=[
            "The conjugate residual method minimizes the residual 2-norm for symmetric, "
            "possibly indefinite matrices, at slightly higher cost per iteration than CG.",
        ],
        see_also=["KSPCG", "KSPMINRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPCGS",
        summary="Implements the Conjugate Gradient Squared method.",
        level="intermediate",
        description=[
            "CGS squares the BiCG polynomial, often converging in fewer iterations than "
            "BiCG but with notoriously irregular residual behavior; KSPBCGS is usually "
            "a better default.",
        ],
        see_also=["KSPBCGS", "KSPTFQMR"],
    ))

    return pages


def ksp_function_pages() -> list[ManualPageSpec]:
    """Manual pages for the KSP interface functions and options."""
    pages: list[ManualPageSpec] = []

    pages.append(ManualPageSpec(
        name="KSPCreate",
        summary="Creates a KSP context for solving linear systems.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPCreate(MPI_Comm comm, KSP *ksp);',
        level="beginner",
        description=[
            "Creates the Krylov solver object on the given communicator. "
            "{fact:ksp.abstraction}",
        ],
        notes=["The object must be destroyed with KSPDestroy() when no longer needed."],
        see_also=["KSPSetUp", "KSPSolve", "KSPDestroy", "KSPSetOperators"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetType",
        summary="Selects the Krylov method to be used.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetType(KSP ksp, KSPType type);',
        level="beginner",
        description=[
            "{fact:ksp.settype}",
            "{fact:ksp.naming}",
        ],
        options=[("-ksp_type <method>", "gmres, cg, bcgs, lsqr, preonly, richardson, chebyshev, ...")],
        see_also=["KSPGetType", "KSPCreate", "KSPGMRES", "KSPCG"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSolve",
        summary="Solves a linear system.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSolve(KSP ksp, Vec b, Vec x);',
        level="beginner",
        description=[
            "{fact:ksp.solve_sequence}",
            "{fact:conv.initial_guess}",
        ],
        notes=[
            "Call KSPGetConvergedReason() after the solve to determine success; the solution "
            "is undefined when the reason is negative. {fact:conv.iterations}",
            "{fact:ksp.reuse_solver}",
        ],
        see_also=["KSPCreate", "KSPSetOperators", "KSPGetConvergedReason", "KSPSolveTranspose"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSolveTranspose",
        summary="Solves the transpose of a linear system.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSolveTranspose(KSP ksp, Vec b, Vec x);',
        level="advanced",
        description=["{fact:ksp.solvetranspose}"],
        notes=["Not all Krylov methods and preconditioners support transpose application."],
        see_also=["KSPSolve", "MatMultTranspose"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetOperators",
        summary="Sets the matrix associated with the linear system and a (possibly different) one from which the preconditioner is built.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetOperators(KSP ksp, Mat Amat, Mat Pmat);',
        level="beginner",
        description=[
            "{fact:ksp.setoperators_amat_pmat}",
            "A common pattern for matrix-free methods supplies a MatShell as Amat and an "
            "assembled approximation as Pmat for the preconditioner.",
        ],
        notes=["{fact:ksp.reuse_solver}"],
        see_also=["KSPSolve", "KSPGetOperators", "MatCreateShell"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetFromOptions",
        summary="Sets KSP options from the options database.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetFromOptions(KSP ksp);',
        level="beginner",
        description=[
            "{fact:options.database}",
        ],
        options=[
            ("-ksp_type <method>", "Krylov method"),
            ("-ksp_rtol <rtol>", "relative decrease in residual norm"),
            ("-ksp_monitor", "print the residual norm at each iteration"),
            ("-ksp_view", "display solver configuration after solve"),
        ],
        notes=["Must be called before KSPSolve() for command line options to take effect."],
        see_also=["KSPSetType", "KSPSetTolerances"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetTolerances",
        summary="Sets the convergence tolerances for the iterative solver.",
        synopsis=(
            '#include "petscksp.h"\n'
            "PetscErrorCode KSPSetTolerances(KSP ksp, PetscReal rtol, PetscReal abstol, "
            "PetscReal dtol, PetscInt maxits);"
        ),
        level="beginner",
        description=[
            "{fact:conv.settolerances}",
            "{fact:conv.defaults}",
        ],
        notes=[
            "Use PETSC_DEFAULT (or PETSC_CURRENT) for any argument you do not wish to change.",
            "{fact:conv.default_test_norm}",
        ],
        see_also=["KSPGetTolerances", "KSPSetConvergenceTest", "KSPConvergedDefault"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGetConvergedReason",
        summary="Gets the reason the KSP iteration was stopped.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPGetConvergedReason(KSP ksp, KSPConvergedReason *reason);',
        level="intermediate",
        description=[
            "{fact:conv.reason}",
        ],
        options=[("-ksp_converged_reason", "print the reason after each solve")],
        notes=[
            "{fact:conv.reason_option}",
            "Common failure reasons are KSP_DIVERGED_ITS (maximum iterations reached), "
            "KSP_DIVERGED_DTOL (residual grew by the divergence tolerance), and "
            "KSP_DIVERGED_PC_FAILED (the preconditioner failed, e.g. a zero pivot).",
        ],
        see_also=["KSPSolve", "KSPSetTolerances", "KSPGetIterationNumber"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGetIterationNumber",
        summary="Gets the current iteration number (or the total after a solve).",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPGetIterationNumber(KSP ksp, PetscInt *its);',
        level="beginner",
        description=["{fact:conv.iterations}"],
        see_also=["KSPGetConvergedReason", "KSPMonitorSet"],
    ))

    pages.append(ManualPageSpec(
        name="KSPMonitorSet",
        summary="Sets a function to be called at every iteration to monitor convergence.",
        synopsis=(
            '#include "petscksp.h"\n'
            "PetscErrorCode KSPMonitorSet(KSP ksp, PetscErrorCode (*monitor)(KSP, PetscInt, PetscReal, void *), "
            "void *ctx, PetscErrorCode (*destroy)(void **));"
        ),
        level="intermediate",
        description=[
            "{fact:conv.monitorset}",
            "{fact:conv.monitor}",
        ],
        notes=[
            "Several monitors can be set; they are called in the order registered.",
        ],
        see_also=["KSPMonitorCancel", "KSPGetIterationNumber"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetInitialGuessNonzero",
        summary="Tells the iterative solver that the initial guess is nonzero.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetInitialGuessNonzero(KSP ksp, PetscBool flg);',
        level="beginner",
        description=["{fact:conv.initial_guess}"],
        notes=[
            "If the solution vector passed to KSPSolve() is not zeroed and this flag is not "
            "set, the solver zeroes it, silently discarding the intended guess.",
        ],
        see_also=["KSPSolve"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetPCSide",
        summary="Sets the preconditioning side (left, right, or symmetric).",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetPCSide(KSP ksp, PCSide side);',
        level="intermediate",
        description=[
            "{fact:pc.side_default}",
        ],
        options=[("-ksp_pc_side <left,right,symmetric>", "preconditioner side")],
        notes=[
            "{fact:fgmres.right_only}",
            "{fact:conv.true_residual_norm}",
        ],
        see_also=["KSPSetNormType", "KSPFGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetNormType",
        summary="Sets the norm used by the convergence test.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPSetNormType(KSP ksp, KSPNormType normtype);',
        level="advanced",
        description=[
            "{fact:conv.true_residual_norm}",
            "KSP_NORM_NONE skips the norm computation entirely, useful when KSP is a smoother "
            "inside multigrid and no convergence test is wanted.",
        ],
        options=[("-ksp_norm_type <none,preconditioned,unpreconditioned,natural>", "norm for convergence tests")],
        see_also=["KSPSetConvergenceTest", "KSPSetPCSide"],
    ))

    pages.append(ManualPageSpec(
        name="KSPSetConvergenceTest",
        summary="Sets the function to be used to determine convergence.",
        synopsis=(
            '#include "petscksp.h"\n'
            "PetscErrorCode KSPSetConvergenceTest(KSP ksp, PetscErrorCode (*converge)(KSP, PetscInt, PetscReal, "
            "KSPConvergedReason *, void *), void *ctx, PetscErrorCode (*destroy)(void *));"
        ),
        level="advanced",
        description=["{fact:conv.custom_test}"],
        notes=[
            "{fact:conv.default_test_norm}",
        ],
        see_also=["KSPConvergedDefault", "KSPSetTolerances", "KSPSetNormType"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGMRESSetRestart",
        summary="Sets the number of search directions for GMRES and FGMRES before restart.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPGMRESSetRestart(KSP ksp, PetscInt restart);',
        level="intermediate",
        description=["{fact:gmres.restart_option}"],
        notes=["{fact:gmres.restart_tradeoff}"],
        see_also=["KSPGMRES", "KSPFGMRES"],
    ))

    pages.append(ManualPageSpec(
        name="KSPChebyshevSetEigenvalues",
        summary="Sets the eigenvalue bounds for the Chebyshev iteration.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPChebyshevSetEigenvalues(KSP ksp, PetscReal emax, PetscReal emin);',
        level="intermediate",
        description=["{fact:chebyshev.bounds}"],
        see_also=["KSPCHEBYSHEV"],
    ))

    pages.append(ManualPageSpec(
        name="KSPView",
        summary="Prints the KSP data structure.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPView(KSP ksp, PetscViewer viewer);',
        level="beginner",
        description=["{fact:ksp.view_option}"],
        options=[("-ksp_view", "print solver configuration at the end of KSPSolve()")],
        see_also=["PCView", "PetscViewerASCIIOpen"],
    ))

    pages.append(ManualPageSpec(
        name="KSPDestroy",
        summary="Destroys a KSP context.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPDestroy(KSP *ksp);',
        level="beginner",
        description=["Frees all memory associated with the Krylov solver object."],
        see_also=["KSPCreate", "KSPSolve"],
    ))

    pages.append(ManualPageSpec(
        name="KSPGetPC",
        summary="Returns the preconditioner context associated with the KSP solver.",
        synopsis='#include "petscksp.h"\nPetscErrorCode KSPGetPC(KSP ksp, PC *pc);',
        level="beginner",
        description=[
            "Every KSP owns a PC object; retrieve it with KSPGetPC() to configure the "
            "preconditioner programmatically, e.g. PCSetType(pc, PCJACOBI).",
        ],
        see_also=["PCSetType", "KSPSetPC"],
    ))

    return pages
