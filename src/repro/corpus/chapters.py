"""Users-manual chapters for the synthetic PETSc knowledge base.

Chapters are deliberately long — they split into many chunks, so the
facts buried in them (the KSPLSQR least-squares remark of case study 1,
the ``-info`` preallocation paragraph of case study 2) compete with a
large amount of surrounding prose during retrieval, reproducing the
retrieval difficulty the paper observed.
"""

from __future__ import annotations

from repro.corpus.model import ChapterSpec


def manual_chapters() -> list[ChapterSpec]:
    chapters: list[ChapterSpec] = []

    chapters.append(ChapterSpec(
        slug="ksp",
        title="KSP: Linear System Solvers",
        intro=[
            "The KSP component provides an easy-to-use interface to the combination of a "
            "Krylov subspace iterative method and a preconditioner, or to a sequential or "
            "parallel direct solver. {fact:ksp.abstraction}",
            "KSP users can set various Krylov subspace options at runtime via the options "
            "database (e.g., -ksp_type cg). KSP users can also set various preconditioning "
            "options at runtime via the options database (e.g., -pc_type jacobi).",
        ],
        sections=[
            ("## Using KSP", [
                "To solve a linear system with KSP, one must first create a solver context: "
                "KSPCreate(comm, &ksp). {fact:ksp.solve_sequence}",
                "{fact:ksp.setoperators_amat_pmat} This flexibility allows, for instance, "
                "preconditioning a matrix-free operator with a simplified assembled matrix.",
                "```c\n"
                "KSPCreate(PETSC_COMM_WORLD, &ksp);\n"
                "KSPSetOperators(ksp, A, A);\n"
                "KSPSetFromOptions(ksp);\n"
                "KSPSolve(ksp, b, x);\n"
                "KSPDestroy(&ksp);\n"
                "```",
                "{fact:ksp.reuse_solver}",
            ]),
            ("## Choosing a Krylov Method", [
                "{fact:ksp.default_gmres} {fact:ksp.settype}",
                "{fact:gmres.nonsymmetric} {fact:gmres.memory_grows}",
                "{fact:cg.spd} {fact:cg.short_recurrence}",
                "{fact:bcgs.nonsymmetric} {fact:bcgs.no_transpose}",
                "{fact:minres.symmetric_indefinite} {fact:symmlq.symmetric}",
                "For problems where the preconditioner varies between iterations — for "
                "example when the preconditioner is itself an iterative method — use a "
                "flexible method. {fact:fgmres.variable_pc}",
            ]),
            ("## Convergence Tests", [
                "{fact:conv.defaults} {fact:conv.settolerances}",
                "{fact:conv.default_test_norm} {fact:conv.true_residual_norm}",
                "{fact:conv.reason} {fact:conv.reason_option}",
                "{fact:conv.custom_test}",
            ]),
            ("## Convergence Monitoring", [
                "{fact:conv.monitor}",
                "{fact:conv.monitorset}",
                "The option -ksp_monitor_singular_value additionally prints running estimates "
                "of the extreme singular values of the preconditioned operator.",
                "{fact:conv.iterations}",
            ]),
            ("## Initial Guess", [
                "{fact:conv.initial_guess}",
                "Supplying a good initial guess — for example the solution of the previous "
                "time step — can substantially reduce iteration counts in transient "
                "simulations.",
            ]),
            ("## Preconditioning within KSP", [
                "{fact:pc.concept}",
                "{fact:pc.default} {fact:pc.settype}",
                "{fact:pc.side_default} {fact:fgmres.right_only}",
                "Access the PC object with KSPGetPC(ksp, &pc) to configure it directly.",
            ]),
            ("## Solving Least Squares Problems", [
                "{fact:ksplsqr.rectangular}",
                "{fact:ksplsqr.normal_equiv} {fact:ksplsqr.no_invert}",
                "{fact:ksplsqr.pc_normal}",
                "{fact:cgne.normal}",
            ]),
            ("## Solving Singular Systems", [
                "{fact:nullspace.set}",
                "{fact:nullspace.constant}",
                "{fact:nullspace.pc_care}",
            ]),
            ("## Matrix-Free Solvers", [
                "{fact:mf.shell}",
                "{fact:mf.pc_restriction}",
                "{fact:mf.snes_fd}",
            ]),
            ("## Solvers for Extreme Scale", [
                "{fact:perf.reductions_scaling}",
                "{fact:pipecg.overlap} {fact:groppcg.variant}",
                "{fact:pipelined.async} {fact:pipelined.stability}",
                "{fact:ibcgs.reductions}",
                "{fact:chebyshev.no_reductions}",
            ]),
            ("## Using Direct Solvers through KSP", [
                "{fact:preonly.direct} {fact:preonly.check}",
                "{fact:pclu.parallel}",
            ]),
            ("## Viewing Solver Configuration", [
                "{fact:ksp.view_option}",
                "{fact:options.help}",
            ]),
        ],
    ))

    chapters.append(ChapterSpec(
        slug="pc",
        title="PC: Preconditioners",
        intro=[
            "{fact:pc.concept} The KSP and PC components are separable: any preconditioner "
            "may be combined with any Krylov method, subject to mathematical constraints "
            "such as symmetry requirements.",
        ],
        sections=[
            ("## Preconditioner Basics", [
                "{fact:pc.settype} {fact:pc.default}",
                "{fact:pcjacobi.diag}",
                "{fact:pcbjacobi.blocks}",
            ]),
            ("## Factorization Preconditioners", [
                "{fact:pcilu.levels}",
                "{fact:pcilu.zeropivot}",
                "PCICC preserves symmetry and is the appropriate incomplete factorization "
                "for use with KSPCG.",
            ]),
            ("## Domain Decomposition", [
                "{fact:pcasm.overlap}",
                "Increasing overlap improves convergence at the price of more communication; "
                "overlap 1 or 2 is typical.",
            ]),
            ("## Multigrid Preconditioners", [
                "{fact:pcgamg.amg}",
                "PCMG provides geometric multigrid when a mesh hierarchy is available; "
                "PCGAMG constructs the hierarchy algebraically from the matrix graph.",
                "{fact:chebyshev.no_reductions}",
            ]),
            ("## Block and Physics-Based Preconditioners", [
                "{fact:pcfieldsplit.blocks}",
                "{fact:mf.pc_restriction}",
            ]),
            ("## Choosing Preconditioner Side", [
                "{fact:pc.side_default}",
                "{fact:conv.true_residual_norm}",
            ]),
        ],
    ))

    chapters.append(ChapterSpec(
        slug="mat",
        title="Mat: Matrices",
        intro=[
            "PETSc matrices store the linear operators of discretized PDEs and other "
            "systems. {fact:mat.aij_default}",
        ],
        sections=[
            ("## Creating and Assembling Matrices", [
                "{fact:mat.setvalues}",
                "Entries may be inserted (INSERT_VALUES) or added (ADD_VALUES), but the two "
                "modes cannot be mixed without an intervening flush assembly.",
                "```c\n"
                "MatCreate(PETSC_COMM_WORLD, &A);\n"
                "MatSetSizes(A, PETSC_DECIDE, PETSC_DECIDE, n, n);\n"
                "MatSetFromOptions(A);\n"
                "MatSeqAIJSetPreallocation(A, 5, NULL);\n"
                "MatSetValues(A, 1, &i, 1, &j, &v, INSERT_VALUES);\n"
                "MatAssemblyBegin(A, MAT_FINAL_ASSEMBLY);\n"
                "MatAssemblyEnd(A, MAT_FINAL_ASSEMBLY);\n"
                "```",
            ]),
            ("## Preallocation of Memory", [
                "{fact:mat.preallocation}",
                "For parallel AIJ matrices, the diagonal and off-diagonal portions of the "
                "local rows are preallocated separately with MatMPIAIJSetPreallocation().",
                "{fact:mat.info_option} Look for lines reporting the number of mallocs used "
                "during MatSetValues() — a nonzero count means the preallocation was "
                "insufficient and assembly performance suffered.",
            ]),
            ("## Matrix Options", [
                "{fact:mat.symmetric_option}",
                "MAT_NEW_NONZERO_LOCATION_ERR converts accidental fill outside the "
                "preallocated sparsity pattern into an error, which is the fastest way to "
                "find missing preallocation entries.",
            ]),
            ("## Matrix-Free Matrices", [
                "{fact:mf.shell}",
                "{fact:mf.pc_restriction}",
            ]),
            ("## Null Spaces", [
                "{fact:nullspace.set} {fact:nullspace.constant}",
            ]),
        ],
    ))

    chapters.append(ChapterSpec(
        slug="getting_started",
        title="Getting Started with PETSc",
        intro=[
            "PETSc, the Portable Extensible Toolkit for Scientific Computation, provides "
            "data structures and solvers for scalable scientific applications, including "
            "linear solvers (KSP), nonlinear solvers (SNES), and time integrators (TS).",
        ],
        sections=[
            ("## Writing a First Program", [
                "Every PETSc program begins with PetscInitialize() and ends with "
                "PetscFinalize(); between them, objects are created, configured from the "
                "options database, used, and destroyed.",
                "{fact:options.database}",
                "{fact:options.help}",
            ]),
            ("## The Options Database", [
                "Nearly every solver parameter can be changed at runtime without "
                "recompiling: -ksp_type, -pc_type, -ksp_rtol and thousands of others.",
                "{fact:ksp.settype} {fact:pc.settype}",
            ]),
            ("## Error Handling and Debugging", [
                "PETSc routines return a PetscErrorCode; wrapping calls in PetscCall() "
                "propagates errors with a full stack trace.",
                "The option -info prints verbose informational messages about object "
                "lifecycle, communication, and assembly events, which is often the fastest "
                "way to understand unexpected behavior.",
            ]),
            ("## Profiling Basics", [
                "{fact:perf.logview}",
                "{fact:perf.stages}",
            ]),
        ],
    ))

    chapters.append(ChapterSpec(
        slug="profiling",
        title="Profiling and Performance",
        intro=[
            "PETSc includes integrated profiling of time, floating-point performance, and "
            "message passing activity for all operations.",
        ],
        sections=[
            ("## Interpreting -log_view Output", [
                "{fact:perf.logview}",
                "The summary table lists, for each event such as MatMult and KSPSolve, the "
                "time, flop rate, message counts, and reduction counts, broken down by stage.",
                "{fact:perf.stages}",
            ]),
            ("## Scalability Considerations", [
                "{fact:perf.reductions_scaling}",
                "{fact:pipecg.overlap}",
                "{fact:chebyshev.no_reductions}",
                "Communication-avoiding and pipelined methods trade extra local computation "
                "(and occasionally numerical robustness) for fewer or overlapped global "
                "synchronizations. {fact:pipelined.stability}",
            ]),
            ("## Memory Performance", [
                "Sparse solvers are memory-bandwidth limited: a process achieves only a "
                "small fraction of peak flops, and performance saturates once the memory "
                "bus is saturated, typically with a few cores per socket.",
                "{fact:mat.preallocation}",
            ]),
        ],
    ))

    chapters.append(ChapterSpec(
        slug="snes",
        title="SNES: Nonlinear Solvers",
        intro=[
            "SNES provides Newton-type and other nonlinear solvers built on KSP for the "
            "inner linear solves.",
        ],
        sections=[
            ("## Newton's Method", [
                "Each Newton step solves a linear system with the Jacobian; all KSP and PC "
                "options apply to that inner solve with the same option names.",
                "The inner linear solver tolerance can be managed adaptively with the "
                "Eisenstat-Walker method via -snes_ksp_ew.",
            ]),
            ("## Jacobian-Free Newton-Krylov", [
                "{fact:mf.snes_fd}",
                "{fact:mf.pc_restriction}",
            ]),
        ],
    ))

    return chapters
