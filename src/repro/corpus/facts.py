"""Ground-truth fact registry for the synthetic PETSc knowledge base.

A :class:`Fact` is an atomic, checkable statement about PETSc that
appears verbatim somewhere in the corpus.  Facts give us three things:

1. **Corpus tagging** — after splitting, chunks are tagged with the fact
   ids whose signatures they contain, so retrieval quality can be
   measured as "did the context contain the facts this question needs".
2. **Simulated LLM grounding** — :class:`repro.llm.SimulatedChatModel`
   answers by selecting facts present in its context (or its parametric
   store) that are relevant to the question.
3. **Mechanical blind grading** — the grader detects which facts and
   falsehoods an answer asserts and applies the paper's Table I rubric.

A :class:`Falsehood` is a statement that is *wrong* about PETSc: either
a misconception planted in a synthetic mailing-list thread (retrieval
noise, the source of RAG's negative impact on three questions in the
paper's Fig. 6a) or a hallucination the simulated LLM can emit when it
lacks grounding.

Detection is signature-based: a fact "appears in" a text when all of its
signature terms occur (identifiers case-sensitively, words
case-insensitively).  Signatures are chosen to be distinctive enough
that unrelated prose does not trigger them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import CorpusError

_IDENT_RE = re.compile(r"^[A-Z][A-Za-z0-9_]*$|^-[a-z][a-z0-9_]*$")


def _contains_term(text: str, text_lower: str, term: str) -> bool:
    """Word-boundary containment; identifiers match case-sensitively."""
    if _IDENT_RE.match(term):
        return re.search(rf"(?<![A-Za-z0-9_]){re.escape(term)}(?![A-Za-z0-9_])", text) is not None
    return (
        re.search(rf"(?<![a-z0-9_]){re.escape(term.lower())}(?![a-z0-9_])", text_lower)
        is not None
    )


@dataclass(frozen=True)
class Fact:
    """An atomic true statement about PETSc.

    Attributes
    ----------
    fact_id:
        Dotted identifier, e.g. ``"ksplsqr.rectangular"``.
    statement:
        The canonical sentence as it appears in the corpus.
    signature:
        Terms that must all be present for the fact to count as asserted
        by a text.  Identifiers (CamelCase / ``-option``) match
        case-sensitively.
    topics:
        Identifiers/concepts this fact is about; used to match facts to
        questions.
    """

    fact_id: str
    statement: str
    signature: tuple[str, ...]
    topics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.signature:
            raise CorpusError(f"fact {self.fact_id!r} has an empty signature")
        stmt_lower = self.statement.lower()
        for term in self.signature:
            if not _contains_term(self.statement, stmt_lower, term):
                raise CorpusError(
                    f"fact {self.fact_id!r}: signature term {term!r} does not occur in its own statement"
                )

    def appears_in(self, text: str, text_lower: str | None = None) -> bool:
        """Whether ``text`` asserts this fact.

        Detection is sentence-scoped: all signature terms must co-occur
        within one sentence, so assembling the terms from *different*
        statements in a longer text does not count as asserting the fact.
        """
        tl = text.lower() if text_lower is None else text_lower
        if not all(_contains_term(text, tl, term) for term in self.signature):
            return False
        return _signature_in_one_sentence(text, self.signature)


def _signature_in_one_sentence(text: str, signature: tuple[str, ...]) -> bool:
    from repro.utils.textproc import sentences  # local import to avoid a cycle

    for sent in sentences(text):
        sl = sent.lower()
        if all(_contains_term(sent, sl, term) for term in signature):
            return True
    return False


@dataclass(frozen=True)
class Falsehood:
    """A wrong statement about PETSc, detectable in generated answers."""

    false_id: str
    statement: str
    signature: tuple[str, ...]
    topics: tuple[str, ...] = ()
    fabrication: bool = False
    """True when the statement invents a nonexistent API (scored 0 when it
    dominates an answer, per the paper's scoring of the KSPBurb reply)."""

    def __post_init__(self) -> None:
        if not self.signature:
            raise CorpusError(f"falsehood {self.false_id!r} has an empty signature")
        stmt_lower = self.statement.lower()
        for term in self.signature:
            if not _contains_term(self.statement, stmt_lower, term):
                raise CorpusError(
                    f"falsehood {self.false_id!r}: signature term {term!r} missing from statement"
                )

    def appears_in(self, text: str, text_lower: str | None = None) -> bool:
        """Sentence-scoped assertion check (see :meth:`Fact.appears_in`)."""
        tl = text.lower() if text_lower is None else text_lower
        if not all(_contains_term(text, tl, term) for term in self.signature):
            return False
        return _signature_in_one_sentence(text, self.signature)


@dataclass
class FactRegistry:
    """Lookup table over all facts and falsehoods in the corpus."""

    facts: dict[str, Fact] = field(default_factory=dict)
    falsehoods: dict[str, Falsehood] = field(default_factory=dict)

    def add_fact(self, fact: Fact) -> Fact:
        if fact.fact_id in self.facts:
            raise CorpusError(f"duplicate fact id {fact.fact_id!r}")
        self.facts[fact.fact_id] = fact
        return fact

    def add_falsehood(self, falsehood: Falsehood) -> Falsehood:
        if falsehood.false_id in self.falsehoods:
            raise CorpusError(f"duplicate falsehood id {falsehood.false_id!r}")
        self.falsehoods[falsehood.false_id] = falsehood
        return falsehood

    def fact(self, fact_id: str) -> Fact:
        try:
            return self.facts[fact_id]
        except KeyError:
            raise CorpusError(f"unknown fact id {fact_id!r}") from None

    def falsehood(self, false_id: str) -> Falsehood:
        try:
            return self.falsehoods[false_id]
        except KeyError:
            raise CorpusError(f"unknown falsehood id {false_id!r}") from None

    def statement(self, fact_id: str) -> str:
        return self.fact(fact_id).statement

    def facts_in(self, text: str) -> list[Fact]:
        """All registered facts asserted by ``text``."""
        tl = text.lower()
        return [f for f in self.facts.values() if f.appears_in(text, tl)]

    def falsehoods_in(self, text: str) -> list[Falsehood]:
        """All registered falsehoods asserted by ``text``."""
        tl = text.lower()
        return [f for f in self.falsehoods.values() if f.appears_in(text, tl)]

    def facts_about(self, topic: str) -> list[Fact]:
        """Facts whose topic list contains ``topic`` (case-insensitive)."""
        t = topic.lower()
        return [f for f in self.facts.values() if any(t == x.lower() for x in f.topics)]


def _F(reg: FactRegistry, fact_id: str, statement: str, signature: tuple[str, ...], topics: tuple[str, ...]) -> None:
    reg.add_fact(Fact(fact_id=fact_id, statement=statement, signature=signature, topics=topics))


def _X(
    reg: FactRegistry,
    false_id: str,
    statement: str,
    signature: tuple[str, ...],
    topics: tuple[str, ...],
    fabrication: bool = False,
) -> None:
    reg.add_falsehood(
        Falsehood(
            false_id=false_id,
            statement=statement,
            signature=signature,
            topics=topics,
            fabrication=fabrication,
        )
    )


def default_registry() -> FactRegistry:
    """Build the full fact/falsehood registry for the synthetic corpus.

    The registry is rebuilt on each call (it is cheap); callers that need
    sharing should hold a reference.
    """
    reg = FactRegistry()

    # ---------------------------------------------------------------- KSP basics
    _F(reg, "ksp.abstraction",
       "KSP is the PETSc abstraction for Krylov subspace iterative methods and provides "
       "uniform access to all of the package's linear system solvers.",
       ("KSP", "Krylov", "iterative"), ("KSP",))
    _F(reg, "ksp.default_gmres",
       "The default KSP type is KSPGMRES, restarted GMRES with a default restart of 30 "
       "and classical Gram-Schmidt orthogonalization with iterative refinement.",
       ("KSPGMRES", "restart", "30"), ("KSP", "KSPGMRES", "default"))
    _F(reg, "ksp.settype",
       "The Krylov method is selected with KSPSetType() or at runtime with the option "
       "-ksp_type (for example -ksp_type gmres or -ksp_type cg).",
       ("KSPSetType", "-ksp_type"), ("KSP", "KSPSetType"))
    _F(reg, "ksp.solve_sequence",
       "A linear solve is performed by creating the solver with KSPCreate(), supplying the "
       "matrix with KSPSetOperators(), configuring via KSPSetFromOptions(), and calling KSPSolve().",
       ("KSPCreate", "KSPSetOperators", "KSPSetFromOptions", "KSPSolve"), ("KSP", "KSPSolve"))
    _F(reg, "ksp.setoperators_amat_pmat",
       "KSPSetOperators() accepts two matrices: Amat that defines the linear system and Pmat "
       "from which the preconditioner is constructed; they may be the same matrix.",
       ("KSPSetOperators", "Amat", "Pmat"), ("KSP", "KSPSetOperators"))
    _F(reg, "ksp.reuse_solver",
       "The same KSP object can be reused for a sequence of linear solves; when the matrix "
       "values change, call KSPSetOperators() again and PETSc rebuilds the preconditioner as needed.",
       ("KSP", "KSPSetOperators", "reused"), ("KSP", "KSPSetOperators", "reuse"))
    _F(reg, "ksp.view_option",
       "The option -ksp_view prints the complete configuration of the solver, including the "
       "KSP type, tolerances, and the preconditioner details, after KSPSolve().",
       ("-ksp_view", "KSP"), ("KSP", "-ksp_view"))
    _F(reg, "ksp.solvetranspose",
       "KSPSolveTranspose() solves the transposed system A^T x = b with the same solver "
       "configuration as the forward solve.",
       ("KSPSolveTranspose",), ("KSP", "KSPSolveTranspose", "transpose"))

    # ---------------------------------------------------------------- GMRES
    _F(reg, "gmres.restart_option",
       "The GMRES restart length is changed with KSPGMRESSetRestart() or the option "
       "-ksp_gmres_restart, for example -ksp_gmres_restart 100.",
       ("KSPGMRESSetRestart", "-ksp_gmres_restart"), ("KSPGMRES", "restart"))
    _F(reg, "gmres.memory_grows",
       "GMRES must store one basis vector per iteration up to the restart length, so its "
       "memory usage grows linearly with the restart parameter.",
       ("GMRES", "basis", "restart"), ("KSPGMRES", "memory"))
    _F(reg, "gmres.restart_tradeoff",
       "A larger GMRES restart usually reduces the iteration count but increases memory and "
       "orthogonalization cost; a restart that is too small can cause stagnation.",
       ("restart", "stagnation"), ("KSPGMRES", "restart", "stagnation"))
    _F(reg, "gmres.nonsymmetric",
       "GMRES is applicable to general nonsymmetric linear systems and minimizes the residual "
       "norm over the Krylov subspace at each iteration.",
       ("GMRES", "nonsymmetric", "residual"), ("KSPGMRES", "nonsymmetric"))
    _F(reg, "gmres.modified_gs",
       "For ill-conditioned problems, modified Gram-Schmidt orthogonalization can be selected "
       "with -ksp_gmres_modifiedgramschmidt at some loss of parallel performance.",
       ("-ksp_gmres_modifiedgramschmidt",), ("KSPGMRES", "orthogonalization"))
    _F(reg, "fgmres.variable_pc",
       "KSPFGMRES is flexible GMRES, which allows the preconditioner to change at every "
       "iteration, for example when the preconditioner is itself an iterative solve.",
       ("KSPFGMRES", "flexible", "preconditioner"), ("KSPFGMRES", "flexible"))
    _F(reg, "fgmres.right_only",
       "KSPFGMRES supports right preconditioning only, so it cannot be combined with "
       "-ksp_pc_side left.",
       ("KSPFGMRES", "right"), ("KSPFGMRES", "right", "preconditioning"))
    _F(reg, "lgmres.augment",
       "KSPLGMRES augments the restarted GMRES subspace with approximations to the error "
       "from previous cycles, often improving convergence over plain restarted GMRES.",
       ("KSPLGMRES", "augments"), ("KSPLGMRES",))
    _F(reg, "dgmres.deflation",
       "KSPDGMRES adaptively deflates the smallest eigenvalues to mitigate the convergence "
       "slowdown caused by restarting.",
       ("KSPDGMRES", "deflates"), ("KSPDGMRES",))

    # ---------------------------------------------------------------- CG family
    _F(reg, "cg.spd",
       "KSPCG, the conjugate gradient method, requires the matrix (and preconditioner) to be "
       "symmetric positive definite.",
       ("KSPCG", "symmetric", "positive"), ("KSPCG", "symmetric"))
    _F(reg, "cg.short_recurrence",
       "Conjugate gradient uses short recurrences, so its memory requirement is a small "
       "constant number of work vectors independent of the iteration count.",
       ("recurrences", "constant", "vectors"), ("KSPCG", "memory"))
    _F(reg, "cg.indefinite_fail",
       "Applying CG to an indefinite or nonsymmetric matrix can break down or diverge; use "
       "KSPMINRES for symmetric indefinite systems or KSPGMRES for nonsymmetric ones.",
       ("indefinite", "KSPMINRES", "KSPGMRES"), ("KSPCG", "indefinite"))
    _F(reg, "cg.matrix_check",
       "PETSc does not verify symmetry before running KSPCG; the user is responsible for "
       "supplying a symmetric positive definite operator.",
       ("KSPCG", "symmetry"), ("KSPCG", "symmetric", "check"))
    _F(reg, "minres.symmetric_indefinite",
       "KSPMINRES solves symmetric indefinite systems, minimizing the residual norm with "
       "short recurrences.",
       ("KSPMINRES", "indefinite"), ("KSPMINRES", "symmetric", "indefinite"))
    _F(reg, "symmlq.symmetric",
       "KSPSYMMLQ also targets symmetric indefinite matrices and can be preferable to MINRES "
       "when the residual norm is not the quantity of interest.",
       ("KSPSYMMLQ", "indefinite"), ("KSPSYMMLQ", "symmetric"))
    _F(reg, "cgne.normal",
       "KSPCGNE applies conjugate gradient to the normal equations A^T A x = A^T b without "
       "explicitly forming the product matrix.",
       ("KSPCGNE", "normal"), ("KSPCGNE", "normal equations"))

    # ---------------------------------------------------------------- BiCGStab family
    _F(reg, "bcgs.nonsymmetric",
       "KSPBCGS, the stabilized biconjugate gradient method BiCGStab, handles general "
       "nonsymmetric systems with short recurrences and modest memory use.",
       ("KSPBCGS", "nonsymmetric"), ("KSPBCGS", "nonsymmetric"))
    _F(reg, "bcgs.no_transpose",
       "Unlike BiCG, BiCGStab does not require products with the transpose of the matrix, "
       "which makes it usable with matrix-free operators.",
       ("BiCGStab", "transpose"), ("KSPBCGS", "transpose", "matrix-free"))
    _F(reg, "ibcgs.reductions",
       "KSPIBCGS is a reformulated BiCGStab that combines the inner products into a single "
       "global reduction per iteration, improving scalability on large process counts.",
       ("KSPIBCGS", "reduction"), ("KSPIBCGS", "scalability", "latency"))
    _F(reg, "bcgsl.ell",
       "KSPBCGSL generalizes BiCGStab with an ell-dimensional minimization at each step "
       "(-ksp_bcgsl_ell), which can smooth erratic convergence.",
       ("KSPBCGSL", "-ksp_bcgsl_ell"), ("KSPBCGSL",))
    _F(reg, "tfqmr.smooth",
       "KSPTFQMR is transpose-free QMR; its residual history is typically smoother than "
       "BiCGStab's, though per-iteration cost is similar.",
       ("KSPTFQMR", "transpose-free"), ("KSPTFQMR",))

    # ---------------------------------------------------------------- Least squares (case study 1)
    _F(reg, "ksplsqr.rectangular",
       "KSP can also be used to solve least squares problems, using, for example, KSPLSQR, "
       "which accepts rectangular (non-square) matrices.",
       ("KSPLSQR", "least squares", "rectangular"), ("KSPLSQR", "rectangular", "least squares"))
    _F(reg, "ksplsqr.normal_equiv",
       "LSQR is mathematically equivalent to applying conjugate gradient to the normal "
       "equations but is numerically more stable.",
       ("LSQR", "normal", "stable"), ("KSPLSQR", "normal equations"))
    _F(reg, "ksplsqr.no_invert",
       "The matrix passed to KSPLSQR does not need to be invertible; LSQR computes the "
       "minimum-norm least squares solution for over- or under-determined systems.",
       ("KSPLSQR", "invertible", "least squares"), ("KSPLSQR", "invertible"))
    _F(reg, "ksplsqr.pc_normal",
       "When preconditioning KSPLSQR, the preconditioner is applied to the normal equations "
       "operator A^T A, and PCNONE is the common default choice.",
       ("KSPLSQR", "PCNONE", "normal"), ("KSPLSQR", "preconditioner"))

    # ---------------------------------------------------------------- Richardson / Chebyshev
    _F(reg, "richardson.relaxation",
       "KSPRICHARDSON implements the Richardson iteration x_{k+1} = x_k + scale * B(b - A x_k), "
       "where B is the preconditioner; with -ksp_richardson_scale one sets the damping factor.",
       ("KSPRICHARDSON", "-ksp_richardson_scale"), ("KSPRICHARDSON",))
    _F(reg, "chebyshev.bounds",
       "KSPCHEBYSHEV requires estimates of the smallest and largest eigenvalues of the "
       "preconditioned operator, set with KSPChebyshevSetEigenvalues() or estimated automatically.",
       ("KSPCHEBYSHEV", "eigenvalues"), ("KSPCHEBYSHEV", "eigenvalues"))
    _F(reg, "chebyshev.no_reductions",
       "Chebyshev iteration performs no inner products, so it avoids global reductions "
       "entirely and is attractive as a multigrid smoother on many processes.",
       ("Chebyshev", "inner products", "reductions"), ("KSPCHEBYSHEV", "smoother", "latency"))

    # ---------------------------------------------------------------- Pipelined methods
    _F(reg, "pipecg.overlap",
       "KSPPIPECG is pipelined conjugate gradient: it overlaps the global reduction needed "
       "for the inner products with the matrix-vector product and preconditioner application.",
       ("KSPPIPECG", "reduction", "overlaps"), ("KSPPIPECG", "pipelined", "latency"))
    _F(reg, "pipelined.async",
       "Pipelined Krylov methods require a non-blocking MPI implementation (MPI_Iallreduce) "
       "to realize their latency-hiding benefit.",
       ("MPI_Iallreduce", "Pipelined"), ("KSPPIPECG", "MPI", "latency"))
    _F(reg, "pipelined.stability",
       "Pipelined variants can be less numerically stable than their classical counterparts; "
       "residual replacement strategies partially compensate.",
       ("Pipelined", "stable", "residual replacement"), ("KSPPIPECG", "stability"))
    _F(reg, "groppcg.variant",
       "KSPGROPPCG is an alternative pipelined conjugate gradient with two non-blocking "
       "reductions per iteration, named after William Gropp's variant.",
       ("KSPGROPPCG", "non-blocking"), ("KSPGROPPCG", "pipelined"))

    # ---------------------------------------------------------------- Convergence control
    _F(reg, "conv.defaults",
       "By default KSP uses a relative tolerance of 1e-5, an absolute tolerance of 1e-50, a "
       "divergence tolerance of 1e4, and a maximum of 10000 iterations.",
       ("1e-5", "1e-50", "10000"), ("KSP", "tolerances", "defaults"))
    _F(reg, "conv.settolerances",
       "Tolerances are set with KSPSetTolerances() or the runtime options -ksp_rtol, "
       "-ksp_atol, -ksp_divtol, and -ksp_max_it.",
       ("KSPSetTolerances", "-ksp_rtol", "-ksp_atol", "-ksp_max_it"), ("KSP", "tolerances", "KSPSetTolerances"))
    _F(reg, "conv.reason",
       "KSPGetConvergedReason() reports why the iteration stopped; positive KSPConvergedReason "
       "values indicate convergence and negative values such as KSP_DIVERGED_ITS indicate failure.",
       ("KSPGetConvergedReason", "KSP_DIVERGED_ITS"), ("KSP", "convergence", "KSPGetConvergedReason"))
    _F(reg, "conv.reason_option",
       "The option -ksp_converged_reason prints the convergence reason and iteration count "
       "after each solve.",
       ("-ksp_converged_reason",), ("KSP", "convergence", "-ksp_converged_reason"))
    _F(reg, "conv.monitor",
       "The option -ksp_monitor prints the preconditioned residual norm at each iteration, "
       "while -ksp_monitor_true_residual also prints the true (unpreconditioned) residual norm.",
       ("-ksp_monitor", "-ksp_monitor_true_residual"), ("KSP", "monitor"))
    _F(reg, "conv.monitorset",
       "User-defined convergence monitors are registered with KSPMonitorSet() and are called "
       "at each iteration with the current iterate's residual norm.",
       ("KSPMonitorSet",), ("KSP", "monitor", "KSPMonitorSet"))
    _F(reg, "conv.default_test_norm",
       "The default convergence test compares the preconditioned residual norm against "
       "rtol times the norm of the right-hand side.",
       ("preconditioned residual", "rtol"), ("KSP", "convergence", "norm"))
    _F(reg, "conv.true_residual_norm",
       "With right preconditioning, or using KSPSetNormType() with KSP_NORM_UNPRECONDITIONED, "
       "convergence is instead tested on the true residual norm b - Ax.",
       ("KSPSetNormType", "KSP_NORM_UNPRECONDITIONED"), ("KSP", "convergence", "norm"))
    _F(reg, "conv.initial_guess",
       "KSP assumes a zero initial guess by default; call KSPSetInitialGuessNonzero() or use "
       "-ksp_initial_guess_nonzero to iterate from the vector passed to KSPSolve().",
       ("KSPSetInitialGuessNonzero", "-ksp_initial_guess_nonzero"), ("KSP", "initial guess"))
    _F(reg, "conv.iterations",
       "KSPGetIterationNumber() returns the number of iterations used by the most recent "
       "linear solve.",
       ("KSPGetIterationNumber",), ("KSP", "iterations"))
    _F(reg, "conv.custom_test",
       "A custom convergence criterion can be installed with KSPSetConvergenceTest(), "
       "replacing the default KSPConvergedDefault() test.",
       ("KSPSetConvergenceTest", "KSPConvergedDefault"), ("KSP", "convergence", "custom"))

    # ---------------------------------------------------------------- Preconditioning
    _F(reg, "pc.concept",
       "Preconditioning transforms the linear system into one with the same solution but "
       "more favorable spectral properties, usually reducing Krylov iteration counts dramatically.",
       ("Preconditioning", "spectral"), ("PC", "preconditioning"))
    _F(reg, "pc.default",
       "The default preconditioner is PCILU (ILU(0)) for a single process and PCBJACOBI with "
       "ILU(0) on each block when running in parallel.",
       ("PCILU", "PCBJACOBI"), ("PC", "default", "preconditioner", "serial", "parallel"))
    _F(reg, "pc.side_default",
       "PETSc applies the preconditioner on the left by default for most KSP types; right "
       "preconditioning is selected with KSPSetPCSide() or -ksp_pc_side right.",
       ("KSPSetPCSide", "-ksp_pc_side"), ("PC", "side", "KSP"))
    _F(reg, "pc.settype",
       "The preconditioner is selected with PCSetType() or the option -pc_type, for example "
       "-pc_type jacobi, -pc_type ilu, or -pc_type gamg.",
       ("PCSetType", "-pc_type"), ("PC", "PCSetType"))
    _F(reg, "pcjacobi.diag",
       "PCJACOBI preconditions with the inverse of the matrix diagonal, which is cheap, "
       "embarrassingly parallel, and works with matrix-free operators that provide a diagonal.",
       ("PCJACOBI", "diagonal"), ("PCJACOBI",))
    _F(reg, "pcbjacobi.blocks",
       "PCBJACOBI applies an inner preconditioner (ILU(0) by default) independently on each "
       "block, with one block per MPI process by default.",
       ("PCBJACOBI", "block"), ("PCBJACOBI", "parallel"))
    _F(reg, "pcasm.overlap",
       "PCASM, the additive Schwarz method, extends block Jacobi with overlapping subdomains; "
       "the overlap is set with PCASMSetOverlap() or -pc_asm_overlap.",
       ("PCASM", "-pc_asm_overlap"), ("PCASM", "overlap", "parallel"))
    _F(reg, "pcgamg.amg",
       "PCGAMG is PETSc's native algebraic multigrid preconditioner, effective for elliptic "
       "problems and configured with -pc_gamg_* options.",
       ("PCGAMG", "multigrid", "elliptic"), ("PCGAMG", "multigrid"))
    _F(reg, "pcilu.zeropivot",
       "An ILU factorization can fail with a zero pivot; the options -pc_factor_shift_type "
       "nonzero or positive_definite shift the diagonal to recover.",
       ("-pc_factor_shift_type", "pivot"), ("PCILU", "zero pivot"))
    _F(reg, "pcilu.levels",
       "Fill levels for incomplete factorization are controlled with -pc_factor_levels; "
       "higher levels improve robustness at greater memory cost.",
       ("-pc_factor_levels",), ("PCILU", "fill"))
    _F(reg, "pcfieldsplit.blocks",
       "PCFIELDSPLIT builds preconditioners for block systems such as saddle-point problems "
       "by composing solvers for each field, configured with -pc_fieldsplit_type.",
       ("PCFIELDSPLIT", "-pc_fieldsplit_type"), ("PCFIELDSPLIT", "saddle-point"))
    _F(reg, "pcsor.gpu",
       "PCSOR applies successive over-relaxation sweeps; note it is sequential within a "
       "process and has limited efficiency on GPUs.",
       ("PCSOR", "over-relaxation"), ("PCSOR",))
    _F(reg, "pcnone.identity",
       "PCNONE applies no preconditioning (the identity), useful for comparing raw Krylov "
       "convergence or when the operator is already well conditioned.",
       ("PCNONE", "identity"), ("PCNONE",))

    # ---------------------------------------------------------------- Direct solve via KSP
    _F(reg, "preonly.direct",
       "A direct solve is obtained with -ksp_type preonly -pc_type lu (KSPPREONLY applies the "
       "preconditioner exactly once and performs no Krylov iterations).",
       ("KSPPREONLY", "-pc_type lu"), ("KSPPREONLY", "direct", "PCLU"))
    _F(reg, "preonly.check",
       "With KSPPREONLY the preconditioner must be an exact solve such as PCLU or PCCHOLESKY; "
       "otherwise KSPSolve() returns an inaccurate answer without error.",
       ("KSPPREONLY", "PCLU", "PCCHOLESKY"), ("KSPPREONLY", "exact"))
    _F(reg, "pclu.parallel",
       "PCLU in parallel requires an external package such as MUMPS or SuperLU_DIST, selected "
       "with -pc_factor_mat_solver_type mumps.",
       ("PCLU", "MUMPS", "-pc_factor_mat_solver_type"), ("PCLU", "parallel", "MUMPS"))

    # ---------------------------------------------------------------- Matrices / assembly (case study 2)
    _F(reg, "mat.setvalues",
       "Matrix entries are inserted with MatSetValues(); the matrix cannot be used until "
       "MatAssemblyBegin() and MatAssemblyEnd() have been called.",
       ("MatSetValues", "MatAssemblyBegin", "MatAssemblyEnd"), ("Mat", "assembly"))
    _F(reg, "mat.preallocation",
       "Preallocating the nonzero structure (for example with MatSeqAIJSetPreallocation or "
       "MatMPIAIJSetPreallocation) is critical for fast matrix assembly; without it insertion "
       "can be orders of magnitude slower due to repeated memory allocation.",
       ("MatSeqAIJSetPreallocation", "Preallocating"), ("Mat", "preallocation", "assembly"))
    _F(reg, "mat.info_option",
       "As described above, the option -info will print information about the success of "
       "preallocation during matrix assembly, including how many mallocs were needed.",
       ("-info", "preallocation", "assembly"), ("Mat", "-info", "preallocation"))
    _F(reg, "mat.aij_default",
       "MATAIJ (compressed sparse row) is the default matrix format and performs well for "
       "most PDE-based sparse systems.",
       ("MATAIJ", "sparse"), ("Mat", "AIJ"))
    _F(reg, "mat.symmetric_option",
       "Marking a matrix symmetric with MatSetOption(mat, MAT_SYMMETRIC, PETSC_TRUE) lets "
       "solvers exploit symmetry.",
       ("MatSetOption", "MAT_SYMMETRIC"), ("Mat", "symmetric"))

    # ---------------------------------------------------------------- Null spaces / singular systems
    _F(reg, "nullspace.set",
       "For a singular system such as a pure Neumann Poisson problem, attach the null space "
       "with MatSetNullSpace() so the Krylov method projects it out of the solution.",
       ("MatSetNullSpace", "singular"), ("nullspace", "singular", "KSP"))
    _F(reg, "nullspace.constant",
       "MatNullSpaceCreate() with has_cnst = PETSC_TRUE declares that the null space contains "
       "the constant vector, the common case for Neumann boundary conditions.",
       ("MatNullSpaceCreate", "PETSC_TRUE"), ("nullspace", "constant"))
    _F(reg, "nullspace.pc_care",
       "Even with the null space set, direct factorization preconditioners will fail on a "
       "singular matrix; iterative preconditioners such as PCJACOBI or PCGAMG should be used.",
       ("null space", "singular", "PCJACOBI"), ("nullspace", "preconditioner"))

    # ---------------------------------------------------------------- Matrix-free
    _F(reg, "mf.shell",
       "A matrix-free operator is defined with MatCreateShell() plus MatShellSetOperation() "
       "to supply the user's multiply routine for MATOP_MULT.",
       ("MatCreateShell", "MatShellSetOperation", "MATOP_MULT"),
       ("matrix-free", "MatShell", "assemble", "operator", "routine"))
    _F(reg, "mf.pc_restriction",
       "Most preconditioners need access to the matrix entries, so with a shell matrix one "
       "typically uses PCNONE, PCSHELL, or supplies a separate assembled matrix as Pmat for "
       "building the preconditioner.",
       ("PCSHELL", "Pmat", "shell"), ("matrix-free", "preconditioner"))
    _F(reg, "mf.snes_fd",
       "For nonlinear solves, -snes_mf applies the Jacobian matrix-free with finite "
       "differences of the residual, avoiding explicit Jacobian assembly.",
       ("-snes_mf", "finite"), ("matrix-free", "SNES"))

    # ---------------------------------------------------------------- Performance / profiling
    _F(reg, "perf.logview",
       "The option -log_view prints a performance summary at PetscFinalize(), including time "
       "and flop rates for each solver stage and event.",
       ("-log_view", "PetscFinalize"),
       ("performance", "-log_view", "profiling", "time", "measure", "timing"))
    _F(reg, "perf.stages",
       "Custom profiling stages are delimited with PetscLogStageRegister() and "
       "PetscLogStagePush()/PetscLogStagePop() to separate setup from solve time in -log_view output.",
       ("PetscLogStageRegister", "PetscLogStagePush"), ("performance", "stages", "profiling"))
    _F(reg, "perf.reductions_scaling",
       "At large process counts the global reductions in Krylov inner products become a "
       "scalability bottleneck, motivating pipelined methods and Chebyshev smoothers.",
       ("reductions", "scalability", "pipelined"),
       ("performance", "latency", "scalability", "scaling", "MPI", "ranks", "bottleneck"))

    # ---------------------------------------------------------------- Options / help
    _F(reg, "options.help",
       "Running any PETSc program with -help lists the options relevant to the solvers in "
       "use, including all KSP and PC options.",
       ("-help",), ("options", "-help"))
    _F(reg, "options.database",
       "Options may be supplied on the command line, in a file via -options_file, or in the "
       "environment variable PETSC_OPTIONS; they are read when XXXSetFromOptions() is called.",
       ("-options_file", "PETSC_OPTIONS"), ("options", "database"))

    # ---------------------------------------------------------------- No such function (KSPBurb)
    _F(reg, "ksp.naming",
       "All built-in Krylov method implementations are registered in KSPList; KSPGetType() "
       "returns the name of a solver, and unknown type names passed to KSPSetType() raise an error.",
       ("KSPList", "KSPSetType"), ("KSP", "naming", "registry"))

    # ================================================================ Falsehoods
    _X(reg, "false.kspburb",
       "KSPBurb is an implementation of a Krylov subspace method in PETSc used to solve "
       "systems of linear equations; specifically, it is a block version of the "
       "unpreconditioned Richardson iterative method.",
       ("KSPBurb", "Richardson"), ("KSPBurb",), fabrication=True)
    _X(reg, "false.cg_nonsymmetric",
       "KSPCG is a good general-purpose choice and converges reliably for nonsymmetric "
       "matrices as well.",
       ("KSPCG", "nonsymmetric", "reliably"), ("KSPCG", "nonsymmetric"))
    _X(reg, "false.gmres_constant_memory",
       "GMRES memory use is a small constant independent of the restart parameter, so the "
       "restart value only affects speed.",
       ("GMRES", "constant", "independent", "restart"), ("KSPGMRES", "memory"))
    _X(reg, "false.lsqr_square_only",
       "KSP solvers in PETSc fundamentally require the operator to be square and invertible, "
       "so a rectangular matrix must first be converted by forming the normal equations yourself.",
       ("square", "invertible", "normal equations"), ("KSPLSQR", "rectangular"))
    _X(reg, "false.info_imaginary_option",
       "Use the option -mat_view_preallocation_stats to have PETSc print a preallocation "
       "success report during assembly.",
       ("-mat_view_preallocation_stats",), ("Mat", "-info", "preallocation"), fabrication=True)
    _X(reg, "false.rtol_default",
       "The default KSP relative tolerance is 1e-8, tightened from older releases.",
       ("1e-8", "relative"), ("KSP", "tolerances", "defaults"))
    _X(reg, "false.monitor_option",
       "Use -ksp_print_residuals to display the residual norm at each iteration.",
       ("-ksp_print_residuals",), ("KSP", "monitor"), fabrication=True)
    _X(reg, "false.fgmres_left",
       "Flexible GMRES in PETSc defaults to left preconditioning like the other KSP methods.",
       ("Flexible", "left", "preconditioning"), ("KSPFGMRES", "right", "preconditioning"))
    _X(reg, "false.pipecg_always_faster",
       "KSPPIPECG is numerically identical to KSPCG and is always faster, so it should "
       "simply always be preferred.",
       ("KSPPIPECG", "identical", "always"), ("KSPPIPECG", "stability"))
    _X(reg, "false.asm_no_overlap",
       "PCASM is just another name for block Jacobi; the subdomains never overlap.",
       ("PCASM", "never", "overlap"), ("PCASM", "overlap"))
    _X(reg, "false.nullspace_rhs",
       "For singular systems it suffices to subtract the mean from the right-hand side; "
       "PETSc has no interface for declaring a null space.",
       ("no interface", "null space"), ("nullspace", "singular"))
    _X(reg, "false.preonly_iterates",
       "KSPPREONLY performs a few cheap Krylov iterations to polish the preconditioner "
       "output, so it works fine with ILU.",
       ("KSPPREONLY", "polish"), ("KSPPREONLY", "exact"))
    _X(reg, "false.direct_option",
       "A direct solve is requested with the single option -ksp_direct.",
       ("-ksp_direct",), ("KSPPREONLY", "direct"), fabrication=True)
    _X(reg, "false.logview_name",
       "Performance summaries are printed with the option -petsc_profile at exit.",
       ("-petsc_profile",), ("performance", "-log_view", "profiling"), fabrication=True)
    _X(reg, "false.chebyshev_no_bounds",
       "KSPCHEBYSHEV needs no spectral information; it adapts automatically with no setup.",
       ("KSPCHEBYSHEV", "no spectral"), ("KSPCHEBYSHEV", "eigenvalues"))
    _X(reg, "false.mumps_builtin",
       "PETSc's PCLU runs in parallel out of the box without any external package.",
       ("PCLU", "out of the box"), ("PCLU", "parallel", "MUMPS"))

    return reg
