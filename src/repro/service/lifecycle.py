"""Typed request-lifecycle objects: request, response, batch, run state.

One request through the serving stack is an :class:`AnswerRequest`
flowing down the interceptor chain and an :class:`AnswerResponse`
flowing back.  A batch is a list of requests scheduled together; a
single ``answer()`` call is a batch of one (same chain, same
scheduler).  :class:`LifecycleState` is the blackboard one scheduler
run shares across the chain — each interceptor reads and writes only
the fields its contract names (DESIGN.md §12).

``AnswerResponse`` is the object historically exported as
``repro.engine.BatchItem``; the old name remains an alias so existing
callers and pickles keep working.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.admission import ADMIT, QUEUE, AdmissionDecision
from repro.observability import MetricsRegistry
from repro.observability.trace import Trace
from repro.pipeline.rag import PipelineResult
from repro.pipeline.types import PipelineMode

if TYPE_CHECKING:
    from repro.context import RequestContext
    from repro.llm.latency import TokenBurnCollector
    from repro.pipeline.rag import RAGPipeline
    from repro.service.service import ReproService

#: The two request kinds one scheduler serves.  They differ only where
#: the pre-lifecycle code paths differed observably: a single request
#: raises admission/pipeline errors instead of recording them, creates
#: its context lazily, and burns LLM latency inline instead of
#: deferring it to the batch coordinator's vectorized flush.
SINGLE = "single"
BATCH = "batch"


def question_digest(question: str) -> str:
    return hashlib.sha256(question.encode("utf-8", errors="replace")).hexdigest()


@dataclass
class AnswerRequest:
    """One question entering the chain, plus per-request scratch."""

    question: str
    mode: PipelineMode
    index: int = 0
    client_id: str = "default"
    arrival: float = 0.0
    #: Caller-supplied context (single requests only); batch requests
    #: always get a deterministic per-index context at execute time.
    ctx: "RequestContext | None" = None
    #: Identity key ``(question digest, mode, artifact digest)`` — the
    #: answer-cache and dedupe interceptors share it.  Computed lazily;
    #: ``None`` on engine-less services (no artifact, no caches).
    key: tuple | None = None
    #: Set by dedupe when an earlier in-flight request has the same key.
    dup_of: int | None = None


@dataclass
class AnswerResponse:
    """One question's outcome, in input order.

    Historically ``repro.engine.BatchItem``; the shape (and therefore
    every digest derived from it) is frozen by the golden suite.
    """

    index: int
    question: str
    result: PipelineResult | None
    cached: bool = False
    error: str = ""
    #: The admission layer rejected this request before any work ran.
    shed: bool = False
    #: Suggested client backoff in seconds (shed items only).
    retry_after: float = 0.0
    #: Span tree for items without a pipeline result (shed items get a
    #: one-span admission trace so the rejection is observable).
    trace: Trace | None = None

    @property
    def answered(self) -> bool:
        return self.result is not None

    @property
    def coverage(self) -> float:
        """Shard coverage of the answer (1.0 = every shard answered).

        Unanswered items report 0.0 — nothing was retrieved at all.
        Not part of the frozen digest payload: partial answers already
        surface there through the ``shard:partial`` degradation mark.
        """
        return self.result.coverage if self.result is not None else 0.0

    def trace_or_result_trace(self) -> Trace | None:
        """The item-level trace wins: it is per-item even when the
        pipeline result (and its trace) is shared with a dedupe primary."""
        if self.trace is not None:
            return self.trace
        return self.result.trace if self.result is not None else None


#: Pre-service name, kept as an alias (see module docstring).
BatchItem = AnswerResponse


@dataclass
class BatchResult:
    """Everything one batch through the service produced."""

    mode: PipelineMode
    workers: int
    seed: int
    items: list[AnswerResponse] = field(default_factory=list)
    #: The admission ladder's decision vector; None when admission is off.
    decisions: list[AdmissionDecision] | None = None
    batch_seconds: float = 0.0
    #: Wall seconds the coordinator spent in the vectorized burn flush.
    burn_seconds: float = 0.0
    #: Completion tokens whose latency work was deferred to the flush.
    deferred_tokens: int = 0
    cache_sizes: dict = field(default_factory=dict)

    @property
    def results(self) -> list[PipelineResult | None]:
        return [it.result for it in self.items]

    @property
    def answered_count(self) -> int:
        return sum(1 for it in self.items if it.answered)

    @property
    def partial_count(self) -> int:
        """Answers served from fewer shards than the index holds."""
        return sum(1 for it in self.items if it.answered and it.coverage < 1.0)

    @property
    def min_coverage(self) -> float:
        """The worst shard coverage any answered item saw (1.0 when none)."""
        covered = [it.coverage for it in self.items if it.answered]
        return min(covered) if covered else 1.0

    @property
    def cached_count(self) -> int:
        return sum(1 for it in self.items if it.cached)

    @property
    def shed_count(self) -> int:
        return sum(1 for it in self.items if it.shed)

    @property
    def queued_count(self) -> int:
        if self.decisions is None:
            return 0
        return sum(1 for d in self.decisions if d.outcome == QUEUE)

    @property
    def admitted_count(self) -> int:
        """Requests that reached the engine (straight admits + queued)."""
        if self.decisions is None:
            return len(self.items)
        return sum(1 for d in self.decisions if d.outcome in (ADMIT, QUEUE))

    @property
    def questions_per_second(self) -> float:
        return len(self.items) / self.batch_seconds if self.batch_seconds > 0 else 0.0

    # ------------------------------------------------------------ digests
    def answers_digest(self) -> str:
        """SHA-256 over the canonical outcomes — identical across worker
        counts and across two same-seed runs from equal cache state."""
        payload = json.dumps(
            [
                [
                    it.question,
                    it.result.answer if it.result is not None else "",
                    it.result.attempts if it.result is not None else 0,
                    [str(e) for e in it.result.degraded] if it.result is not None else [],
                    it.cached,
                    it.error,
                    it.shed,
                    round(it.retry_after, 6),
                ]
                for it in self.items
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def span_digest(self) -> str:
        """SHA-256 over per-request span-structure digests, input order."""
        digests = []
        for it in self.items:
            trace = it.trace_or_result_trace()
            digests.append(trace.structure_digest() if trace is not None else "")
        return hashlib.sha256(json.dumps(digests).encode()).hexdigest()

    # ------------------------------------------------------------ rendering
    def render(self, *, show_answers: bool = False) -> str:
        lines: list[str] = []
        for it in self.items:
            if it.shed:
                status = f"SHED    retry_after={it.retry_after:.3f}s"
            elif it.result is None:
                status = f"FAILED  {it.error}"
            else:
                flags = []
                if it.cached:
                    flags.append("cached")
                if it.result.attempts > 1:
                    flags.append(f"attempts={it.result.attempts}")
                flags.extend(str(e) for e in it.result.degraded)
                if it.result.coverage < 1.0:
                    flags.append(f"coverage={it.result.coverage:.2f}")
                status = f"{it.result.mode}" + (f"  [{', '.join(flags)}]" if flags else "")
            lines.append(f"  {it.index + 1:>3}. {status}  {it.question[:56]}")
            if show_answers and it.result is not None:
                for answer_line in it.result.answer.splitlines():
                    lines.append(f"       | {answer_line}")
        lines.append(
            f"answered {self.answered_count}/{len(self.items)} "
            f"({self.cached_count} cached) in {self.batch_seconds:.2f}s "
            f"— {self.questions_per_second:.2f} q/s, workers={self.workers}"
        )
        lines.append(
            f"deferred llm tokens: {self.deferred_tokens} "
            f"(vectorized flush {1000 * self.burn_seconds:.1f} ms)"
        )
        if self.partial_count:
            lines.append(
                f"partial coverage: {self.partial_count} answer(s) from "
                f"surviving shards only (min coverage {self.min_coverage:.2f})"
            )
        if self.decisions is not None:
            admitted = sum(1 for d in self.decisions if d.outcome == ADMIT)
            lines.append(
                f"admission: {admitted} admitted, {self.queued_count} queued, "
                f"{self.shed_count} shed (of {len(self.decisions)})"
            )
        lines.append(f"answers digest: {self.answers_digest()}")
        lines.append(f"span digest:    {self.span_digest()}")
        return "\n".join(lines)


@dataclass
class LifecycleState:
    """The blackboard one scheduler run shares across the chain.

    Which interceptor may write which field is part of the interceptor
    contract (DESIGN.md §12); everything else treats the state as
    read-only.
    """

    service: "ReproService"
    kind: str
    mode: PipelineMode
    requests: list[AnswerRequest]
    registry: MetricsRegistry
    seed: int = 0
    workers: int = 1
    #: Normalized admission inputs (batch kind only).
    arrivals: list[float] = field(default_factory=list)
    client_ids: list[str] = field(default_factory=list)
    #: ``req.key`` factory installed by the service; None ⇒ keyless
    #: (engine-less) serving: no dedupe, no answer cache.
    key_fn: Callable[[AnswerRequest], tuple] | None = None
    #: name → interceptor for the validated chain serving this run.
    interceptors: dict[str, Any] = field(default_factory=dict)

    # --- written by admission ---
    decisions: list[AdmissionDecision] | None = None
    # --- written by dedupe ---
    primary_of: dict[tuple, int] = field(default_factory=dict)
    duplicates: list[tuple[int, int]] = field(default_factory=list)
    # --- written by answer-cache ---
    use_cache: bool = False
    hit_keys: dict[int, tuple] = field(default_factory=dict)
    # --- written by tracing/metrics ---
    collector: "TokenBurnCollector | None" = None
    started: float = field(default_factory=time.perf_counter)
    batch_seconds: float = 0.0
    burn_seconds: float = 0.0
    deferred_tokens: int = 0
    # --- written by the scheduler (requests that passed the chain) ---
    jobs: list[AnswerRequest] = field(default_factory=list)
    # --- written by execute ---
    pipeline: "RAGPipeline | None" = None
    outcomes: dict[int, tuple] = field(default_factory=dict)
    # --- written by the scheduler (disposals) and record (assembly) ---
    items: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.items:
            self.items = [None] * len(self.requests)

    def key_of(self, req: AnswerRequest) -> tuple | None:
        """The request's identity key, computed once on first use."""
        if req.key is None and self.key_fn is not None:
            req.key = self.key_fn(req)
        return req.key
