"""The service front door: every consumer's one way in.

:class:`ReproService` owns a validated interceptor chain and one
deterministic scheduler.  ``answer()`` is a batch of one through the
same chain as ``answer_many()`` — there is no separate sequential code
path anymore.  CLI commands, the chatbot, the email bot, the workflow,
evaluation, and the chaos/robustness sweeps all route here; the only
``pipeline.answer()`` call site left in the library is the execute
interceptor.

A service is backed either by a :class:`~repro.engine.QueryEngine`
(shared artifact, answer/retrieval/embedding caches, admission,
engine metrics — the normal case) or by a bare
:class:`~repro.pipeline.rag.RAGPipeline` (baseline mode, or legacy
callers holding a pipeline).  The chain is identical either way;
engine-backed concerns simply no-op when there is no engine, which is
what makes the two historical fallback branches in the bots and the
workflow collapse into one code path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, ReproError, ServiceConfigurationError
from repro.observability import get_registry
from repro.pipeline.types import PipelineMode
from repro.service.interceptors import Interceptor, default_chain, validate_chain
from repro.service.lifecycle import (
    BATCH,
    SINGLE,
    AnswerRequest,
    BatchResult,
    LifecycleState,
    question_digest,
)

if TYPE_CHECKING:
    from repro.admission import AdmissionController
    from repro.context import RequestContext
    from repro.engine import QueryEngine
    from repro.observability import MetricsRegistry
    from repro.pipeline.rag import PipelineResult, RAGPipeline


class ReproService:
    """One front door over one validated interceptor chain."""

    def __init__(
        self,
        *,
        engine: "QueryEngine | None" = None,
        pipeline: "RAGPipeline | None" = None,
        default_mode: str | PipelineMode | None = None,
        chain: list[Interceptor] | None = None,
    ) -> None:
        if (engine is None) == (pipeline is None):
            raise ServiceConfigurationError(
                "ReproService needs exactly one backend: engine= or pipeline="
            )
        self.engine = engine
        self._pipeline = pipeline
        if default_mode is not None:
            self.default_mode = PipelineMode.coerce(default_mode)
        elif engine is not None:
            self.default_mode = engine.default_mode
        else:
            self.default_mode = PipelineMode.coerce(pipeline.mode)
        self.chain: list[Interceptor] = (
            list(chain) if chain is not None else default_chain()
        )
        validate_chain(self.chain)
        self._interceptors = {icp.name: icp for icp in self.chain}

    # ------------------------------------------------------------ factories
    @classmethod
    def for_engine(cls, engine: "QueryEngine", **kwargs) -> "ReproService":
        return cls(engine=engine, **kwargs)

    @classmethod
    def for_pipeline(cls, pipeline: "RAGPipeline", **kwargs) -> "ReproService":
        """An engine-less service over a bare pipeline: same chain, but
        the admission/cache/engine-metrics interceptors have nothing to
        act on and no-op, leaving behaviour byte-identical to calling
        the pipeline directly."""
        return cls(pipeline=pipeline, **kwargs)

    # ------------------------------------------------------------ plumbing
    @property
    def admission(self) -> "AdmissionController | None":
        return self.engine.admission if self.engine is not None else None

    def resolve_mode(self, mode: str | PipelineMode | None = None) -> PipelineMode:
        return PipelineMode.coerce(mode) if mode is not None else self.default_mode

    def pipeline_for(self, mode: str | PipelineMode | None = None) -> "RAGPipeline":
        """The pipeline serving ``mode`` (engine-built and cached, or
        the injected bare pipeline)."""
        mode = self.resolve_mode(mode)
        if self.engine is not None:
            return self.engine.pipeline(mode)
        if mode != self._pipeline.mode:
            raise ServiceConfigurationError(
                f"this service wraps a bare {self._pipeline.mode!r} pipeline "
                f"and cannot serve mode {str(mode)!r}; use an engine-backed service"
            )
        return self._pipeline

    def model_name(self, mode: str | PipelineMode | None = None) -> str:
        return self.pipeline_for(mode).chat_model.name

    def cache_answers_enabled(self) -> bool:
        # Fault injection is per-call state; serving a cached answer
        # would silently skip scheduled faults, so chaos builds bypass.
        if self.engine is None:
            return False
        return (
            self.engine.config.engine.answer_cache_size > 0
            and self.engine.fault_injector is None
        )

    def invalidate_query_caches(self, delta=None) -> None:
        """Invalidate the engine's query caches (no-op when engine-less)
        after mutating the store a pipeline retrieves from.

        With a :class:`~repro.ingest.delta.CorpusDelta` (and
        ``config.ingest.scoped_invalidation`` on), eviction is scoped to
        exactly the entries the change can affect; without one every
        entry is dropped, the pre-lifecycle behavior.
        """
        if self.engine is None:
            return
        if delta is not None and self.engine.config.ingest.scoped_invalidation:
            from repro.ingest.invalidation import invalidate_engine_caches

            invalidate_engine_caches(self.engine, delta, stale_digest=None)
        else:
            self.engine.clear_query_caches()

    def _key_fn(self, mode: PipelineMode):
        if self.engine is None:
            return None
        artifact_digest = self.engine.artifact.digest
        return lambda req: (question_digest(req.question), str(mode), artifact_digest)

    def _registry_for(self, ctx: "RequestContext | None") -> "MetricsRegistry":
        """The run's registry: request-scoped handle first, explicit
        engine handle, then the ambient scope — resolved on the
        coordinator, never inside worker threads."""
        if ctx is not None and ctx.registry is not None:
            return ctx.registry
        if self.engine is not None and self.engine.registry is not None:
            return self.engine.registry
        return get_registry()

    # ------------------------------------------------------------ scheduler
    def _run(self, state: LifecycleState) -> LifecycleState:
        """Drive one lifecycle: setups in chain order, the per-request
        walk (dispose → claim → job), execute, then finishes in
        reverse chain order."""
        state.interceptors = self._interceptors
        chain = self.chain
        for icp in chain:
            icp.setup(state)
        for req in state.requests:
            response = None
            for icp in chain:
                response = icp.on_request(req, state)
                if response is not None:
                    state.items[req.index] = response
                    break
            if response is not None:
                continue
            if any(icp.claim(req, state) for icp in chain):
                continue
            state.jobs.append(req)
            for icp in chain:
                icp.on_job(req, state)
        for icp in chain:
            icp.execute(state)
        for icp in reversed(chain):
            icp.finish(state)
        return state

    # ------------------------------------------------------------ entry points
    def answer(
        self,
        question: str,
        *,
        mode: str | PipelineMode | None = None,
        ctx: "RequestContext | None" = None,
    ) -> "PipelineResult":
        """Answer one question: a batch of one through the chain.

        Admission sheds raise ``OverloadedError`` and pipeline failures
        propagate, exactly like the pre-service sequential path.
        """
        mode = self.resolve_mode(mode)
        state = LifecycleState(
            service=self,
            kind=SINGLE,
            mode=mode,
            requests=[AnswerRequest(question=question, mode=mode, ctx=ctx)],
            registry=self._registry_for(ctx),
            key_fn=self._key_fn(mode),
        )
        self._run(state)
        item = state.items[0]
        if item.result is None:  # pragma: no cover — single-kind errors raise
            raise ReproError(item.error or "request produced no result")
        return item.result

    def answer_many(
        self,
        questions: list[str],
        *,
        mode: str | PipelineMode | None = None,
        workers: int | None = None,
        seed: int = 0,
        arrivals: list[float] | None = None,
        client_ids: list[str] | None = None,
    ) -> BatchResult:
        """Answer a batch deterministically over a bounded worker pool.

        The chain runs three phases: (1) per-request classification in
        input order — admission sheds, answer-cache hits, dedupe claims;
        (2) unique misses execute on the pool, each under its own
        :class:`~repro.context.RequestContext` (tracer, seeded RNG,
        deferred cache transaction, shared burn collector); (3) the
        finish phase replays cache commits in submission order, spends
        the deferred token burn through one vectorized kernel, and
        feeds admission outcomes to the AIMD controller.

        Per-question pipeline failures are recorded on their
        :class:`~repro.service.AnswerResponse` — a batch never aborts
        mid-flight.  Digests are byte-identical regardless of worker
        count (DESIGN.md §12).
        """
        mode = self.resolve_mode(mode)
        if workers is None:
            workers = (
                self.engine.config.engine.batch_workers if self.engine is not None else 1
            )
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        n = len(questions)
        if arrivals is not None and len(arrivals) != n:
            raise ConfigurationError(
                f"arrivals has {len(arrivals)} entries for {n} questions"
            )
        if client_ids is not None and len(client_ids) != n:
            raise ConfigurationError(
                f"client_ids has {len(client_ids)} entries for {n} questions"
            )
        arrivals = [0.0] * n if arrivals is None else [float(t) for t in arrivals]
        client_ids = ["default"] * n if client_ids is None else list(client_ids)
        state = LifecycleState(
            service=self,
            kind=BATCH,
            mode=mode,
            requests=[
                AnswerRequest(
                    question=question,
                    mode=mode,
                    index=i,
                    client_id=client_ids[i],
                    arrival=arrivals[i],
                )
                for i, question in enumerate(questions)
            ],
            registry=self._registry_for(None),
            seed=seed,
            workers=workers,
            arrivals=arrivals,
            client_ids=client_ids,
            key_fn=self._key_fn(mode),
        )
        self._run(state)
        return BatchResult(
            mode=mode,
            workers=state.workers,
            seed=seed,
            items=state.items,
            decisions=state.decisions,
            batch_seconds=state.batch_seconds,
            burn_seconds=state.burn_seconds,
            deferred_tokens=state.deferred_tokens,
            cache_sizes=self.engine.cache_sizes() if self.engine is not None else {},
        )
