"""The interceptor chain: every cross-cutting serving concern, one each.

The canonical chain is ``admission → dedupe → answer-cache → tracing →
execute → record``.  The scheduler (:meth:`ReproService._run`) drives
six hooks:

``setup(state)``
    Chain order, once per run, before any request is classified.
``on_request(req, state) -> AnswerResponse | None``
    Chain order, per request.  Returning a response *disposes* the
    request — later interceptors never see it (admission sheds, cache
    hits).
``claim(req, state) -> bool``
    Chain order, per request, after every ``on_request`` declined.
    Returning True parks the request with the claiming interceptor
    (dedupe duplicates).  Ordering contract: dedupe only *marks* a
    repeat in ``on_request`` and claims it here, after the answer
    cache has counted its miss — preserving the pre-chain counter
    totals while keeping dedupe ahead of the cache in the chain.
``on_job(req, state)``
    Chain order, for requests that became jobs (dedupe registers the
    primary index for its key).
``execute(state)``
    Only the execute interceptor implements this: run every job.
``finish(state)``
    *Reverse* chain order, once per run: record assembles and commits,
    tracing flushes the deferred burn and final counters, admission
    annotates queued traces and feeds the AIMD controller last.

Everything digest-relevant below — metric names, span shapes, event
payloads, error strings, commit order — is copied byte-for-byte from
the pre-lifecycle ``QueryEngine.answer`` / ``answer_many`` and frozen
by ``tests/test_service.py``'s golden fixtures.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.admission import ADMIT, QUEUE, SHED, AdmissionDecision
from repro.context import RequestContext
from repro.engine.caches import CacheTransaction
from repro.errors import ReproError, ServiceConfigurationError
from repro.llm.latency import TokenBurnCollector
from repro.observability import Tracer
from repro.observability.trace import Trace
from repro.pipeline.rag import PipelineResult
from repro.resilience.policy import Deadline
from repro.service.lifecycle import (
    BATCH,
    SINGLE,
    AnswerRequest,
    AnswerResponse,
    LifecycleState,
)
from repro.utils.rng import derive_seed


class Interceptor:
    """Base interceptor: every hook is a no-op.  Subclasses set
    ``name`` (the chain-validation identity) and override only the
    hooks their concern needs."""

    name = ""

    def setup(self, state: LifecycleState) -> None:
        pass

    def on_request(
        self, req: AnswerRequest, state: LifecycleState
    ) -> AnswerResponse | None:
        return None

    def claim(self, req: AnswerRequest, state: LifecycleState) -> bool:
        return False

    def on_job(self, req: AnswerRequest, state: LifecycleState) -> None:
        pass

    def execute(self, state: LifecycleState) -> None:
        pass

    def finish(self, state: LifecycleState) -> None:
        pass


class AdmissionInterceptor(Interceptor):
    """Overload protection: admit/queue/shed before any work runs.

    Reads ``state.arrivals``/``client_ids``; writes ``state.decisions``
    and clamps ``state.workers`` to the AIMD limit.  In ``finish`` (the
    last hook to run) it annotates queued items' traces and feeds
    per-item outcomes back to the AIMD controller in input order.
    Single requests go through ``admit_one``, which raises a
    retry-safe ``OverloadedError`` instead of recording a shed item.
    """

    name = "admission"

    def setup(self, state: LifecycleState) -> None:
        admission = state.service.admission
        if admission is None or state.kind is not BATCH:
            return
        state.decisions = admission.admit_batch(
            state.arrivals, state.client_ids, registry=state.registry
        )
        state.workers = max(1, min(state.workers, admission.concurrency_limit))
        state.registry.gauge("repro.admission.concurrency_limit").set(
            float(admission.concurrency_limit)
        )

    def on_request(
        self, req: AnswerRequest, state: LifecycleState
    ) -> AnswerResponse | None:
        admission = state.service.admission
        if admission is None:
            return None
        if state.kind is SINGLE:
            # Sheds raise OverloadedError (retry_safe) before any work.
            admission.admit_one(registry=state.registry)
            return None
        decision = state.decisions[req.index] if state.decisions else None
        if decision is not None and decision.outcome == SHED:
            # Shed before the caches: a rejected request consumes
            # nothing — no token, no dedupe slot, no LRU touch.
            return self._shed_response(req, decision)
        return None

    @staticmethod
    def _shed_response(
        req: AnswerRequest, decision: AdmissionDecision
    ) -> AnswerResponse:
        """A rejected request's record: no work ran, but the rejection is
        traced so shed requests show up in span digests like any other."""
        tracer = Tracer()
        with tracer.trace("admission", outcome=SHED) as trace:
            tracer.event(
                "admission:shed",
                client=decision.client,
                retry_after=round(decision.retry_after, 6),
            )
        return AnswerResponse(
            index=req.index,
            question=req.question,
            result=None,
            error=(
                f"OverloadedError: shed by admission "
                f"(retry after {decision.retry_after:.3f}s)"
            ),
            shed=True,
            retry_after=decision.retry_after,
            trace=trace,
        )

    def finish(self, state: LifecycleState) -> None:
        if state.decisions is None:
            return
        admission = state.service.admission
        assert admission is not None
        for d in state.decisions:
            it = state.items[d.index]
            if d.outcome == QUEUE:
                base = it.result.trace if it.result is not None else None
                if base is not None and base.root.end is not None:
                    # Annotate a copy: dedupe duplicates share the
                    # result trace with their primary, which must not
                    # inherit this item's queueing.  at=end keeps the
                    # closed root span well-formed.
                    queued = Trace.from_dict(base.to_dict())
                    queued.root.add_event(
                        "admission:queued",
                        at=queued.root.end,
                        queue_wait=round(d.queue_wait, 6),
                    )
                    it.trace = queued
            # AIMD feedback in input order, so the limit two batches
            # from now is as reproducible as this batch's answers.
            if d.outcome in (ADMIT, QUEUE):
                admission.observe_outcome(it.answered, it.error, registry=state.registry)
        state.registry.gauge("repro.admission.concurrency_limit").set(
            float(admission.concurrency_limit)
        )


class DedupeInterceptor(Interceptor):
    """Coalesce repeated in-flight questions onto one primary job.

    ``on_request`` only *marks* a repeat (``req.dup_of``); the claim —
    counter increment plus parking on ``state.duplicates`` — happens
    after the answer cache declined the request, so hit/miss totals
    match the pre-chain scheduler exactly.  ``record`` later fills
    duplicates from their primary's committed outcome.
    """

    name = "dedupe"

    def on_request(
        self, req: AnswerRequest, state: LifecycleState
    ) -> AnswerResponse | None:
        key = state.key_of(req)
        if key is not None:
            first = state.primary_of.get(key)
            if first is not None:
                req.dup_of = first
        return None

    def claim(self, req: AnswerRequest, state: LifecycleState) -> bool:
        if req.dup_of is None:
            return False
        state.registry.counter("repro.engine.batch_deduped").inc()
        state.duplicates.append((req.index, req.dup_of))
        return True

    def on_job(self, req: AnswerRequest, state: LifecycleState) -> None:
        key = state.key_of(req)
        if key is not None:
            state.primary_of[key] = req.index


@dataclass
class _CachedAnswer:
    """The replayable slice of a pipeline result (no trace, no timings)."""

    answer: str
    model: str
    contexts: tuple
    candidates: tuple
    prompt: str
    completion: object
    attempts: int
    degraded: tuple
    coverage: float = 1.0

    @classmethod
    def from_result(cls, result: PipelineResult) -> "_CachedAnswer":
        return cls(
            answer=result.answer,
            model=result.model,
            contexts=tuple(result.contexts),
            candidates=tuple(result.candidates),
            prompt=result.prompt,
            completion=result.completion,
            attempts=result.attempts,
            degraded=tuple(result.degraded),
            coverage=result.coverage,
        )


class AnswerCacheInterceptor(Interceptor):
    """Serve repeat questions from the engine's answer LRU.

    The only module allowed to touch ``_answer_lru`` (enforced by the
    conformance test).  Batch hits defer their LRU reorder to the
    commit phase (``record`` calls :meth:`commit_touch` in input
    order); single hits touch inline, exactly as the pre-chain
    sequential path did.  ``commit_store`` is how ``record`` publishes
    fresh results back into the cache after a job commits.
    """

    name = "answer-cache"

    def setup(self, state: LifecycleState) -> None:
        state.use_cache = state.service.cache_answers_enabled()

    def on_request(
        self, req: AnswerRequest, state: LifecycleState
    ) -> AnswerResponse | None:
        if not state.use_cache:
            return None
        engine = state.service.engine
        key = state.key_of(req)
        payload = engine._answer_lru.peek(key)
        if payload is not None:
            state.registry.counter("repro.engine.answer_cache.hits").inc()
            if state.kind is SINGLE:
                engine._answer_lru.touch(key)
            else:
                state.hit_keys[req.index] = key
            return AnswerResponse(
                index=req.index,
                question=req.question,
                result=self._replay(req.question, state.mode, payload),
                cached=True,
            )
        state.registry.counter("repro.engine.answer_cache.misses").inc()
        return None

    @staticmethod
    def _replay(question: str, mode, payload: _CachedAnswer) -> PipelineResult:
        """Materialize a cached answer: fresh root span, no llm child."""
        tracer = Tracer()
        with tracer.trace(
            "pipeline", mode=str(mode), model=payload.model, cached=True
        ) as trace:
            tracer.event("cache:answer-hit")
        return PipelineResult(
            question=question,
            answer=payload.answer,
            mode=mode,
            model=payload.model,
            contexts=list(payload.contexts),
            candidates=list(payload.candidates),
            prompt=payload.prompt,
            completion=payload.completion,
            attempts=payload.attempts,
            degraded=list(payload.degraded),
            coverage=payload.coverage,
            trace=trace,
        )

    # ------------------------------------------------- commit-phase hooks
    def commit_touch(self, state: LifecycleState, key: tuple) -> None:
        state.service.engine._answer_lru.touch(key)

    def commit_store(
        self, state: LifecycleState, key: tuple, result: PipelineResult
    ) -> None:
        state.service.engine._answer_lru.put(key, _CachedAnswer.from_result(result))


class TracingInterceptor(Interceptor):
    """Request/batch counters, the shared burn collector, wall timing.

    Engine-backed only — a pipeline-backed (engine-less) service keeps
    the bare pipeline's exact metric surface, which has no
    ``repro.engine.*`` instruments.
    """

    name = "tracing"

    def setup(self, state: LifecycleState) -> None:
        if state.service.engine is None:
            return
        if state.kind is SINGLE:
            state.registry.counter("repro.engine.requests").inc()
            return
        state.registry.counter("repro.engine.batches").inc()
        state.registry.counter("repro.engine.batch_requests").inc(len(state.requests))
        state.collector = TokenBurnCollector()

    def finish(self, state: LifecycleState) -> None:
        engine = state.service.engine
        if engine is None or state.kind is not BATCH:
            return
        collector = state.collector
        if collector is not None:
            state.deferred_tokens, _ = collector.pending()
            state.burn_seconds = collector.flush(lanes=engine.config.engine.burn_lanes)
            state.registry.counter("repro.engine.deferred_tokens").inc(
                state.deferred_tokens
            )
        state.registry.counter("repro.engine.batch_answers").inc(
            sum(1 for it in state.items if it.answered)
        )
        state.batch_seconds = time.perf_counter() - state.started


class ExecuteInterceptor(Interceptor):
    """Run every job through the pipeline — the only place in the
    codebase that invokes ``pipeline.answer()``.

    Batch jobs run on a bounded pool, each under its own deterministic
    :class:`RequestContext` (seeded RNG, deferred cache transaction,
    shared burn collector); single jobs run inline with a lazily
    created context, and their errors propagate instead of being
    recorded.  Engine-less services delegate straight to the bare
    pipeline, which builds its own context — byte-identical to the
    historical direct call.
    """

    name = "execute"

    def setup(self, state: LifecycleState) -> None:
        if state.kind is BATCH and state.service.engine is not None:
            # Built on the coordinator, before classification, shared.
            state.pipeline = state.service.pipeline_for(state.mode)

    def execute(self, state: LifecycleState) -> None:
        jobs = state.jobs
        if not jobs:
            return
        if state.service.engine is None:
            self._execute_bare(jobs, state)
        elif state.kind is SINGLE:
            self._execute_single(jobs[0], state)
        else:
            self._execute_batch(jobs, state)

    def _execute_bare(self, jobs, state: LifecycleState) -> None:
        """Engine-less serving: the pipeline owns context and tracing."""
        pipeline = state.service.pipeline_for(state.mode)
        for req in jobs:
            if state.kind is SINGLE:
                state.outcomes[req.index] = (pipeline.answer(req.question), "", None)
                continue
            try:
                result: PipelineResult | None = pipeline.answer(req.question)
                error = ""
            except ReproError as exc:
                result = None
                error = f"{type(exc).__name__}: {exc}"
            state.outcomes[req.index] = (result, error, None)

    def _execute_single(self, req: AnswerRequest, state: LifecycleState) -> None:
        engine = state.service.engine
        pipeline = state.pipeline
        if pipeline is None:
            pipeline = state.pipeline = state.service.pipeline_for(state.mode)
        ctx = req.ctx
        if ctx is None:
            ctx = RequestContext.create(
                registry=state.registry,
                deadline=(
                    Deadline(pipeline.deadline_seconds)
                    if pipeline.deadline_seconds is not None
                    else None
                ),
            )
        previous = engine.binder.ctx
        engine.binder.ctx = ctx
        try:
            result = pipeline.answer(req.question, ctx=ctx)
        finally:
            engine.binder.ctx = previous
        state.outcomes[req.index] = (result, "", None)

    def _execute_batch(self, jobs, state: LifecycleState) -> None:
        engine = state.service.engine
        pipeline = state.pipeline
        deadline_seconds = pipeline.deadline_seconds
        seed = state.seed

        def run_one(index: int, question: str):
            ctx = RequestContext.create(
                request_id=f"batch{seed}-{index:05d}",
                seed=derive_seed("engine-batch", seed, index),
                registry=state.registry,
                deadline=(
                    Deadline(deadline_seconds) if deadline_seconds is not None else None
                ),
                burn_collector=state.collector,
            )
            txn = CacheTransaction()
            ctx.scratch["cache_txn"] = txn
            engine.binder.ctx = ctx
            try:
                try:
                    result: PipelineResult | None = pipeline.answer(question, ctx=ctx)
                    error = ""
                except ReproError as exc:
                    result = None
                    error = f"{type(exc).__name__}: {exc}"
            finally:
                engine.binder.ctx = None
            return result, error, txn

        if state.workers == 1:
            for req in jobs:
                state.outcomes[req.index] = run_one(req.index, req.question)
        else:
            with ThreadPoolExecutor(max_workers=state.workers) as pool:
                futures = {
                    req.index: pool.submit(run_one, req.index, req.question)
                    for req in jobs
                }
                for index, future in futures.items():
                    state.outcomes[index] = future.result()


class RecordInterceptor(Interceptor):
    """Assemble final items and replay deferred commits in input order.

    Runs first in the finish phase (reverse chain order): walks the
    requests in submission order, touching batch cache hits, committing
    each job's cache transaction, publishing fresh answers through the
    cache interceptor, and filling dedupe duplicates from their
    primaries — so the cache state future requests observe is
    independent of worker count.
    """

    name = "record"

    def finish(self, state: LifecycleState) -> None:
        cache: AnswerCacheInterceptor = state.interceptors["answer-cache"]
        n = len(state.requests)
        for req in state.requests:
            i = req.index
            hit_key = state.hit_keys.get(i)
            if hit_key is not None:
                cache.commit_touch(state, hit_key)
                continue
            outcome = state.outcomes.get(i)
            if outcome is None:
                continue  # duplicate (filled below) or shed
            result, error, txn = outcome
            if txn is not None:
                txn.commit()
            if result is not None and state.use_cache:
                cache.commit_store(state, req.key, result)
            state.items[i] = AnswerResponse(
                index=i, question=req.question, result=result, error=error
            )
        for i, first in state.duplicates:
            primary = state.items[first]
            assert primary is not None
            state.items[i] = AnswerResponse(
                index=i,
                question=state.requests[i].question,
                result=primary.result,
                cached=True,
                error=primary.error,
            )
        final_items = [it for it in state.items if it is not None]
        assert len(final_items) == n, "scheduler dropped a request"
        state.items = final_items


#: The canonical chain order; ``validate_chain`` enforces it.
CANONICAL_CHAIN = ("admission", "dedupe", "answer-cache", "tracing", "execute", "record")

_CORE_CLASSES = {
    "admission": AdmissionInterceptor,
    "dedupe": DedupeInterceptor,
    "answer-cache": AnswerCacheInterceptor,
    "tracing": TracingInterceptor,
    "execute": ExecuteInterceptor,
    "record": RecordInterceptor,
}


def default_chain() -> list[Interceptor]:
    """A fresh canonical chain (interceptors are stateless between
    runs — all per-run state lives on :class:`LifecycleState`)."""
    return [_CORE_CLASSES[name]() for name in CANONICAL_CHAIN]


def validate_chain(chain: list[Interceptor]) -> None:
    """Fail loudly on a malformed chain, before any request runs.

    Every core interceptor must appear exactly once and in canonical
    relative order.  Additional (custom) interceptors may interleave
    anywhere, provided they carry a unique non-empty ``name`` — that is
    the extension point for future concerns (quota, redaction,
    multi-backend routing) without touching the scheduler.
    """
    if not chain:
        raise ServiceConfigurationError("interceptor chain is empty")
    names = [getattr(icp, "name", "") for icp in chain]
    if any(not name for name in names):
        raise ServiceConfigurationError(
            "every interceptor needs a non-empty .name for chain validation"
        )
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise ServiceConfigurationError(
                f"interceptor {name!r} appears more than once in the chain"
            )
        seen.add(name)
    missing = [name for name in CANONICAL_CHAIN if name not in seen]
    if missing:
        raise ServiceConfigurationError(
            f"interceptor chain is missing required interceptor(s) {missing}; "
            f"the canonical chain is {list(CANONICAL_CHAIN)}"
        )
    core_order = tuple(name for name in names if name in CANONICAL_CHAIN)
    if core_order != CANONICAL_CHAIN:
        raise ServiceConfigurationError(
            f"interceptor chain order {list(core_order)} violates the canonical "
            f"order {list(CANONICAL_CHAIN)}"
        )
