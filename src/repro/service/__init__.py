"""The request-lifecycle service layer (DESIGN.md §12).

One typed request/response pair, one composable interceptor chain
(``admission → dedupe → answer-cache → tracing → execute → record``),
one deterministic scheduler, one front door: :class:`ReproService`.
"""

from repro.service.interceptors import (
    CANONICAL_CHAIN,
    AdmissionInterceptor,
    AnswerCacheInterceptor,
    DedupeInterceptor,
    ExecuteInterceptor,
    Interceptor,
    RecordInterceptor,
    TracingInterceptor,
    default_chain,
    validate_chain,
)
from repro.service.lifecycle import (
    AnswerRequest,
    AnswerResponse,
    BatchItem,
    BatchResult,
    LifecycleState,
)
from repro.service.service import ReproService

__all__ = [
    "AdmissionInterceptor",
    "AnswerCacheInterceptor",
    "AnswerRequest",
    "AnswerResponse",
    "BatchItem",
    "BatchResult",
    "CANONICAL_CHAIN",
    "DedupeInterceptor",
    "ExecuteInterceptor",
    "Interceptor",
    "LifecycleState",
    "RecordInterceptor",
    "ReproService",
    "TracingInterceptor",
    "default_chain",
    "validate_chain",
]
