"""Webhooks: URL-addressed posting into a channel.

"Webhooks are user-defined HTTP callbacks ... with the URL provided by
Discord for a webhook, one can make an HTTP request to post a message
to the associated channel."  Here the "HTTP request" is a method call
carrying just the payload text, faithful to how the Apps-Script poller
uses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discordsim.channels import TextChannel
from repro.discordsim.gateway import Gateway
from repro.discordsim.models import Message, User, next_snowflake
from repro.errors import DiscordSimError
from repro.observability.metrics import get_registry


@dataclass
class Webhook:
    """A posting endpoint bound to one text channel."""

    channel: TextChannel
    name: str = "webhook"
    gateway: "Gateway | None" = None
    webhook_id: int = field(default_factory=next_snowflake)
    #: Messages successfully posted over this webhook's lifetime; chaos
    #: reports compare it against the poller's attempt counters.
    deliveries: int = field(default=0, init=False)
    _user: User = field(init=False)

    def __post_init__(self) -> None:
        self._user = User(name=f"{self.name}#webhook", bot=True)

    @property
    def url(self) -> str:
        return f"https://discord.sim/api/webhooks/{self.webhook_id}/{self.name}"

    def execute(self, content: str) -> Message:
        """Post ``content`` to the bound channel (the HTTP POST analogue)."""
        if not content:
            raise DiscordSimError("webhook payload must be non-empty")
        msg = self.channel.send(Message(author=self._user, content=content))
        self.deliveries += 1
        get_registry().counter("repro.discord.webhook_posts").inc()
        if self.gateway is not None:
            self.gateway.publish_message(self.channel, msg)
        return msg
