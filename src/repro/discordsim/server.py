"""The Discord server (guild): members, roles, channels, permissions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.discordsim.channels import ForumChannel, TextChannel
from repro.discordsim.models import User
from repro.errors import DiscordSimError


class Permission(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    MANAGE = enum.auto()


@dataclass(frozen=True)
class Role:
    name: str
    permissions: Permission = Permission.READ | Permission.WRITE


DEVELOPER_ROLE = Role("developer", Permission.READ | Permission.WRITE | Permission.MANAGE)
MEMBER_ROLE = Role("member", Permission.READ | Permission.WRITE)


@dataclass
class Server:
    """A Discord server with named channels and role-gated privacy.

    Private channels are visible only to members holding a role with
    MANAGE permission (the paper's developer-only channels).
    """

    name: str
    members: dict[int, User] = field(default_factory=dict)
    roles: dict[int, Role] = field(default_factory=dict)
    text_channels: dict[str, TextChannel] = field(default_factory=dict)
    forum_channels: dict[str, ForumChannel] = field(default_factory=dict)

    # ------------------------------------------------------------ membership
    def add_member(self, user: User, role: Role = MEMBER_ROLE) -> User:
        if user.user_id in self.members:
            raise DiscordSimError(f"{user.name} is already a member of {self.name}")
        self.members[user.user_id] = user
        self.roles[user.user_id] = role
        return user

    def role_of(self, user: User) -> Role:
        try:
            return self.roles[user.user_id]
        except KeyError:
            raise DiscordSimError(f"{user.name} is not a member of {self.name}") from None

    # ------------------------------------------------------------ channels
    def create_text_channel(self, name: str, *, private: bool = False) -> TextChannel:
        if name in self.text_channels or name in self.forum_channels:
            raise DiscordSimError(f"channel #{name} already exists")
        ch = TextChannel(name=name, private=private)
        self.text_channels[name] = ch
        return ch

    def create_forum_channel(self, name: str, *, private: bool = False) -> ForumChannel:
        if name in self.text_channels or name in self.forum_channels:
            raise DiscordSimError(f"channel #{name} already exists")
        ch = ForumChannel(name=name, private=private)
        self.forum_channels[name] = ch
        return ch

    def text_channel(self, name: str) -> TextChannel:
        try:
            return self.text_channels[name]
        except KeyError:
            raise DiscordSimError(f"no text channel #{name}") from None

    def forum_channel(self, name: str) -> ForumChannel:
        try:
            return self.forum_channels[name]
        except KeyError:
            raise DiscordSimError(f"no forum channel #{name}") from None

    def can_view(self, user: User, channel_name: str) -> bool:
        """Privacy check: private channels require MANAGE."""
        ch: TextChannel | ForumChannel
        if channel_name in self.text_channels:
            ch = self.text_channels[channel_name]
        elif channel_name in self.forum_channels:
            ch = self.forum_channels[channel_name]
        else:
            raise DiscordSimError(f"no channel #{channel_name}")
        if not ch.private:
            return True
        return bool(self.role_of(user).permissions & Permission.MANAGE)
