"""In-process Discord simulation (paper Section IV substrate).

Models the Discord mechanics the paper's bots are built on: a server
(guild) with text and forum channels, user/bot members with roles,
webhooks bound to channels, messages with attachments and interactive
buttons, slash commands, and a gateway that dispatches message events to
registered apps.
"""

from repro.discordsim.models import (
    Attachment,
    Button,
    ButtonStyle,
    Message,
    User,
)
from repro.discordsim.channels import ForumChannel, ForumPost, TextChannel
from repro.discordsim.server import Permission, Role, Server
from repro.discordsim.webhook import Webhook
from repro.discordsim.gateway import Gateway, MessageEvent
from repro.discordsim.app import App, SlashCommand

__all__ = [
    "Attachment",
    "Button",
    "ButtonStyle",
    "Message",
    "User",
    "TextChannel",
    "ForumChannel",
    "ForumPost",
    "Server",
    "Role",
    "Permission",
    "Webhook",
    "Gateway",
    "MessageEvent",
    "App",
    "SlashCommand",
]
