"""Discord channels: plain text channels and forum channels.

The paper's workflow uses both: ``petsc-users-notification`` is a
private text channel fed by a webhook; ``petsc-users-emails`` is a
forum channel where each email thread becomes a post.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discordsim.models import Message, User, next_snowflake
from repro.errors import DiscordSimError


@dataclass
class _BaseChannel:
    name: str
    private: bool = False
    channel_id: int = field(default_factory=next_snowflake)

    def __post_init__(self) -> None:
        if not self.name:
            raise DiscordSimError("channel needs a name")


@dataclass
class TextChannel(_BaseChannel):
    """A linear message channel."""

    messages: list[Message] = field(default_factory=list)

    def send(self, message: Message) -> Message:
        self.messages.append(message)
        return message

    def history(self, *, limit: int | None = None) -> list[Message]:
        msgs = [m for m in self.messages if not m.deleted]
        return msgs[-limit:] if limit else msgs

    def delete_message(self, message_id: int) -> None:
        for m in self.messages:
            if m.message_id == message_id:
                m.deleted = True
                return
        raise DiscordSimError(f"no message {message_id} in #{self.name}")


@dataclass
class ForumPost:
    """One post (thread) in a forum channel."""

    title: str
    post_id: int = field(default_factory=next_snowflake)
    messages: list[Message] = field(default_factory=list)

    def add(self, message: Message) -> Message:
        self.messages.append(message)
        return message

    def history(self) -> list[Message]:
        return [m for m in self.messages if not m.deleted]

    def starter(self) -> Message:
        live = self.history()
        if not live:
            raise DiscordSimError(f"post {self.title!r} has no messages")
        return live[0]


@dataclass
class ForumChannel(_BaseChannel):
    """A channel made of titled posts (Discord Forum channel)."""

    posts: dict[int, ForumPost] = field(default_factory=dict)

    def create_post(self, title: str, first: Message) -> ForumPost:
        if not title:
            raise DiscordSimError("forum post needs a title")
        post = ForumPost(title=title)
        post.add(first)
        self.posts[post.post_id] = post
        return post

    def find_post_by_title(self, title: str) -> ForumPost | None:
        for post in self.posts.values():
            if post.title == title:
                return post
        return None

    def post(self, post_id: int) -> ForumPost:
        try:
            return self.posts[post_id]
        except KeyError:
            raise DiscordSimError(f"no post {post_id} in forum #{self.name}") from None

    def all_posts(self) -> list[ForumPost]:
        return sorted(self.posts.values(), key=lambda p: p.post_id)


def post_author_message(channel: TextChannel, author: User, content: str) -> Message:
    """Convenience: build and send a plain message."""
    return channel.send(Message(author=author, content=content))
