"""Core Discord value types: users, messages, attachments, buttons."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DiscordSimError

_id_counter = itertools.count(1000)


def next_snowflake() -> int:
    """Monotonic message/user/channel ids (Discord calls them snowflakes)."""
    return next(_id_counter)


@dataclass(frozen=True)
class User:
    """A server member; bots are users with ``bot=True``."""

    name: str
    user_id: int = field(default_factory=next_snowflake)
    bot: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise DiscordSimError("user needs a name")


@dataclass
class Attachment:
    filename: str
    content: bytes = b""


class ButtonStyle(enum.Enum):
    PRIMARY = "primary"
    SUCCESS = "success"
    DANGER = "danger"
    SECONDARY = "secondary"


@dataclass
class Button:
    """An interactive message component.

    ``callback`` receives the clicking user; buttons can only be used
    once the message is delivered to a channel and may be disabled after
    use (the send/discard/revise workflow disables its row after a
    decision is taken).
    """

    label: str
    style: ButtonStyle = ButtonStyle.SECONDARY
    callback: Callable[["Message", User], None] | None = None
    disabled: bool = False
    clicks: int = 0

    def click(self, message: "Message", user: User) -> None:
        if self.disabled:
            raise DiscordSimError(f"button {self.label!r} is disabled")
        self.clicks += 1
        if self.callback is not None:
            self.callback(message, user)


@dataclass
class Message:
    """A message in a channel or forum post."""

    author: User
    content: str
    message_id: int = field(default_factory=next_snowflake)
    attachments: list[Attachment] = field(default_factory=list)
    buttons: list[Button] = field(default_factory=list)
    timestamp: float = 0.0
    #: Free-form tags the bots attach (e.g. "sent-by:barry", timestamps).
    tags: dict[str, str] = field(default_factory=dict)
    deleted: bool = False

    def button(self, label: str) -> Button:
        for b in self.buttons:
            if b.label == label:
                return b
        raise DiscordSimError(
            f"message {self.message_id} has no button {label!r}; "
            f"available: {[b.label for b in self.buttons]}"
        )

    def disable_buttons(self) -> None:
        for b in self.buttons:
            b.disabled = True
