"""Discord apps (bots): slash commands plus gateway event handling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.discordsim.gateway import Gateway, MessageEvent
from repro.discordsim.models import User
from repro.discordsim.server import Server
from repro.errors import DiscordSimError

CommandHandler = Callable[..., Any]


@dataclass
class SlashCommand:
    name: str
    description: str
    handler: CommandHandler
    invocations: int = 0

    def invoke(self, invoker: User, **kwargs: Any) -> Any:
        self.invocations += 1
        return self.handler(invoker, **kwargs)


@dataclass
class App:
    """A bot application installed on a server.

    Subclasses (or composition users) register slash commands with
    :meth:`command` and gateway listeners with :meth:`listen`.
    """

    name: str
    server: Server
    gateway: Gateway
    user: User = field(init=False)
    commands: dict[str, SlashCommand] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.user = User(name=self.name, bot=True)
        self.server.add_member(self.user)

    def command(self, name: str, description: str, handler: CommandHandler) -> SlashCommand:
        if name in self.commands:
            raise DiscordSimError(f"app {self.name} already has command /{name}")
        cmd = SlashCommand(name=name, description=description, handler=handler)
        self.commands[name] = cmd
        return cmd

    def invoke(self, command: str, invoker: User, **kwargs: Any) -> Any:
        cmd = self.commands.get(command)
        if cmd is None:
            raise DiscordSimError(
                f"app {self.name} has no command /{command}; "
                f"available: {sorted(self.commands)}"
            )
        return cmd.invoke(invoker, **kwargs)

    def listen(self, channel_name: str | None, listener: Callable[[MessageEvent], None]) -> None:
        self.gateway.on_message(channel_name, listener)
