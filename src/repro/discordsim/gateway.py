"""Event gateway: dispatches channel messages to registered apps.

Discord apps receive events over a gateway connection; here apps
register a listener per channel (or a catch-all) and the gateway invokes
them synchronously when a message is published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.discordsim.channels import TextChannel
from repro.discordsim.models import Message
from repro.errors import DiscordSimError


@dataclass(frozen=True)
class MessageEvent:
    channel_name: str
    message: Message


Listener = Callable[[MessageEvent], None]


@dataclass
class Gateway:
    """Synchronous event bus between channels and apps."""

    _listeners: dict[str, list[Listener]] = field(default_factory=dict)
    _catch_all: list[Listener] = field(default_factory=list)
    events_dispatched: int = 0

    def on_message(self, channel_name: str | None, listener: Listener) -> None:
        """Register a listener; ``None`` channel means all channels."""
        if channel_name is None:
            self._catch_all.append(listener)
        else:
            self._listeners.setdefault(channel_name, []).append(listener)

    def publish_message(self, channel: TextChannel, message: Message) -> None:
        """Fan a message event out to the channel's listeners."""
        if not isinstance(channel, TextChannel):
            raise DiscordSimError("gateway events are only published for text channels")
        event = MessageEvent(channel_name=channel.name, message=message)
        self.events_dispatched += 1
        for listener in self._listeners.get(channel.name, []):
            listener(event)
        for listener in self._catch_all:
            listener(event)
