"""The admission ladder (admit → queue → shed) and AIMD concurrency control.

:class:`AdmissionController` is what the engine talks to.  It owns the
per-client :class:`~repro.admission.limiter.RateLimiter`, the bounded
deadline-aware queue model, and the :class:`AIMDController` that sizes
the batch worker pool.  Batch admission is a fold over the requests in
submission order — no wall clock, no thread state — so the full decision
vector is reproducible from the arrival times alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.admission.limiter import RateLimiter
from repro.config import AdmissionConfig
from repro.errors import OverloadedError
from repro.observability.metrics import MetricsRegistry, get_registry

ADMIT = "admit"
QUEUE = "queue"
SHED = "shed"

DEFAULT_CLIENT = "default"


@dataclass(frozen=True)
class AdmissionDecision:
    """One request's position on the ladder, in submission order."""

    index: int
    client: str
    arrival: float
    outcome: str  # ADMIT | QUEUE | SHED
    #: When the work may start: the arrival for admits, the reserved
    #: token's grant time for queued requests, meaningless for sheds.
    start_at: float
    #: Simulated seconds spent waiting in the queue (queued requests).
    queue_wait: float = 0.0
    #: Suggested client backoff in seconds (shed requests only).
    retry_after: float = 0.0


class AIMDController:
    """Additive-increase / multiplicative-decrease concurrency limit.

    TCP's congestion algorithm pointed at a worker pool: every overload
    signal (deadline miss, open breaker) multiplies the limit by
    ``decrease`` immediately; ``window`` consecutive successes add
    ``increase`` back.  The limit converges near the widest pool the
    downstream can actually sustain instead of a guessed constant.
    """

    def __init__(
        self,
        *,
        min_limit: int,
        max_limit: int,
        increase: float = 1.0,
        decrease: float = 0.5,
        window: int = 8,
    ) -> None:
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease
        self.window = window
        self._limit = float(max_limit)
        self._successes = 0

    @property
    def limit(self) -> int:
        return max(self.min_limit, min(self.max_limit, int(self._limit)))

    def record_success(self, registry: MetricsRegistry | None = None) -> None:
        self._successes += 1
        if self._successes >= self.window and self._limit < self.max_limit:
            self._successes = 0
            self._limit = min(float(self.max_limit), self._limit + self.increase)
            (registry or get_registry()).counter(
                "repro.admission.aimd_increases"
            ).inc()

    def record_overload(self, registry: MetricsRegistry | None = None) -> None:
        self._successes = 0
        narrowed = max(float(self.min_limit), self._limit * self.decrease)
        if narrowed < self._limit:
            self._limit = narrowed
            (registry or get_registry()).counter(
                "repro.admission.aimd_decreases"
            ).inc()


#: Error substrings that count as overload signals for the AIMD loop.
_OVERLOAD_SIGNALS = ("DeadlineExceededError", "CircuitOpenError")


class AdmissionController:
    """Everything the engine needs to protect itself from its callers."""

    def __init__(
        self,
        config: AdmissionConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        config.validate()
        self.config = config
        self.clock = clock
        self.limiter = RateLimiter(
            rate_per_second=config.requests_per_second,
            burst=config.burst,
            per_client_rates=config.per_client_rates,
        )
        self.aimd = AIMDController(
            min_limit=config.min_concurrency,
            max_limit=config.max_concurrency,
            increase=config.aimd_increase,
            decrease=config.aimd_decrease,
            window=config.aimd_window,
        )

    # ------------------------------------------------------------ sequential
    def admit_one(
        self,
        *,
        client: str = DEFAULT_CLIENT,
        now: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """Admit or shed one sequential request (no queue: the caller is
        synchronous, so there is nothing to park it on).  Raises
        :class:`OverloadedError` with ``retry_after`` when shed."""
        reg = registry if registry is not None else get_registry()
        t = self.clock() if now is None else now
        if self.limiter.try_acquire(client, t):
            reg.counter("repro.admission.admitted").inc()
            return
        retry_after = max(0.0, self.limiter.next_free(client, t) - t)
        reg.counter("repro.admission.shed").inc()
        raise OverloadedError(
            f"client {client!r} is over quota; retry after {retry_after:.3f}s",
            retry_after=retry_after,
        )

    # ------------------------------------------------------------ batched
    def admit_batch(
        self,
        arrivals: list[float],
        clients: list[str],
        *,
        registry: MetricsRegistry | None = None,
    ) -> list[AdmissionDecision]:
        """Walk the ladder for a whole batch, in submission order.

        The queue is modelled on the simulated timeline: a queued request
        occupies a slot from its arrival until its reserved token's grant
        time, so occupancy at any arrival is a pure function of the
        earlier decisions.  No wall clock is consulted.
        """
        reg = registry if registry is not None else get_registry()
        cfg = self.config
        decisions: list[AdmissionDecision] = []
        pending_grants: list[float] = []  # grant times of queued, unstarted work
        for i, (t, client) in enumerate(zip(arrivals, clients)):
            t = float(t)
            # Queued requests whose grant has passed have left the queue.
            pending_grants = [g for g in pending_grants if g > t]
            if self.limiter.try_acquire(client, t):
                reg.counter("repro.admission.admitted").inc()
                decisions.append(
                    AdmissionDecision(
                        index=i, client=client, arrival=t, outcome=ADMIT, start_at=t
                    )
                )
                continue
            grant = self.limiter.next_free(client, t)
            wait = grant - t
            if wait <= cfg.queue_timeout_seconds and len(pending_grants) < cfg.queue_depth:
                grant = self.limiter.reserve(client, t)
                pending_grants.append(grant)
                reg.counter("repro.admission.queued").inc()
                # Simulated waits are workload-pure, so the histogram is
                # part of the deterministic digest.
                reg.histogram(
                    "repro.admission.queue_wait_ms", deterministic=True
                ).observe(round(1000.0 * (grant - t), 6))
                decisions.append(
                    AdmissionDecision(
                        index=i,
                        client=client,
                        arrival=t,
                        outcome=QUEUE,
                        start_at=grant,
                        queue_wait=grant - t,
                    )
                )
                continue
            reg.counter("repro.admission.shed").inc()
            decisions.append(
                AdmissionDecision(
                    index=i,
                    client=client,
                    arrival=t,
                    outcome=SHED,
                    start_at=t,
                    retry_after=wait,
                )
            )
        return decisions

    # ------------------------------------------------------------ feedback
    @property
    def concurrency_limit(self) -> int:
        return self.aimd.limit

    def observe_outcome(
        self,
        answered: bool,
        error: str,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """Feed one served request's outcome to the AIMD loop.

        Only overload-shaped failures narrow the pool — a permanent
        pipeline error says nothing about concurrency pressure.
        """
        if answered:
            self.aimd.record_success(registry)
        elif any(sig in error for sig in _OVERLOAD_SIGNALS):
            self.aimd.record_overload(registry)
