"""Deterministic token buckets with per-client quotas.

A classic token bucket, with one twist for reproducibility: it never
reads a clock.  Every operation takes ``now`` explicitly, so the bucket
is a pure state machine over the caller's timeline — real ``monotonic``
readings in production, simulated arrival offsets in batches, tests,
and benchmarks.  Same arrivals in, same decisions out, byte for byte.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class TokenBucket:
    """Refill at ``rate`` tokens/second up to ``burst``; spend one per request.

    Time only moves forward: the high-water mark of observed ``now``
    values is kept, and earlier timestamps see the bucket as it was at
    the mark (deterministic regardless of caller ordering).
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)  # starts full: an idle service owes a burst
        self._updated = 0.0

    def available(self, now: float) -> float:
        """Token balance at ``now`` (without consuming anything)."""
        elapsed = max(0.0, now - self._updated)
        return min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the balance covers them."""
        balance = self.available(now)
        self._updated = max(self._updated, now)
        if balance >= tokens:
            self._tokens = balance - tokens
            return True
        self._tokens = balance
        return False

    def next_free(self, now: float, tokens: float = 1.0) -> float:
        """Earliest time at which ``tokens`` will be available."""
        balance = self.available(now)
        base = max(now, self._updated)
        if balance >= tokens:
            return base
        return base + (tokens - balance) / self.rate

    def reserve(self, now: float, tokens: float = 1.0) -> float:
        """Consume the *next* ``tokens`` even if the grant lies in the
        future; returns the grant time.  This is what queues a request:
        the token is spoken for, so later arrivals cannot steal it."""
        grant = self.next_free(now, tokens)
        balance = self.available(grant)
        self._tokens = balance - tokens
        self._updated = max(self._updated, grant)
        return grant


class RateLimiter:
    """Per-client token buckets with a shared default rate.

    Buckets are created on first sight of a client id; quota overrides
    come from ``per_client_rates``.  The ``default`` client is what the
    engine uses when callers don't identify themselves.
    """

    def __init__(
        self,
        *,
        rate_per_second: float,
        burst: int,
        per_client_rates: dict[str, float] | None = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ConfigurationError(
                f"rate_per_second must be positive, got {rate_per_second}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_second = float(rate_per_second)
        self.burst = int(burst)
        self.per_client_rates = dict(per_client_rates or {})
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, client: str) -> TokenBucket:
        existing = self._buckets.get(client)
        if existing is None:
            rate = self.per_client_rates.get(client, self.rate_per_second)
            existing = self._buckets[client] = TokenBucket(rate, self.burst)
        return existing

    def try_acquire(self, client: str, now: float) -> bool:
        return self.bucket(client).try_acquire(now)

    def next_free(self, client: str, now: float) -> float:
        return self.bucket(client).next_free(now)

    def reserve(self, client: str, now: float) -> float:
        return self.bucket(client).reserve(now)
