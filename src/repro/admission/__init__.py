"""Admission control: overload protection in front of the query engine.

The ROADMAP's north star is serving heavy traffic; the failure mode that
actually kills such a service is not a slow request but *unbounded
acceptance* — every queue grows, every deadline blows, goodput collapses
to zero.  This package puts a deterministic admission ladder in front of
:class:`~repro.engine.QueryEngine`:

1. **admit** — a token bucket per client (rate + burst, per-client
   quota overrides) passes what capacity allows straight through;
2. **queue** — a request that only needs to wait a bounded time for a
   future token reserves it and joins a bounded, deadline-aware queue;
3. **shed** — everything else is rejected *immediately* with a typed
   :class:`~repro.errors.OverloadedError` carrying ``retry_after``,
   spending no downstream work on traffic that cannot be served.

An AIMD controller (additive increase, multiplicative decrease — TCP's
congestion algorithm applied to a worker pool) narrows batch concurrency
when deadline misses or breaker trips rise and re-widens it after
sustained success.

Every decision is a pure function of the request arrival times and the
config — the clock is injectable and batches carry explicit simulated
arrivals — so two same-seed runs admit, queue, and shed byte-identically,
which the overload benchmark's digest gate enforces in CI.
"""

from repro.admission.controller import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    AdmissionDecision,
    AIMDController,
)
from repro.admission.limiter import RateLimiter, TokenBucket

__all__ = [
    "ADMIT",
    "QUEUE",
    "SHED",
    "AIMDController",
    "AdmissionController",
    "AdmissionDecision",
    "RateLimiter",
    "TokenBucket",
]
