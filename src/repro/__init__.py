"""repro — reproduction of "AI Assistants to Enhance and Exploit the
PETSc Knowledge Base" (ICPP 2025).

The package provides the complete assistant stack the paper describes,
over a synthetic PETSc documentation corpus and deterministic simulated
models (no network access required):

>>> from repro import build_workflow
>>> wf = build_workflow()                      # rag+rerank by default
>>> answer = wf.ask("What does KSPBurb do?")   # grounded refusal
>>> "no PETSc function" in answer.answer
True

Main entry points
-----------------
``open_service``              the serving front door: ReproConfig →
                              ReproService (one interceptor chain, one
                              scheduler, for every consumer)
``open_engine``               ReproConfig → QueryEngine (sharded
                              scatter-gather when configured)
``ReproConfig``               root config nesting every subsystem's knobs
``build_default_corpus``      the synthetic PETSc knowledge base
``build_workflow``            corpus → RAG(+rerank) → LLM → postprocess
``build_rag_pipeline``        the bare pipeline in baseline/rag/rag+rerank mode
``build_support_system``      the full Discord/mailing-list topology (Fig. 5)
``krylov_benchmark``          the 37-question evaluation set
``run_experiment``            grade a pipeline over the benchmark

The ``build_*`` helpers are compatibility wrappers over the
:mod:`repro.api` facade (``open_engine`` / ``open_pipeline`` /
``open_workflow`` / ``open_support_system``).
"""

from repro.config import (
    EngineConfig,
    IngestConfig,
    ReplicationConfig,
    ReproConfig,
    RetrievalConfig,
    ShardingConfig,
    WorkflowConfig,
)
from repro.corpus import build_default_corpus
from repro.engine import QueryEngine, ShardedQueryEngine
from repro.index import IndexArtifact, ShardedIndexArtifact, get_or_build_index
from repro.ingest import (
    CorpusDelta,
    IngestReport,
    apply_documents,
    ingest_corpus,
)
from repro.api import (
    open_engine,
    open_pipeline,
    open_service,
    open_support_system,
    open_workflow,
    resolve_artifact,
)
from repro.service import ReproService
from repro.pipeline import AugmentedWorkflow, RAGPipeline, build_rag_pipeline, build_workflow
from repro.bots import build_support_system
from repro.evaluation import (
    BlindGrader,
    compare_modes,
    krylov_benchmark,
    run_experiment,
)

__version__ = "1.1.0"

__all__ = [
    "EngineConfig",
    "IngestConfig",
    "ReplicationConfig",
    "ReproConfig",
    "RetrievalConfig",
    "ShardingConfig",
    "WorkflowConfig",
    "build_default_corpus",
    "IndexArtifact",
    "ShardedIndexArtifact",
    "QueryEngine",
    "ReproService",
    "ShardedQueryEngine",
    "CorpusDelta",
    "IngestReport",
    "apply_documents",
    "get_or_build_index",
    "ingest_corpus",
    "open_engine",
    "open_pipeline",
    "open_service",
    "open_support_system",
    "open_workflow",
    "resolve_artifact",
    "AugmentedWorkflow",
    "RAGPipeline",
    "build_rag_pipeline",
    "build_workflow",
    "build_support_system",
    "BlindGrader",
    "compare_modes",
    "krylov_benchmark",
    "run_experiment",
    "__version__",
]
