"""repro — reproduction of "AI Assistants to Enhance and Exploit the
PETSc Knowledge Base" (ICPP 2025).

The package provides the complete assistant stack the paper describes,
over a synthetic PETSc documentation corpus and deterministic simulated
models (no network access required):

>>> from repro import build_workflow
>>> wf = build_workflow()                      # rag+rerank by default
>>> answer = wf.ask("What does KSPBurb do?")   # grounded refusal
>>> "no PETSc function" in answer.answer
True

Main entry points
-----------------
``build_default_corpus``      the synthetic PETSc knowledge base
``build_workflow``            corpus → RAG(+rerank) → LLM → postprocess
``build_rag_pipeline``        the bare pipeline in baseline/rag/rag+rerank mode
``build_support_system``      the full Discord/mailing-list topology (Fig. 5)
``krylov_benchmark``          the 37-question evaluation set
``run_experiment``            grade a pipeline over the benchmark
"""

from repro.config import EngineConfig, RetrievalConfig, WorkflowConfig
from repro.corpus import build_default_corpus
from repro.engine import QueryEngine
from repro.index import IndexArtifact, get_or_build_index
from repro.pipeline import AugmentedWorkflow, RAGPipeline, build_rag_pipeline, build_workflow
from repro.bots import build_support_system
from repro.evaluation import (
    BlindGrader,
    compare_modes,
    krylov_benchmark,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "RetrievalConfig",
    "WorkflowConfig",
    "build_default_corpus",
    "IndexArtifact",
    "QueryEngine",
    "get_or_build_index",
    "AugmentedWorkflow",
    "RAGPipeline",
    "build_rag_pipeline",
    "build_workflow",
    "build_support_system",
    "BlindGrader",
    "compare_modes",
    "krylov_benchmark",
    "run_experiment",
    "__version__",
]
