"""Compile-check of code blocks in LLM answers (paper: "we automatically
detect blocks of code and can pass them to a compiler to verify that
they work").

With no toolchain available offline, the "compiler" is a structural
checker for the two languages our assistants emit: C (PETSc snippets)
and console commands.  It catches the failure modes LLM code actually
exhibits — unbalanced braces/parentheses, unterminated strings,
statements missing semicolons, PETSc calls outside any function, and
unknown PETSc identifiers (the code-level analogue of a hallucinated
option).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.postprocess.markdown import CodeBlock
from repro.utils.textproc import code_tokens

_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
_CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)'")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)

_PAIRS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = {v: k for k, v in _PAIRS.items()}


@dataclass
class CodeCheckResult:
    ok: bool
    language: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    unknown_identifiers: list[str] = field(default_factory=list)


def _strip_strings_and_comments(code: str) -> tuple[str, list[str]]:
    errors: list[str] = []
    code = _BLOCK_COMMENT_RE.sub(" ", code)
    if "/*" in code:
        errors.append("unterminated block comment")
        code = code.split("/*")[0]
    code = _LINE_COMMENT_RE.sub(" ", code)
    code = _CHAR_RE.sub("''", code)
    stripped = _STRING_RE.sub('""', code)
    for line_no, line in enumerate(stripped.splitlines(), start=1):
        if line.count('"') % 2:
            errors.append(f"line {line_no}: unterminated string literal")
    return stripped, errors


def _check_balance(code: str) -> list[str]:
    stack: list[tuple[str, int]] = []
    errors: list[str] = []
    for line_no, line in enumerate(code.splitlines(), start=1):
        for ch in line:
            if ch in _PAIRS:
                stack.append((ch, line_no))
            elif ch in _CLOSERS:
                if not stack or stack[-1][0] != _CLOSERS[ch]:
                    errors.append(f"line {line_no}: unbalanced {ch!r}")
                    return errors
                stack.pop()
    for ch, line_no in stack:
        errors.append(f"line {line_no}: unclosed {ch!r}")
    return errors


def check_code_block(
    block: CodeBlock,
    *,
    known_identifiers: frozenset[str] = frozenset(),
) -> CodeCheckResult:
    """Structurally verify one code block.

    ``known_identifiers`` (manual-page names) powers hallucinated-API
    detection: PETSc-style identifiers not found in the corpus are
    reported, and unknown ``Petsc``/``KSP``/``Mat``/``Vec``/``PC``-prefixed
    calls are errors.
    """
    language = block.language or ("c" if ";" in block.code else "console")
    if language in ("console", "bash", "sh", "shell"):
        return _check_console(block, known_identifiers)

    stripped, errors = _strip_strings_and_comments(block.code)
    errors.extend(_check_balance(stripped))

    # Statement lines (heuristic): inside code, a line that looks like a
    # call or assignment must end with ';', ',', an opener, or a closer.
    for line_no, line in enumerate(stripped.splitlines(), start=1):
        s = line.strip()
        if not s or s.startswith("#"):
            continue
        if re.match(r"^[A-Za-z_][A-Za-z0-9_]*\s*\(.*\)$", s) and not re.match(
            r"^(void|int|double|float|char|static|PetscErrorCode|PetscInt|PetscReal)\b", s
        ):
            # A complete call expression with no ';' is a statement error
            # (function *signatures* start with a type keyword and pass).
            errors.append(f"line {line_no}: statement missing ';'")
            continue
        if s.endswith((";", "{", "}", ",", "(", ")", ":")):
            continue

    unknown: list[str] = []
    warnings: list[str] = []
    if known_identifiers:
        for ident in dict.fromkeys(code_tokens(stripped)):
            if ident.startswith("-"):
                continue
            if re.match(r"^(Petsc|KSP|PC|Mat|Vec|SNES|TS)[A-Za-z0-9_]*$", ident):
                if ident not in known_identifiers and not ident.isupper():
                    unknown.append(ident)
    if unknown:
        errors.append(f"unknown PETSc identifiers: {', '.join(unknown)}")

    return CodeCheckResult(
        ok=not errors,
        language="c",
        errors=errors,
        warnings=warnings,
        unknown_identifiers=unknown,
    )


def _check_console(block: CodeBlock, known_identifiers: frozenset[str]) -> CodeCheckResult:
    errors: list[str] = []
    for line_no, line in enumerate(block.code.splitlines(), start=1):
        s = line.strip()
        if not s or s.startswith("#"):
            continue
        if s.count('"') % 2 or s.count("'") % 2:
            errors.append(f"line {line_no}: unbalanced quotes")
    return CodeCheckResult(ok=not errors, language="console", errors=errors)
