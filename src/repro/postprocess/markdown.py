"""A small Markdown block parser tuned to LLM output.

Handles the structures our assistants actually emit: paragraphs,
headings, fenced code blocks (with language tags), and itemized /
numbered lists.  Inline markup (bold/italic/inline code/links) is
preserved in the text and handled by the HTML renderer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_FENCE_RE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")
_BULLET_RE = re.compile(r"^\s*[-*+]\s+(.*)$")
_NUMBERED_RE = re.compile(r"^\s*(\d+)[.)]\s+(.*)$")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


@dataclass
class Block:
    """Base class for parsed Markdown blocks."""


@dataclass
class Paragraph(Block):
    text: str


@dataclass
class Heading(Block):
    level: int
    text: str


@dataclass
class ListBlock(Block):
    items: list[str] = field(default_factory=list)
    ordered: bool = False


@dataclass
class CodeBlock(Block):
    code: str
    language: str = ""


def parse_markdown(text: str) -> list[Block]:
    """Parse Markdown into a flat list of blocks."""
    blocks: list[Block] = []
    lines = text.splitlines()
    i = 0
    para: list[str] = []

    def flush_para() -> None:
        if para:
            blocks.append(Paragraph(text=" ".join(s.strip() for s in para)))
            para.clear()

    while i < len(lines):
        line = lines[i]
        fence = _FENCE_RE.match(line)
        if fence:
            flush_para()
            language = fence.group(1)
            code: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                code.append(lines[i])
                i += 1
            i += 1  # skip closing fence (or run off the end gracefully)
            blocks.append(CodeBlock(code="\n".join(code), language=language))
            continue
        heading = _HEADING_RE.match(line)
        if heading:
            flush_para()
            blocks.append(Heading(level=len(heading.group(1)), text=heading.group(2).strip()))
            i += 1
            continue
        bullet = _BULLET_RE.match(line)
        numbered = _NUMBERED_RE.match(line)
        if bullet or numbered:
            flush_para()
            ordered = bool(numbered)
            items: list[str] = []
            while i < len(lines):
                b = _BULLET_RE.match(lines[i])
                n = _NUMBERED_RE.match(lines[i])
                if ordered and n:
                    items.append(n.group(2).strip())
                elif not ordered and b:
                    items.append(b.group(1).strip())
                else:
                    break
                i += 1
            blocks.append(ListBlock(items=items, ordered=ordered))
            continue
        if not line.strip():
            flush_para()
            i += 1
            continue
        para.append(line)
        i += 1
    flush_para()
    return blocks


def extract_code_blocks(text: str) -> list[CodeBlock]:
    """All fenced code blocks in ``text``."""
    return [b for b in parse_markdown(text) if isinstance(b, CodeBlock)]


def extract_lists(text: str) -> list[ListBlock]:
    """All itemized/numbered lists in ``text``."""
    return [b for b in parse_markdown(text) if isinstance(b, ListBlock)]
