"""Structured (JSON) answer format.

The paper notes LLMs can now return JSON, "making postprocessing easier
since we do not have to reverse engineer the LLM output."  These helpers
define that structured format: a round-trippable JSON encoding of the
parsed answer blocks.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import PostprocessError
from repro.postprocess.markdown import Block, CodeBlock, Heading, ListBlock, Paragraph, parse_markdown


def _block_to_obj(block: Block) -> dict[str, Any]:
    if isinstance(block, Paragraph):
        return {"type": "paragraph", "text": block.text}
    if isinstance(block, Heading):
        return {"type": "heading", "level": block.level, "text": block.text}
    if isinstance(block, ListBlock):
        return {"type": "list", "ordered": block.ordered, "items": block.items}
    if isinstance(block, CodeBlock):
        return {"type": "code", "language": block.language, "code": block.code}
    raise PostprocessError(f"unknown block type {type(block).__name__}")


def answer_to_json(markdown_text: str) -> str:
    """Encode an answer's structure as JSON."""
    blocks = [_block_to_obj(b) for b in parse_markdown(markdown_text)]
    return json.dumps({"blocks": blocks}, indent=2)


def json_to_answer(payload: str) -> str:
    """Render a JSON-structured answer back to Markdown."""
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise PostprocessError(f"invalid JSON answer: {exc}") from exc
    if not isinstance(obj, dict) or "blocks" not in obj:
        raise PostprocessError("JSON answer must be an object with a 'blocks' key")
    parts: list[str] = []
    for i, blk in enumerate(obj["blocks"]):
        btype = blk.get("type")
        if btype == "paragraph":
            parts.append(str(blk["text"]))
        elif btype == "heading":
            parts.append("#" * int(blk.get("level", 1)) + " " + str(blk["text"]))
        elif btype == "list":
            marker = "1." if blk.get("ordered") else "-"
            parts.append("\n".join(f"{marker} {item}" for item in blk["items"]))
        elif btype == "code":
            lang = blk.get("language", "")
            parts.append(f"```{lang}\n{blk['code']}\n```")
        else:
            raise PostprocessError(f"blocks[{i}]: unknown block type {btype!r}")
    return "\n\n".join(parts)
