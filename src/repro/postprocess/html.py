"""Markdown → HTML rendering for web display of assistant answers."""

from __future__ import annotations

import html
import re

from repro.postprocess.markdown import Block, CodeBlock, Heading, ListBlock, Paragraph, parse_markdown

_INLINE_CODE_RE = re.compile(r"`([^`]+)`")
_BOLD_RE = re.compile(r"\*\*([^*]+)\*\*")
_ITALIC_RE = re.compile(r"(?<!\*)\*([^*]+)\*(?!\*)")
_LINK_RE = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")


def _render_inline(text: str) -> str:
    escaped = html.escape(text, quote=False)
    escaped = _INLINE_CODE_RE.sub(lambda m: f"<code>{m.group(1)}</code>", escaped)
    escaped = _BOLD_RE.sub(lambda m: f"<strong>{m.group(1)}</strong>", escaped)
    escaped = _ITALIC_RE.sub(lambda m: f"<em>{m.group(1)}</em>", escaped)
    escaped = _LINK_RE.sub(lambda m: f'<a href="{m.group(2)}">{m.group(1)}</a>', escaped)
    return escaped


def _render_block(block: Block) -> str:
    if isinstance(block, Paragraph):
        return f"<p>{_render_inline(block.text)}</p>"
    if isinstance(block, Heading):
        lvl = min(max(block.level, 1), 6)
        return f"<h{lvl}>{_render_inline(block.text)}</h{lvl}>"
    if isinstance(block, ListBlock):
        tag = "ol" if block.ordered else "ul"
        items = "".join(f"<li>{_render_inline(i)}</li>" for i in block.items)
        return f"<{tag}>{items}</{tag}>"
    if isinstance(block, CodeBlock):
        cls = f' class="language-{block.language}"' if block.language else ""
        return f"<pre><code{cls}>{html.escape(block.code)}</code></pre>"
    raise TypeError(f"unknown block type {type(block).__name__}")


def render_html(markdown_text: str) -> str:
    """Render an assistant answer to display-ready HTML."""
    return "\n".join(_render_block(b) for b in parse_markdown(markdown_text))
