"""Postprocessing of LLM output (paper Section III-E, box 4).

The LLM returns Markdown; these tools parse it into blocks, detect
itemized lists, extract code blocks and pass them to a compile check,
and render HTML for web display.  A JSON-output mode mirrors the paper's
note that structured model output removes the need to reverse-engineer
Markdown.
"""

from repro.postprocess.markdown import (
    Block,
    CodeBlock,
    Heading,
    ListBlock,
    Paragraph,
    extract_code_blocks,
    extract_lists,
    parse_markdown,
)
from repro.postprocess.html import render_html
from repro.postprocess.codecheck import CodeCheckResult, check_code_block
from repro.postprocess.json_output import answer_to_json, json_to_answer

__all__ = [
    "Block",
    "Paragraph",
    "Heading",
    "ListBlock",
    "CodeBlock",
    "parse_markdown",
    "extract_code_blocks",
    "extract_lists",
    "render_html",
    "CodeCheckResult",
    "check_code_block",
    "answer_to_json",
    "json_to_answer",
]
