"""The full augmented workflow: boxes 1–4 plus shared history (Fig. 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle
from repro.history import InteractionStore
from repro.pipeline.rag import PipelineResult, RAGPipeline
from repro.pipeline.types import PipelineMode
from repro.service import ReproService

if TYPE_CHECKING:
    from repro.engine import QueryEngine
from repro.postprocess import check_code_block, extract_code_blocks, render_html
from repro.postprocess.codecheck import CodeCheckResult


@dataclass
class WorkflowAnswer:
    """A pipeline result plus box-4 postprocessing artifacts."""

    result: PipelineResult
    html: str
    code_checks: list[CodeCheckResult]
    interaction_id: str | None = None

    @property
    def answer(self) -> str:
        return self.result.answer

    @property
    def all_code_ok(self) -> bool:
        return all(c.ok for c in self.code_checks)


class AugmentedWorkflow:
    """End-to-end question answering with postprocessing and history.

    One instance owns the corpus, the pipeline (in a chosen mode), the
    interaction store, and the identifier set used for code checking.
    """

    def __init__(
        self,
        bundle: CorpusBundle,
        pipeline: RAGPipeline,
        *,
        engine: "QueryEngine | None" = None,
        service: ReproService | None = None,
        store: InteractionStore | None = None,
        embedding_model: str = "",
        record_history: bool = True,
        record_traces: bool = True,
    ) -> None:
        self.bundle = bundle
        self.pipeline = pipeline
        #: The request front door every question goes through: built
        #: from ``engine`` (answer/retrieval/embedding caches, shared
        #: artifact) when one is given, else an engine-less service over
        #: the bare pipeline — one code path either way.
        if service is None:
            service = (
                engine.service
                if engine is not None
                else ReproService.for_pipeline(pipeline)
            )
        self.service = service
        self.engine = engine if engine is not None else service.engine
        self.store = store if store is not None else InteractionStore()
        self.embedding_model = embedding_model
        self.record_history = record_history
        self.record_traces = record_traces
        self._known = frozenset(bundle.manual_page_names)

    def feed_history_into_rag(self, *, min_mean_score: float = 3.0) -> int:
        """Index vetted past interactions into the RAG database.

        This is the paper's Fig. 3 dotted arrow from "Shared histories"
        back into box 1: question/answer pairs whose blind scores cleared
        ``min_mean_score`` become retrievable documents, so the assistant
        learns from its vetted answers.  Returns the number of documents
        added (idempotent: already-indexed interactions are skipped by
        the store's doc-id dedupe).
        """
        if self.pipeline.retriever is None:
            return 0
        docs = self.store.as_documents(min_mean_score=min_mean_score)
        # One write path: the insertion rides the ingest delta lane,
        # which applies the documents to the serving store and scopes
        # cache invalidation to exactly the entries the new material
        # can affect.  (Engine-less services have no caches to touch.)
        from repro.ingest.lifecycle import apply_documents

        report = apply_documents(
            self.engine, docs, store=self.pipeline.retriever.store
        )
        return len(report.added_ids)

    def ask(self, question: str, *, tags: list[str] | None = None) -> WorkflowAnswer:
        """Answer a question; postprocess and (optionally) record it."""
        result = self.service.answer(question, mode=self.pipeline.mode)
        html = render_html(result.answer)
        checks = [
            check_code_block(blk, known_identifiers=self._known)
            for blk in extract_code_blocks(result.answer)
        ]
        interaction_id: str | None = None
        if self.record_history:
            rec = self.store.record_pipeline_result(
                result,
                embedding_model=self.embedding_model,
                tags=tags,
                include_trace=self.record_traces,
            )
            interaction_id = rec.interaction_id
        return WorkflowAnswer(
            result=result, html=html, code_checks=checks, interaction_id=interaction_id
        )


def build_workflow(
    bundle: CorpusBundle | None = None,
    config: WorkflowConfig | None = None,
    *,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    store: InteractionStore | None = None,
) -> AugmentedWorkflow:
    """One-call construction of the complete workflow.

    Compatibility wrapper: delegates to :func:`repro.api.open_workflow`.
    Non-baseline workflows are served through the engine
    :func:`repro.api.open_engine` returns (sharded when configured), so
    a workflow, the CLI, and the bots running in one process all
    warm-start from a single build.
    """
    from repro.api import open_workflow

    return open_workflow(config, bundle=bundle, mode=mode, store=store)
