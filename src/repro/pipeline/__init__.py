"""The augmented PETSc LLM workflow (paper Fig. 3).

Box 1 — locate material: vector RAG search + PETSc keyword search.
Box 2 — refine: reranking K candidates down to L.
Box 3 — the LLM call.
Box 4 — postprocess the Markdown output.

:class:`RAGPipeline` covers boxes 1–3 (with per-stage timing, which is
what Table II reports); :class:`AugmentedWorkflow` adds box 4 and the
shared interaction history.
"""

from repro.pipeline.rag import PipelineResult, RAGPipeline, build_rag_pipeline
from repro.pipeline.types import DegradationEvent, PipelineMode
from repro.pipeline.workflow import AugmentedWorkflow, build_workflow

__all__ = [
    "RAGPipeline",
    "PipelineResult",
    "PipelineMode",
    "DegradationEvent",
    "build_rag_pipeline",
    "AugmentedWorkflow",
    "build_workflow",
]
