"""RAG pipelines: baseline, plain RAG, and reranking-enhanced RAG.

Every invocation is traced: ``answer`` produces a span tree
(``pipeline`` → ``locate`` with one child per retriever, ``refine``,
``llm`` with per-attempt children) carried on ``PipelineResult.trace``.
Timings are derived from that tree, degradation rungs and retries are
span events, and every hop reports into the process metrics registry
through the shared :func:`repro.observability.stage` API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.config import WorkflowConfig
from repro.context import RequestContext
from repro.corpus.builder import CorpusBundle
from repro.errors import ConfigurationError, PartialResultError, ReproError
from repro.llm import ChatMessage, ChatModel, CompletionResult, create_chat_model
from repro.observability import MetricsRegistry, Trace, Tracer, get_registry, stage
from repro.pipeline.types import DegradationEvent, PipelineMode
from repro.prompts import BASELINE_PROMPT, RAG_PROMPT, RAG_SYSTEM_PROMPT, format_context
from repro.rerank import FlashrankLiteReranker, NvidiaSimReranker, Reranker
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import Deadline, RetryPolicy
from repro.retrieval import ManualPageKeywordSearch, RetrievedDocument, VectorRetriever
from repro.retrieval.base import Retriever, dedupe_by_id

if TYPE_CHECKING:
    from repro.index import IndexArtifact
    from repro.vectorstore.store import VectorStore

#: Deterministic bucket layouts for count-valued histograms.
_ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
_CONTEXT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)


@dataclass
class PipelineResult:
    """Everything one pipeline invocation produced, for display and history."""

    question: str
    answer: str
    mode: PipelineMode
    model: str
    contexts: list[RetrievedDocument] = field(default_factory=list)
    candidates: list[RetrievedDocument] = field(default_factory=list)
    prompt: str = ""
    completion: CompletionResult | None = None
    #: LLM tries this answer consumed (1 = first try succeeded).
    attempts: int = 1
    #: Degradation-ladder rungs taken (serialize to their wire strings).
    degraded: list[DegradationEvent] = field(default_factory=list)
    #: Fraction of index shards that answered the retrieval scatter
    #: (1.0 for monolithic indexes and fully healthy scatters; < 1.0
    #: when every replica of some shard was down and the merge degraded
    #: to the survivors — mirrored by ``shard:partial`` in ``degraded``).
    coverage: float = 1.0
    #: The span tree of this invocation; timings below derive from it.
    trace: Trace | None = None

    # The public timing names are kept as the compatibility surface; all
    # three are *derived* from the span tree rather than stored.
    @property
    def rag_seconds(self) -> float:
        """Derived: total duration of the locate + refine spans."""
        if self.trace is None:
            return 0.0
        return self.trace.stage_seconds("locate") + self.trace.stage_seconds("refine")

    @property
    def llm_seconds(self) -> float:
        """Derived: total duration of the llm span."""
        return 0.0 if self.trace is None else self.trace.stage_seconds("llm")

    @property
    def total_seconds(self) -> float:
        """Derived: duration of the root ``pipeline`` span.

        The root covers everything the invocation did — including time
        spent *outside* the locate/refine/llm stage spans (degradation
        bookkeeping, breaker transitions, prompt assembly) — so it is
        always >= ``rag_seconds + llm_seconds`` rather than silently
        dropping the in-between work.
        """
        return 0.0 if self.trace is None else self.trace.root.duration

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)


class RAGPipeline:
    """Boxes 1–3 of the paper's workflow, traced per stage.

    ``mode`` is derived from the configuration: ``baseline`` (no
    retrieval), ``rag`` (first-pass retrieval only, truncated to L), or
    ``rag+rerank`` (K candidates reranked down to L).

    ``priority_retrievers`` compose generically into box 1: each is
    queried with ``k=priority_k`` and its hits are prepended to the main
    retriever's (an exact manual-page match is the highest-confidence
    material available).
    """

    def __init__(
        self,
        chat_model: ChatModel,
        *,
        retriever: Retriever | None = None,
        priority_retrievers: Sequence[Retriever] | None = None,
        reranker: Reranker | None = None,
        first_pass_k: int = 8,
        final_l: int = 4,
        priority_k: int = 2,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_seconds: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        priority = list(priority_retrievers) if priority_retrievers is not None else []
        if retriever is None and (priority or reranker is not None):
            raise ConfigurationError("priority retrievers / reranking require a retriever")
        if not 0 < final_l <= first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got L={final_l}, K={first_pass_k}"
            )
        if priority_k <= 0:
            raise ConfigurationError(f"priority_k must be positive, got {priority_k}")
        self.chat_model = chat_model
        self.retriever = retriever
        self.priority_retrievers = priority
        self.reranker = reranker
        self.first_pass_k = first_pass_k
        self.final_l = final_l
        self.priority_k = priority_k
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.deadline_seconds = deadline_seconds
        self.tracer = tracer if tracer is not None else Tracer()
        self._metrics = metrics

    @property
    def mode(self) -> PipelineMode:
        if self.retriever is None:
            return PipelineMode.BASELINE
        return PipelineMode.RAG_RERANK if self.reranker is not None else PipelineMode.RAG

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    # ------------------------------------------------------------------ stages
    def _locate(self, question: str, ctx: RequestContext) -> list[RetrievedDocument]:
        """Box 1: every retriever runs in its own child span."""
        assert self.retriever is not None
        registry = self._effective_registry(ctx)
        hits: list[RetrievedDocument] = []
        # Priority hits are prepended: they outrank similarity scores.
        for r in self.priority_retrievers:
            with stage(
                r.name, metric=f"repro.retrieval.{r.name}",
                tracer=ctx.tracer, registry=registry, k=self.priority_k,
            ) as span:
                found = r.retrieve(question, k=self.priority_k, ctx=ctx)
                if span is not None:
                    span.attributes["hits"] = len(found)
            hits.extend(found)
        with stage(
            self.retriever.name, metric=f"repro.retrieval.{self.retriever.name}",
            tracer=ctx.tracer, registry=registry, k=self.first_pass_k,
        ) as span:
            found = self.retriever.retrieve(question, k=self.first_pass_k, ctx=ctx)
            if span is not None:
                span.attributes["hits"] = len(found)
        hits.extend(found)
        cap = self.first_pass_k + self.priority_k * len(self.priority_retrievers)
        return dedupe_by_id(hits)[:cap]

    def _refine(
        self,
        question: str,
        candidates: list[RetrievedDocument],
        ctx: RequestContext,
    ) -> list[RetrievedDocument]:
        """Box 2: rerank K candidates down to L (or truncate when disabled)."""
        if self.reranker is None:
            return candidates[: self.final_l]
        results = self.reranker.rerank(question, candidates, top_n=self.final_l, ctx=ctx)
        return [
            RetrievedDocument(
                document=r.document.document,
                score=r.rerank_score,
                origin=f"rerank[{self.reranker.name}]",
            )
            for r in results
        ]

    def _effective_registry(self, ctx: RequestContext) -> MetricsRegistry:
        """The request's explicit registry, else the pipeline fallback."""
        return ctx.registry if ctx.registry is not None else self._registry()

    # ------------------------------------------------------------------ resilience
    def _complete_resilient(
        self, messages: list[ChatMessage], *, key: str, ctx: RequestContext
    ) -> tuple[CompletionResult, int]:
        """The LLM call under breaker + retry policy; returns (result, attempts).

        Each try opens an ``attempt`` child span under the current
        (``llm``) span; breaker state transitions observed across a call
        become span events.
        """
        counter = itertools.count(1)

        def base_call() -> CompletionResult:
            return self.chat_model.complete(messages, ctx=ctx)

        def guarded_call() -> CompletionResult:
            if self.breaker is None:
                return base_call()
            before = self.breaker.state
            try:
                return self.breaker.call(base_call)
            finally:
                after = self.breaker.state
                if after is not before:
                    ctx.tracer.event(
                        f"breaker:{after.value}", breaker=self.breaker.name
                    )

        def attempt_call() -> CompletionResult:
            with ctx.tracer.span("attempt", index=next(counter)):
                return guarded_call()

        if self.retry_policy is None:
            return attempt_call(), 1
        outcome = self.retry_policy.execute(
            attempt_call, key=("llm", self.chat_model.name, key), deadline=ctx.deadline
        )
        if outcome.attempts > 1:
            ctx.tracer.event("llm:retried", attempts=outcome.attempts)
        assert isinstance(outcome.value, CompletionResult)
        return outcome.value, outcome.attempts

    # ------------------------------------------------------------------ entry
    def answer(self, question: str, *, ctx: RequestContext | None = None) -> PipelineResult:
        """Run the full pipeline with the degradation ladder, traced.

        Ladder (each rung trades quality for availability): reranker
        failure -> truncate candidates to L; retrieval failure -> fall
        back to the baseline (no-context) prompt; transient LLM failure
        -> retry under the policy.  Only when every rung is exhausted
        does the error propagate.  Every rung taken is recorded both in
        ``degraded`` and as an event on the root span.

        Without an explicit ``ctx``, a sequential one is created over
        the pipeline's own tracer/metrics — the single-caller behavior.
        Concurrent callers (the engine's worker pool) must pass their
        own context so span trees and deadlines never interleave.
        """
        if ctx is None:
            ctx = RequestContext.create(
                tracer=self.tracer,
                registry=self._metrics,
                deadline=(
                    Deadline(self.deadline_seconds)
                    if self.deadline_seconds is not None
                    else None
                ),
            )
        registry = self._effective_registry(ctx)
        tracer = ctx.tracer
        registry.counter("repro.pipeline.requests").inc()
        degraded: list[DegradationEvent] = []
        candidates: list[RetrievedDocument] = []
        contexts: list[RetrievedDocument] = []
        located = False
        coverage = 1.0
        try:
            with tracer.trace(
                "pipeline", mode=str(self.mode), model=self.chat_model.name
            ) as trace:

                def degrade(event: DegradationEvent) -> None:
                    degraded.append(event)
                    trace.root.add_event(str(event), at=tracer.clock())
                    registry.counter("repro.pipeline.degradations").inc()
                    registry.counter(
                        f"repro.pipeline.degradation.{event.metric_suffix}"
                    ).inc()

                if self.retriever is not None:
                    try:
                        with stage(
                            "locate", metric="repro.pipeline.locate",
                            tracer=tracer, registry=registry,
                        ):
                            candidates = self._locate(question, ctx)
                        located = True
                    except PartialResultError:
                        # The caller demanded full shard coverage; no
                        # ladder rung can supply the missing shards, so
                        # the typed error propagates instead of silently
                        # degrading to the baseline prompt.
                        raise
                    except ReproError:
                        degrade(DegradationEvent.RETRIEVAL_BASELINE_FALLBACK)
                    coverage = float(ctx.scratch.pop("shard_coverage", 1.0))
                    if located and coverage < 1.0:
                        degrade(DegradationEvent.SHARD_PARTIAL)
                    if located:
                        try:
                            with stage(
                                "refine", metric="repro.pipeline.refine",
                                tracer=tracer, registry=registry,
                                reranker=self.reranker.name if self.reranker else "truncate",
                            ):
                                contexts = self._refine(question, candidates, ctx)
                        except ReproError:
                            degrade(DegradationEvent.RERANK_TRUNCATE)
                            contexts = candidates[: self.final_l]
                if located:
                    prompt = RAG_PROMPT.format(
                        context=format_context(contexts), question=question
                    )
                else:
                    prompt = BASELINE_PROMPT.format(question=question)

                messages = [
                    ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
                    ChatMessage(role="user", content=prompt),
                ]
                with stage(
                    "llm", metric="repro.pipeline.llm",
                    tracer=tracer, registry=registry, model=self.chat_model.name,
                ):
                    completion, attempts = self._complete_resilient(
                        messages, key=question, ctx=ctx
                    )
                if completion.finish_reason == "length":
                    degrade(DegradationEvent.LLM_TRUNCATED)
        except BaseException:
            registry.counter("repro.pipeline.failures").inc()
            raise

        registry.counter("repro.llm.completions").inc()
        registry.counter("repro.llm.prompt_tokens").inc(completion.usage.prompt_tokens)
        registry.counter("repro.llm.completion_tokens").inc(
            completion.usage.completion_tokens
        )
        registry.histogram(
            "repro.pipeline.attempts", _ATTEMPT_BUCKETS, deterministic=True
        ).observe(attempts)
        registry.histogram(
            "repro.pipeline.contexts", _CONTEXT_BUCKETS, deterministic=True
        ).observe(len(contexts))

        return PipelineResult(
            question=question,
            answer=completion.text,
            mode=self.mode,
            model=self.chat_model.name,
            contexts=contexts,
            candidates=candidates,
            prompt=prompt,
            completion=completion,
            attempts=attempts,
            degraded=degraded,
            coverage=coverage,
            trace=trace,
        )


def _resilience_parts(config: WorkflowConfig):
    resil = config.resilience
    policy = RetryPolicy.from_config(resil) if resil.enabled else None
    breaker = CircuitBreaker.from_config(resil, name="llm") if resil.enabled else None
    # metrics=None routes to the process registry; a disabled config gets
    # a private sink so the shared registry stays untouched.
    metrics = None if config.observability.metrics_enabled else MetricsRegistry()
    return policy, breaker, resil.deadline_seconds, metrics


def _chat_model(
    config: WorkflowConfig,
    *,
    registry,
    keyword: ManualPageKeywordSearch,
    fault_injector: FaultInjector | None,
) -> ChatModel:
    chat: ChatModel = create_chat_model(
        config.chat_model,
        registry=registry,
        known_identifiers=keyword.known_identifiers(),
        iterations_per_token=config.iterations_per_token,
    )
    if fault_injector is not None:
        chat = fault_injector.wrap_model(chat)
    return chat


def pipeline_from_artifact(
    artifact: "IndexArtifact",
    config: WorkflowConfig | None = None,
    *,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    fault_injector: FaultInjector | None = None,
    store: "VectorStore | None" = None,
    retriever_wrapper: "Callable[[Retriever], Retriever] | None" = None,
) -> RAGPipeline:
    """Assemble a pipeline over a prebuilt :class:`~repro.index.IndexArtifact`.

    The expensive work (chunking, embedding, vector-store construction)
    already happened when the artifact was built; this function only
    wires retrievers, reranker, resilience, and the chat model around it.

    ``store`` substitutes a view of the artifact's vector store — the
    engine passes a copy-on-write fork carrying its caching query
    embedding, so live pipelines can mutate their store without touching
    the shared artifact.  ``retriever_wrapper`` is applied to the main
    retriever *after* fault wrapping, which puts engine caches outside
    the fault site (a cache hit legitimately skips an injected fault
    only in cache-enabled, non-chaos builds; chaos engines disable the
    caches entirely).
    """
    config = config or WorkflowConfig()
    config.validate()
    mode = PipelineMode.coerce(mode)
    rc = config.retrieval
    policy, breaker, deadline_seconds, metrics = _resilience_parts(config)

    keyword = artifact.keyword_search()
    chat = _chat_model(
        config, registry=artifact.registry, keyword=keyword, fault_injector=fault_injector
    )
    if mode is PipelineMode.BASELINE:
        return RAGPipeline(
            chat,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=deadline_seconds,
            metrics=metrics,
        )

    retriever: Retriever = VectorRetriever(store if store is not None else artifact.store)
    if fault_injector is not None:
        retriever = fault_injector.wrap_retriever(retriever)
    if retriever_wrapper is not None:
        retriever = retriever_wrapper(retriever)
    priority = [keyword] if rc.use_keyword_search else None

    reranker: Reranker | None = None
    if mode is PipelineMode.RAG_RERANK:
        if rc.reranker == "flashrank-lite":
            reranker = FlashrankLiteReranker(artifact.chunks)
        else:
            reranker = NvidiaSimReranker(artifact.chunks)
        if fault_injector is not None:
            reranker = fault_injector.wrap_reranker(reranker)
    return RAGPipeline(
        chat,
        retriever=retriever,
        priority_retrievers=priority,
        reranker=reranker,
        first_pass_k=rc.first_pass_k,
        final_l=rc.final_l,
        retry_policy=policy,
        breaker=breaker,
        deadline_seconds=deadline_seconds,
        metrics=metrics,
    )


def baseline_pipeline(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    fault_injector: FaultInjector | None = None,
) -> RAGPipeline:
    """A retrieval-free pipeline: no index, keyword search + LLM only."""
    config = config or WorkflowConfig()
    policy, breaker, deadline_seconds, metrics = _resilience_parts(config)
    keyword = ManualPageKeywordSearch(bundle)
    chat = _chat_model(
        config, registry=bundle.registry, keyword=keyword, fault_injector=fault_injector
    )
    return RAGPipeline(
        chat,
        retry_policy=policy,
        breaker=breaker,
        deadline_seconds=deadline_seconds,
        metrics=metrics,
    )


def build_rag_pipeline(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    fault_injector: FaultInjector | None = None,
) -> RAGPipeline:
    """Construct a pipeline over the corpus in one of the three modes.

    Compatibility wrapper: delegates to :func:`repro.api.open_pipeline`,
    which resolves the shared (possibly sharded)
    :class:`~repro.index.IndexArtifact` and assembles the pipeline
    around it.  ``mode`` accepts a :class:`PipelineMode` or its wire
    string (``"baseline"``, ``"rag"``, ``"rag+rerank"``);
    ``fault_injector`` chaos-wraps the chat model, retriever, and
    reranker hops for reproducible failure testing.
    """
    from repro.api import open_pipeline

    return open_pipeline(
        config, bundle=bundle, mode=mode, fault_injector=fault_injector
    )
