"""RAG pipelines: baseline, plain RAG, and reranking-enhanced RAG.

Every invocation is traced: ``answer`` produces a span tree
(``pipeline`` → ``locate`` with one child per retriever, ``refine``,
``llm`` with per-attempt children) carried on ``PipelineResult.trace``.
Timings are derived from that tree, degradation rungs and retries are
span events, and every hop reports into the process metrics registry
through the shared :func:`repro.observability.stage` API.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Sequence

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus
from repro.embeddings import create_embedding_model
from repro.errors import ConfigurationError, ReproError
from repro.llm import ChatMessage, ChatModel, CompletionResult, create_chat_model
from repro.observability import MetricsRegistry, Trace, Tracer, get_registry, stage
from repro.pipeline.types import DegradationEvent, PipelineMode
from repro.prompts import BASELINE_PROMPT, RAG_PROMPT, RAG_SYSTEM_PROMPT, format_context
from repro.rerank import FlashrankLiteReranker, NvidiaSimReranker, Reranker
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import Deadline, RetryPolicy
from repro.retrieval import ManualPageKeywordSearch, RetrievedDocument, VectorRetriever
from repro.retrieval.base import Retriever, dedupe_by_id
from repro.vectorstore import VectorStore

#: Deterministic bucket layouts for count-valued histograms.
_ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
_CONTEXT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)


@dataclass
class PipelineResult:
    """Everything one pipeline invocation produced, for display and history."""

    question: str
    answer: str
    mode: PipelineMode
    model: str
    contexts: list[RetrievedDocument] = field(default_factory=list)
    candidates: list[RetrievedDocument] = field(default_factory=list)
    prompt: str = ""
    completion: CompletionResult | None = None
    #: LLM tries this answer consumed (1 = first try succeeded).
    attempts: int = 1
    #: Degradation-ladder rungs taken (serialize to their wire strings).
    degraded: list[DegradationEvent] = field(default_factory=list)
    #: The span tree of this invocation; timings below derive from it.
    trace: Trace | None = None

    # The public timing names are kept as the compatibility surface; all
    # three are *derived* from the span tree rather than stored.
    @property
    def rag_seconds(self) -> float:
        """Derived: total duration of the locate + refine spans."""
        if self.trace is None:
            return 0.0
        return self.trace.stage_seconds("locate") + self.trace.stage_seconds("refine")

    @property
    def llm_seconds(self) -> float:
        """Derived: total duration of the llm span."""
        return 0.0 if self.trace is None else self.trace.stage_seconds("llm")

    @property
    def total_seconds(self) -> float:
        """Derived: the two stage timings summed."""
        return self.rag_seconds + self.llm_seconds

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)


class RAGPipeline:
    """Boxes 1–3 of the paper's workflow, traced per stage.

    ``mode`` is derived from the configuration: ``baseline`` (no
    retrieval), ``rag`` (first-pass retrieval only, truncated to L), or
    ``rag+rerank`` (K candidates reranked down to L).

    ``priority_retrievers`` compose generically into box 1: each is
    queried with ``k=priority_k`` and its hits are prepended to the main
    retriever's (an exact manual-page match is the highest-confidence
    material available).  The old ``keyword_search=`` parameter is a
    deprecated shim onto the same list.
    """

    def __init__(
        self,
        chat_model: ChatModel,
        *,
        retriever: Retriever | None = None,
        priority_retrievers: Sequence[Retriever] | None = None,
        keyword_search: ManualPageKeywordSearch | None = None,
        reranker: Reranker | None = None,
        first_pass_k: int = 8,
        final_l: int = 4,
        priority_k: int = 2,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_seconds: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        priority = list(priority_retrievers) if priority_retrievers is not None else []
        if keyword_search is not None:
            warnings.warn(
                "RAGPipeline(keyword_search=...) is deprecated; pass "
                "priority_retrievers=[keyword_search] instead",
                DeprecationWarning,
                stacklevel=2,
            )
            priority.append(keyword_search)
        if retriever is None and (priority or reranker is not None):
            raise ConfigurationError("priority retrievers / reranking require a retriever")
        if not 0 < final_l <= first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got L={final_l}, K={first_pass_k}"
            )
        if priority_k <= 0:
            raise ConfigurationError(f"priority_k must be positive, got {priority_k}")
        self.chat_model = chat_model
        self.retriever = retriever
        self.priority_retrievers = priority
        self.reranker = reranker
        self.first_pass_k = first_pass_k
        self.final_l = final_l
        self.priority_k = priority_k
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.deadline_seconds = deadline_seconds
        self.tracer = tracer if tracer is not None else Tracer()
        self._metrics = metrics

    @property
    def keyword_search(self) -> Retriever | None:
        """Deprecated accessor: the first priority retriever, if any."""
        return self.priority_retrievers[0] if self.priority_retrievers else None

    @property
    def mode(self) -> PipelineMode:
        if self.retriever is None:
            return PipelineMode.BASELINE
        return PipelineMode.RAG_RERANK if self.reranker is not None else PipelineMode.RAG

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_registry()

    # ------------------------------------------------------------------ stages
    def _locate(self, question: str) -> list[RetrievedDocument]:
        """Box 1: every retriever runs in its own child span."""
        assert self.retriever is not None
        registry = self._registry()
        hits: list[RetrievedDocument] = []
        # Priority hits are prepended: they outrank similarity scores.
        for r in self.priority_retrievers:
            with stage(
                r.name, metric=f"repro.retrieval.{r.name}",
                tracer=self.tracer, registry=registry, k=self.priority_k,
            ) as span:
                found = r.retrieve(question, k=self.priority_k)
                if span is not None:
                    span.attributes["hits"] = len(found)
            hits.extend(found)
        with stage(
            self.retriever.name, metric=f"repro.retrieval.{self.retriever.name}",
            tracer=self.tracer, registry=registry, k=self.first_pass_k,
        ) as span:
            found = self.retriever.retrieve(question, k=self.first_pass_k)
            if span is not None:
                span.attributes["hits"] = len(found)
        hits.extend(found)
        cap = self.first_pass_k + self.priority_k * len(self.priority_retrievers)
        return dedupe_by_id(hits)[:cap]

    def _refine(self, question: str, candidates: list[RetrievedDocument]) -> list[RetrievedDocument]:
        """Box 2: rerank K candidates down to L (or truncate when disabled)."""
        if self.reranker is None:
            return candidates[: self.final_l]
        results = self.reranker.rerank(question, candidates, top_n=self.final_l)
        return [
            RetrievedDocument(
                document=r.document.document,
                score=r.rerank_score,
                origin=f"rerank[{self.reranker.name}]",
            )
            for r in results
        ]

    # ------------------------------------------------------------------ resilience
    def _complete_resilient(
        self, messages: list[ChatMessage], *, key: str, deadline: Deadline | None
    ) -> tuple[CompletionResult, int]:
        """The LLM call under breaker + retry policy; returns (result, attempts).

        Each try opens an ``attempt`` child span under the current
        (``llm``) span; breaker state transitions observed across a call
        become span events.
        """
        counter = itertools.count(1)

        def base_call() -> CompletionResult:
            return self.chat_model.complete(messages)

        def guarded_call() -> CompletionResult:
            if self.breaker is None:
                return base_call()
            before = self.breaker.state
            try:
                return self.breaker.call(base_call)
            finally:
                after = self.breaker.state
                if after is not before:
                    self.tracer.event(
                        f"breaker:{after.value}", breaker=self.breaker.name
                    )

        def attempt_call() -> CompletionResult:
            with self.tracer.span("attempt", index=next(counter)):
                return guarded_call()

        if self.retry_policy is None:
            return attempt_call(), 1
        outcome = self.retry_policy.execute(
            attempt_call, key=("llm", self.chat_model.name, key), deadline=deadline
        )
        if outcome.attempts > 1:
            self.tracer.event("llm:retried", attempts=outcome.attempts)
        assert isinstance(outcome.value, CompletionResult)
        return outcome.value, outcome.attempts

    # ------------------------------------------------------------------ entry
    def answer(self, question: str) -> PipelineResult:
        """Run the full pipeline with the degradation ladder, traced.

        Ladder (each rung trades quality for availability): reranker
        failure -> truncate candidates to L; retrieval failure -> fall
        back to the baseline (no-context) prompt; transient LLM failure
        -> retry under the policy.  Only when every rung is exhausted
        does the error propagate.  Every rung taken is recorded both in
        ``degraded`` and as an event on the root span.
        """
        registry = self._registry()
        registry.counter("repro.pipeline.requests").inc()
        degraded: list[DegradationEvent] = []
        candidates: list[RetrievedDocument] = []
        contexts: list[RetrievedDocument] = []
        deadline = (
            Deadline(self.deadline_seconds) if self.deadline_seconds is not None else None
        )
        located = False
        try:
            with self.tracer.trace(
                "pipeline", mode=str(self.mode), model=self.chat_model.name
            ) as trace:

                def degrade(event: DegradationEvent) -> None:
                    degraded.append(event)
                    trace.root.add_event(str(event), at=self.tracer.clock())
                    registry.counter("repro.pipeline.degradations").inc()
                    registry.counter(
                        f"repro.pipeline.degradation.{event.metric_suffix}"
                    ).inc()

                if self.retriever is not None:
                    try:
                        with stage(
                            "locate", metric="repro.pipeline.locate",
                            tracer=self.tracer, registry=registry,
                        ):
                            candidates = self._locate(question)
                        located = True
                    except ReproError:
                        degrade(DegradationEvent.RETRIEVAL_BASELINE_FALLBACK)
                    if located:
                        try:
                            with stage(
                                "refine", metric="repro.pipeline.refine",
                                tracer=self.tracer, registry=registry,
                                reranker=self.reranker.name if self.reranker else "truncate",
                            ):
                                contexts = self._refine(question, candidates)
                        except ReproError:
                            degrade(DegradationEvent.RERANK_TRUNCATE)
                            contexts = candidates[: self.final_l]
                if located:
                    prompt = RAG_PROMPT.format(
                        context=format_context(contexts), question=question
                    )
                else:
                    prompt = BASELINE_PROMPT.format(question=question)

                messages = [
                    ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
                    ChatMessage(role="user", content=prompt),
                ]
                with stage(
                    "llm", metric="repro.pipeline.llm",
                    tracer=self.tracer, registry=registry, model=self.chat_model.name,
                ):
                    completion, attempts = self._complete_resilient(
                        messages, key=question, deadline=deadline
                    )
                if completion.finish_reason == "length":
                    degrade(DegradationEvent.LLM_TRUNCATED)
        except BaseException:
            registry.counter("repro.pipeline.failures").inc()
            raise

        registry.counter("repro.llm.completions").inc()
        registry.counter("repro.llm.prompt_tokens").inc(completion.usage.prompt_tokens)
        registry.counter("repro.llm.completion_tokens").inc(
            completion.usage.completion_tokens
        )
        registry.histogram(
            "repro.pipeline.attempts", _ATTEMPT_BUCKETS, deterministic=True
        ).observe(attempts)
        registry.histogram(
            "repro.pipeline.contexts", _CONTEXT_BUCKETS, deterministic=True
        ).observe(len(contexts))

        return PipelineResult(
            question=question,
            answer=completion.text,
            mode=self.mode,
            model=self.chat_model.name,
            contexts=contexts,
            candidates=candidates,
            prompt=prompt,
            completion=completion,
            attempts=attempts,
            degraded=degraded,
            trace=trace,
        )


def build_rag_pipeline(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    mode: str | PipelineMode = PipelineMode.RAG_RERANK,
    fault_injector: FaultInjector | None = None,
) -> RAGPipeline:
    """Construct a pipeline over the corpus in one of the three modes.

    ``mode`` accepts a :class:`PipelineMode` or its wire string
    (``"baseline"``, ``"rag"``, ``"rag+rerank"``).  ``fault_injector``
    chaos-wraps the chat model, retriever, and reranker hops for
    reproducible failure testing.
    """
    config = config or WorkflowConfig()
    config.validate()
    mode = PipelineMode.coerce(mode)
    rc: RetrievalConfig = config.retrieval
    resil = config.resilience
    policy = RetryPolicy.from_config(resil) if resil.enabled else None
    breaker = CircuitBreaker.from_config(resil, name="llm") if resil.enabled else None
    # metrics=None routes to the process registry; a disabled config gets
    # a private sink so the shared registry stays untouched.
    metrics = None if config.observability.metrics_enabled else MetricsRegistry()

    keyword = ManualPageKeywordSearch(bundle)
    chat: ChatModel = create_chat_model(
        config.chat_model,
        registry=bundle.registry,
        known_identifiers=keyword.known_identifiers(),
        iterations_per_token=config.iterations_per_token,
    )
    if fault_injector is not None:
        chat = fault_injector.wrap_model(chat)
    if mode is PipelineMode.BASELINE:
        return RAGPipeline(
            chat,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=resil.deadline_seconds,
            metrics=metrics,
        )

    chunks = chunk_corpus(
        bundle,
        include_mail=rc.include_mail_archives,
        chunk_size=rc.chunk_size,
        chunk_overlap=rc.chunk_overlap,
    )
    embedding = create_embedding_model(
        rc.embedding_model, corpus_texts=[c.text for c in chunks]
    )
    store = VectorStore.from_documents(chunks, embedding)
    retriever: Retriever = VectorRetriever(store)
    if fault_injector is not None:
        retriever = fault_injector.wrap_retriever(retriever)
    priority = [keyword] if rc.use_keyword_search else None

    if mode is PipelineMode.RAG:
        return RAGPipeline(
            chat,
            retriever=retriever,
            priority_retrievers=priority,
            first_pass_k=rc.first_pass_k,
            final_l=rc.final_l,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=resil.deadline_seconds,
            metrics=metrics,
        )
    reranker: Reranker
    if rc.reranker == "flashrank-lite":
        reranker = FlashrankLiteReranker(chunks)
    else:
        reranker = NvidiaSimReranker(chunks)
    if fault_injector is not None:
        reranker = fault_injector.wrap_reranker(reranker)
    return RAGPipeline(
        chat,
        retriever=retriever,
        priority_retrievers=priority,
        reranker=reranker,
        first_pass_k=rc.first_pass_k,
        final_l=rc.final_l,
        retry_policy=policy,
        breaker=breaker,
        deadline_seconds=resil.deadline_seconds,
        metrics=metrics,
    )
