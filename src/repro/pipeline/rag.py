"""RAG pipelines: baseline, plain RAG, and reranking-enhanced RAG."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus
from repro.embeddings import create_embedding_model
from repro.errors import ConfigurationError
from repro.llm import ChatMessage, ChatModel, CompletionResult, create_chat_model
from repro.prompts import BASELINE_PROMPT, RAG_PROMPT, RAG_SYSTEM_PROMPT, format_context
from repro.rerank import FlashrankLiteReranker, NvidiaSimReranker, Reranker
from repro.retrieval import ManualPageKeywordSearch, RetrievedDocument, VectorRetriever
from repro.retrieval.base import dedupe_by_id
from repro.vectorstore import VectorStore


@dataclass
class PipelineResult:
    """Everything one pipeline invocation produced, for display and history."""

    question: str
    answer: str
    mode: str
    model: str
    contexts: list[RetrievedDocument] = field(default_factory=list)
    candidates: list[RetrievedDocument] = field(default_factory=list)
    prompt: str = ""
    rag_seconds: float = 0.0
    llm_seconds: float = 0.0
    completion: CompletionResult | None = None

    @property
    def total_seconds(self) -> float:
        return self.rag_seconds + self.llm_seconds


class RAGPipeline:
    """Boxes 1–3 of the paper's workflow with per-stage timing.

    ``mode`` is derived from the configuration: ``baseline`` (no
    retrieval), ``rag`` (first-pass retrieval only, truncated to L), or
    ``rag+rerank`` (K candidates reranked down to L).
    """

    def __init__(
        self,
        chat_model: ChatModel,
        *,
        retriever: VectorRetriever | None = None,
        keyword_search: ManualPageKeywordSearch | None = None,
        reranker: Reranker | None = None,
        first_pass_k: int = 8,
        final_l: int = 4,
    ) -> None:
        if retriever is None and (keyword_search is not None or reranker is not None):
            raise ConfigurationError("keyword search / reranking require a retriever")
        if not 0 < final_l <= first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got L={final_l}, K={first_pass_k}"
            )
        self.chat_model = chat_model
        self.retriever = retriever
        self.keyword_search = keyword_search
        self.reranker = reranker
        self.first_pass_k = first_pass_k
        self.final_l = final_l

    @property
    def mode(self) -> str:
        if self.retriever is None:
            return "baseline"
        return "rag+rerank" if self.reranker is not None else "rag"

    # ------------------------------------------------------------------ stages
    def _locate(self, question: str) -> list[RetrievedDocument]:
        """Box 1: vector search plus PETSc-specific keyword search."""
        assert self.retriever is not None
        hits = self.retriever.retrieve(question, k=self.first_pass_k)
        if self.keyword_search is not None:
            # Keyword hits are prepended: an exact manual-page match is
            # the highest-confidence material available.
            hits = self.keyword_search.retrieve(question, k=2) + hits
        return dedupe_by_id(hits)[: self.first_pass_k + 2]

    def _refine(self, question: str, candidates: list[RetrievedDocument]) -> list[RetrievedDocument]:
        """Box 2: rerank K candidates down to L (or truncate when disabled)."""
        if self.reranker is None:
            return candidates[: self.final_l]
        results = self.reranker.rerank(question, candidates, top_n=self.final_l)
        return [
            RetrievedDocument(
                document=r.document.document,
                score=r.rerank_score,
                origin=f"rerank[{self.reranker.name}]",
            )
            for r in results
        ]

    # ------------------------------------------------------------------ entry
    def answer(self, question: str) -> PipelineResult:
        candidates: list[RetrievedDocument] = []
        contexts: list[RetrievedDocument] = []
        rag_seconds = 0.0
        if self.retriever is not None:
            t0 = time.perf_counter()
            candidates = self._locate(question)
            contexts = self._refine(question, candidates)
            rag_seconds = time.perf_counter() - t0
            prompt = RAG_PROMPT.format(context=format_context(contexts), question=question)
        else:
            prompt = BASELINE_PROMPT.format(question=question)

        messages = [
            ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
            ChatMessage(role="user", content=prompt),
        ]
        t0 = time.perf_counter()
        completion = self.chat_model.complete(messages)
        llm_seconds = time.perf_counter() - t0

        return PipelineResult(
            question=question,
            answer=completion.text,
            mode=self.mode,
            model=self.chat_model.name,
            contexts=contexts,
            candidates=candidates,
            prompt=prompt,
            rag_seconds=rag_seconds,
            llm_seconds=llm_seconds,
            completion=completion,
        )


def build_rag_pipeline(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    mode: str = "rag+rerank",
) -> RAGPipeline:
    """Construct a pipeline over the corpus in one of the three modes.

    ``mode``: ``"baseline"``, ``"rag"``, or ``"rag+rerank"``.
    """
    config = config or WorkflowConfig()
    config.validate()
    rc: RetrievalConfig = config.retrieval

    keyword = ManualPageKeywordSearch(bundle)
    chat = create_chat_model(
        config.chat_model,
        registry=bundle.registry,
        known_identifiers=keyword.known_identifiers(),
        iterations_per_token=config.iterations_per_token,
    )
    if mode == "baseline":
        return RAGPipeline(chat)

    chunks = chunk_corpus(
        bundle,
        include_mail=rc.include_mail_archives,
        chunk_size=rc.chunk_size,
        chunk_overlap=rc.chunk_overlap,
    )
    embedding = create_embedding_model(
        rc.embedding_model, corpus_texts=[c.text for c in chunks]
    )
    store = VectorStore.from_documents(chunks, embedding)
    retriever = VectorRetriever(store)
    kw = keyword if rc.use_keyword_search else None

    if mode == "rag":
        return RAGPipeline(
            chat,
            retriever=retriever,
            keyword_search=kw,
            first_pass_k=rc.first_pass_k,
            final_l=rc.final_l,
        )
    if mode == "rag+rerank":
        reranker: Reranker
        if rc.reranker == "flashrank-lite":
            reranker = FlashrankLiteReranker(chunks)
        else:
            reranker = NvidiaSimReranker(chunks)
        return RAGPipeline(
            chat,
            retriever=retriever,
            keyword_search=kw,
            reranker=reranker,
            first_pass_k=rc.first_pass_k,
            final_l=rc.final_l,
        )
    raise ConfigurationError(f"unknown pipeline mode {mode!r}")
