"""RAG pipelines: baseline, plain RAG, and reranking-enhanced RAG."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus.builder import CorpusBundle, chunk_corpus
from repro.embeddings import create_embedding_model
from repro.errors import ConfigurationError, ReproError
from repro.llm import ChatMessage, ChatModel, CompletionResult, create_chat_model
from repro.prompts import BASELINE_PROMPT, RAG_PROMPT, RAG_SYSTEM_PROMPT, format_context
from repro.rerank import FlashrankLiteReranker, NvidiaSimReranker, Reranker
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import Deadline, RetryPolicy
from repro.retrieval import ManualPageKeywordSearch, RetrievedDocument, VectorRetriever
from repro.retrieval.base import Retriever, dedupe_by_id
from repro.vectorstore import VectorStore


@dataclass
class PipelineResult:
    """Everything one pipeline invocation produced, for display and history."""

    question: str
    answer: str
    mode: str
    model: str
    contexts: list[RetrievedDocument] = field(default_factory=list)
    candidates: list[RetrievedDocument] = field(default_factory=list)
    prompt: str = ""
    rag_seconds: float = 0.0
    llm_seconds: float = 0.0
    completion: CompletionResult | None = None
    #: LLM tries this answer consumed (1 = first try succeeded).
    attempts: int = 1
    #: Degradation-ladder events, e.g. ``"rerank:truncate"``,
    #: ``"retrieval:baseline-fallback"``.
    degraded: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.rag_seconds + self.llm_seconds

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)


class RAGPipeline:
    """Boxes 1–3 of the paper's workflow with per-stage timing.

    ``mode`` is derived from the configuration: ``baseline`` (no
    retrieval), ``rag`` (first-pass retrieval only, truncated to L), or
    ``rag+rerank`` (K candidates reranked down to L).
    """

    def __init__(
        self,
        chat_model: ChatModel,
        *,
        retriever: Retriever | None = None,
        keyword_search: ManualPageKeywordSearch | None = None,
        reranker: Reranker | None = None,
        first_pass_k: int = 8,
        final_l: int = 4,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_seconds: float | None = None,
    ) -> None:
        if retriever is None and (keyword_search is not None or reranker is not None):
            raise ConfigurationError("keyword search / reranking require a retriever")
        if not 0 < final_l <= first_pass_k:
            raise ConfigurationError(
                f"final_l must be in (0, first_pass_k], got L={final_l}, K={first_pass_k}"
            )
        self.chat_model = chat_model
        self.retriever = retriever
        self.keyword_search = keyword_search
        self.reranker = reranker
        self.first_pass_k = first_pass_k
        self.final_l = final_l
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.deadline_seconds = deadline_seconds

    @property
    def mode(self) -> str:
        if self.retriever is None:
            return "baseline"
        return "rag+rerank" if self.reranker is not None else "rag"

    # ------------------------------------------------------------------ stages
    def _locate(self, question: str) -> list[RetrievedDocument]:
        """Box 1: vector search plus PETSc-specific keyword search."""
        assert self.retriever is not None
        hits = self.retriever.retrieve(question, k=self.first_pass_k)
        if self.keyword_search is not None:
            # Keyword hits are prepended: an exact manual-page match is
            # the highest-confidence material available.
            hits = self.keyword_search.retrieve(question, k=2) + hits
        return dedupe_by_id(hits)[: self.first_pass_k + 2]

    def _refine(self, question: str, candidates: list[RetrievedDocument]) -> list[RetrievedDocument]:
        """Box 2: rerank K candidates down to L (or truncate when disabled)."""
        if self.reranker is None:
            return candidates[: self.final_l]
        results = self.reranker.rerank(question, candidates, top_n=self.final_l)
        return [
            RetrievedDocument(
                document=r.document.document,
                score=r.rerank_score,
                origin=f"rerank[{self.reranker.name}]",
            )
            for r in results
        ]

    # ------------------------------------------------------------------ resilience
    def _complete_resilient(
        self, messages: list[ChatMessage], *, key: str, deadline: Deadline | None
    ) -> tuple[CompletionResult, int]:
        """The LLM call under breaker + retry policy; returns (result, attempts)."""
        if self.breaker is None:
            call = lambda: self.chat_model.complete(messages)  # noqa: E731
        else:
            call = lambda: self.breaker.call(lambda: self.chat_model.complete(messages))  # noqa: E731
        if self.retry_policy is None:
            return call(), 1
        outcome = self.retry_policy.execute(
            call, key=("llm", self.chat_model.name, key), deadline=deadline
        )
        assert isinstance(outcome.value, CompletionResult)
        return outcome.value, outcome.attempts

    # ------------------------------------------------------------------ entry
    def answer(self, question: str) -> PipelineResult:
        """Run the full pipeline with the degradation ladder.

        Ladder (each rung trades quality for availability):
        reranker failure -> truncate candidates to L; retrieval failure ->
        fall back to the baseline (no-context) prompt; transient LLM
        failure -> retry under the policy.  Only when every rung is
        exhausted does the error propagate.
        """
        degraded: list[str] = []
        candidates: list[RetrievedDocument] = []
        contexts: list[RetrievedDocument] = []
        rag_seconds = 0.0
        deadline = (
            Deadline(self.deadline_seconds) if self.deadline_seconds is not None else None
        )
        located = False
        if self.retriever is not None:
            t0 = time.perf_counter()
            try:
                candidates = self._locate(question)
                located = True
            except ReproError:
                degraded.append("retrieval:baseline-fallback")
            if located:
                try:
                    contexts = self._refine(question, candidates)
                except ReproError:
                    degraded.append("rerank:truncate")
                    contexts = candidates[: self.final_l]
            rag_seconds = time.perf_counter() - t0
        if located:
            prompt = RAG_PROMPT.format(context=format_context(contexts), question=question)
        else:
            prompt = BASELINE_PROMPT.format(question=question)

        messages = [
            ChatMessage(role="system", content=RAG_SYSTEM_PROMPT),
            ChatMessage(role="user", content=prompt),
        ]
        t0 = time.perf_counter()
        completion, attempts = self._complete_resilient(
            messages, key=question, deadline=deadline
        )
        llm_seconds = time.perf_counter() - t0
        if completion.finish_reason == "length":
            degraded.append("llm:truncated")

        return PipelineResult(
            question=question,
            answer=completion.text,
            mode=self.mode,
            model=self.chat_model.name,
            contexts=contexts,
            candidates=candidates,
            prompt=prompt,
            rag_seconds=rag_seconds,
            llm_seconds=llm_seconds,
            completion=completion,
            attempts=attempts,
            degraded=degraded,
        )


def build_rag_pipeline(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    mode: str = "rag+rerank",
    fault_injector: FaultInjector | None = None,
) -> RAGPipeline:
    """Construct a pipeline over the corpus in one of the three modes.

    ``mode``: ``"baseline"``, ``"rag"``, or ``"rag+rerank"``.
    ``fault_injector`` chaos-wraps the chat model, retriever, and
    reranker hops for reproducible failure testing.
    """
    config = config or WorkflowConfig()
    config.validate()
    rc: RetrievalConfig = config.retrieval
    resil = config.resilience
    policy = RetryPolicy.from_config(resil) if resil.enabled else None
    breaker = CircuitBreaker.from_config(resil, name="llm") if resil.enabled else None

    keyword = ManualPageKeywordSearch(bundle)
    chat: ChatModel = create_chat_model(
        config.chat_model,
        registry=bundle.registry,
        known_identifiers=keyword.known_identifiers(),
        iterations_per_token=config.iterations_per_token,
    )
    if fault_injector is not None:
        chat = fault_injector.wrap_model(chat)
    if mode == "baseline":
        return RAGPipeline(
            chat,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=resil.deadline_seconds,
        )

    chunks = chunk_corpus(
        bundle,
        include_mail=rc.include_mail_archives,
        chunk_size=rc.chunk_size,
        chunk_overlap=rc.chunk_overlap,
    )
    embedding = create_embedding_model(
        rc.embedding_model, corpus_texts=[c.text for c in chunks]
    )
    store = VectorStore.from_documents(chunks, embedding)
    retriever: Retriever = VectorRetriever(store)
    if fault_injector is not None:
        retriever = fault_injector.wrap_retriever(retriever)
    kw = keyword if rc.use_keyword_search else None

    if mode == "rag":
        return RAGPipeline(
            chat,
            retriever=retriever,
            keyword_search=kw,
            first_pass_k=rc.first_pass_k,
            final_l=rc.final_l,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=resil.deadline_seconds,
        )
    if mode == "rag+rerank":
        reranker: Reranker
        if rc.reranker == "flashrank-lite":
            reranker = FlashrankLiteReranker(chunks)
        else:
            reranker = NvidiaSimReranker(chunks)
        if fault_injector is not None:
            reranker = fault_injector.wrap_reranker(reranker)
        return RAGPipeline(
            chat,
            retriever=retriever,
            keyword_search=kw,
            reranker=reranker,
            first_pass_k=rc.first_pass_k,
            final_l=rc.final_l,
            retry_policy=policy,
            breaker=breaker,
            deadline_seconds=resil.deadline_seconds,
        )
    raise ConfigurationError(f"unknown pipeline mode {mode!r}")
