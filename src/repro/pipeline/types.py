"""Typed pipeline vocabulary: modes and degradation events.

Both enums mix in ``str`` and serialize to the exact strings the
interaction-history JSONL, the CLI output, and the chaos digests have
always used — ``PipelineMode.RAG_RERANK == "rag+rerank"`` is ``True``
and ``json.dumps`` emits the bare string — so replacing the stringly
typed values is not a schema break.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class PipelineMode(str, enum.Enum):
    """The three pipeline configurations of the paper's evaluation."""

    BASELINE = "baseline"
    RAG = "rag"
    RAG_RERANK = "rag+rerank"

    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def coerce(cls, value: "str | PipelineMode") -> "PipelineMode":
        """Accept either the enum or its wire string; reject anything else."""
        try:
            return cls(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown pipeline mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


class DegradationEvent(str, enum.Enum):
    """The degradation-ladder rungs a pipeline invocation may take.

    Values are the wire strings persisted in history records since the
    resilience PR; they double as the span-event names on the trace.
    """

    RETRIEVAL_BASELINE_FALLBACK = "retrieval:baseline-fallback"
    RERANK_TRUNCATE = "rerank:truncate"
    LLM_TRUNCATED = "llm:truncated"
    #: Retrieval merged fewer shards than the index holds (every replica
    #: of at least one shard was down); the result's ``coverage`` < 1.
    SHARD_PARTIAL = "shard:partial"

    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def coerce(cls, value: "str | DegradationEvent") -> "DegradationEvent":
        try:
            return cls(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown degradation event {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None

    @property
    def metric_suffix(self) -> str:
        """The event as a metric-name segment (``rerank_truncate``)."""
        return self.value.replace(":", "_").replace("-", "_")
