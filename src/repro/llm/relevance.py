"""Question ↔ fact relevance used by the simulated model.

Given a question, which of the facts available to the model (from
context or parametric memory) actually bear on it?  Topics are weighted
by specificity (IDF over the registry) so that a generic topic like
``KSP`` contributes little while ``KSPLSQR`` or ``least squares``
contribute a lot, and an IDF-weighted stemmed-token overlap between the
question and the fact statement catches paraphrased questions that never
name an identifier.  This is *not* the grader: the model selects facts
by this heuristic without access to the benchmark's gold fact lists.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.corpus.facts import Fact, FactRegistry
from repro.utils.textproc import code_tokens, stem, stemmed_tokens


@dataclass
class ScoredFact:
    fact: Fact
    score: float


class RelevanceModel:
    """Scores facts against a question with specificity-weighted topics."""

    #: Class prefixes users drop when naming solver types ("preonly"
    #: for KSPPREONLY, "ilu" for PCILU).
    _PREFIXES = ("ksp", "pc", "mat", "vec", "snes", "ts")

    def __init__(self, registry: FactRegistry) -> None:
        self.registry = registry
        topic_df: Counter[str] = Counter()
        for fact in registry.facts.values():
            topic_df.update({t.lower() for t in fact.topics})
        n = max(len(registry.facts), 1)
        self._topic_weight = {
            t: math.log((1 + n) / (1 + c)) + 0.1 for t, c in topic_df.items()
        }
        # Stemmed-token IDF over fact statements, for the paraphrase signal.
        tok_df: Counter[str] = Counter()
        for fact in registry.facts.values():
            tok_df.update(set(stemmed_tokens(fact.statement)))
        self._token_idf = {
            t: math.log((1 + n) / (1 + c)) + 0.1 for t, c in tok_df.items()
        }
        self._max_token_idf = max(self._token_idf.values(), default=1.0)
        # Cache per-fact stemmed statement tokens (hot loop in selection).
        self._stmt_tokens: dict[str, frozenset[str]] = {
            fid: frozenset(stemmed_tokens(f.statement))
            for fid, f in registry.facts.items()
        }

    def topic_weight(self, topic: str) -> float:
        return self._topic_weight.get(topic.lower(), 1.0)

    # ------------------------------------------------------------------ scoring
    def _topic_score(self, fact: Fact, q_lower: str, q_stems: set[str], q_idents: set[str]) -> float:
        s = 0.0
        for topic in fact.topics:
            tl = topic.lower()
            w = self.topic_weight(topic)
            if topic in q_idents:
                s += 1.3 * w
            elif " " in tl:
                if tl in q_lower:
                    s += 1.3 * w
            elif stem(tl) in q_stems or tl in q_stems:
                s += 1.0 * w
            elif tl.startswith("-") and stem(tl.lstrip("-")) in q_stems:
                s += 1.0 * w
            else:
                # Users name solver types without the class prefix
                # ("preonly" for KSPPREONLY, "gmres" for KSPGMRES).
                for prefix in self._PREFIXES:
                    rest = tl[len(prefix):]
                    if tl.startswith(prefix) and len(rest) >= 2 and stem(rest) in q_stems:
                        s += 1.0 * w
                        break
        return s

    def _paraphrase_score(self, fact: Fact, q_stems: set[str]) -> float:
        stmt = self._stmt_tokens[fact.fact_id]
        shared = q_stems & stmt
        if not shared or not q_stems:
            return 0.0
        # Sum in sorted order: float addition is non-associative, and set
        # iteration order varies with the process hash seed — summing in
        # hash order made near-tied scores (and thus answers) flip
        # between runs.
        num = sum(self._token_idf.get(t, self._max_token_idf) for t in sorted(shared))
        den = sum(self._token_idf.get(t, self._max_token_idf) for t in sorted(q_stems))
        return num / den if den > 0 else 0.0

    def score(self, fact: Fact, question: str) -> float:
        q_lower = question.lower()
        q_stems = set(stemmed_tokens(question))
        q_idents = set(code_tokens(question))
        s = self._topic_score(fact, q_lower, q_stems, q_idents)
        s += 3.2 * self._paraphrase_score(fact, q_stems)
        return s

    def select(
        self,
        facts: list[Fact],
        question: str,
        *,
        max_facts: int = 7,
        min_score: float = 0.9,
        relative: float = 0.25,
    ) -> list[ScoredFact]:
        """Facts relevant to ``question``, best first.

        A fact is kept if its score clears both the absolute floor and a
        fraction of the best score (so one dominant topic match does not
        drag in everything mildly related).
        """
        q_lower = question.lower()
        q_stems = set(stemmed_tokens(question))
        q_idents = set(code_tokens(question))
        scored = [
            ScoredFact(
                fact=f,
                score=self._topic_score(f, q_lower, q_stems, q_idents)
                + 3.2 * self._paraphrase_score(f, q_stems),
            )
            for f in facts
        ]
        scored.sort(key=lambda sf: (-sf.score, sf.fact.fact_id))
        if not scored or scored[0].score < min_score:
            return []
        floor = max(min_score, relative * scored[0].score) if relative > 0 else min_score
        return [sf for sf in scored if sf.score >= floor][:max_facts]
