"""Chat model interface: messages, usage accounting, completions."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.llm.tokens import count_tokens

if TYPE_CHECKING:
    from repro.context import RequestContext

_VALID_ROLES = ("system", "user", "assistant")


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat conversation."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ModelError(f"invalid role {self.role!r}; expected one of {_VALID_ROLES}")


@dataclass
class TokenUsage:
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class CompletionResult:
    """The model's reply plus bookkeeping the history database stores."""

    text: str
    model: str
    usage: TokenUsage = field(default_factory=TokenUsage)
    latency_seconds: float = 0.0
    finish_reason: str = "stop"


class ChatModel(ABC):
    """A chat completion model."""

    name: str = "base"
    context_window: int = 128_000

    @abstractmethod
    def complete(
        self, messages: list[ChatMessage], *, ctx: "RequestContext | None" = None
    ) -> CompletionResult:
        """Generate a reply to the conversation.

        ``ctx`` is the request-scoped context; implementations may use
        it for deterministic per-request randomness or, in batched
        serving, to defer latency work to the batch coordinator.
        """

    def _check_messages(self, messages: list[ChatMessage]) -> int:
        """Validate the conversation; returns the prompt token count."""
        if not messages:
            raise ModelError("empty message list")
        if messages[-1].role == "assistant":
            raise ModelError("conversation must not end with an assistant message")
        prompt_tokens = sum(count_tokens(m.content) for m in messages)
        if prompt_tokens > self.context_window:
            raise ModelError(
                f"prompt of {prompt_tokens} tokens exceeds {self.name} context window "
                f"({self.context_window})"
            )
        return prompt_tokens
