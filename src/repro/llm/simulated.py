"""The simulated chat model: grounded synthesis + realistic failure modes.

Behavioral contract (what the evaluation relies on):

* **Grounded** (prompt contains a ``### Context`` block with facts
  relevant to the question): the answer asserts those facts.  No
  falsehoods are emitted.  This is why good retrieval yields rubric
  scores 3–4.
* **Anchored** (context present but nothing in it is relevant): the
  model trusts the retrieved material over its own memory — it answers
  off the tangential context, recalls *less* of its parametric knowledge
  than it would unprompted, and may misread the context into a topical
  misconception.  This is the mechanism behind RAG's occasional
  *negative* impact (three questions in the paper's Fig. 6a).
* **Unassisted** (no context): the answer is built from the model's
  parametric fact subset.  Questions about unknown identifiers produce a
  confident fabrication (the KSPBurb failure); partial knowledge may be
  garnished with a registered topical misconception, at a per-model rate.
* **Refusal**: a grounded model asked about an identifier that appears
  nowhere in its context or knowledge answers "there is no such
  function" — the corrected KSPBurb behavior of Section V-B.

All stochastic-looking choices derive from stable hashes of
(model, question), so every experiment is exactly reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.corpus.facts import Fact, FactRegistry
from repro.llm.base import ChatMessage, ChatModel, CompletionResult, TokenUsage
from repro.llm.hallucination import HallucinationGenerator
from repro.llm.latency import LatencyEngine
from repro.llm.parametric import ParametricKnowledge
from repro.llm.relevance import RelevanceModel
from repro.llm.tokens import count_tokens
from repro.prompts.library import parse_rag_prompt
from repro.utils.rng import stable_hash
from repro.utils.textproc import code_tokens, is_petsc_api_identifier

if TYPE_CHECKING:
    from repro.context import RequestContext

_INTROS = (
    "In PETSc, the relevant behavior is as follows.",
    "Here is how PETSc handles this.",
    "Short answer below, with the key points.",
    "This comes up often; the key points are these.",
)

_HEDGES = (
    "The retrieved documentation does not address this directly, but based on "
    "the related material:",
    "I could not find this answered explicitly in the documentation provided; "
    "from the closest related content:",
)

_VAGUE = (
    "This depends on the specific solver configuration; consult the KSP "
    "manual pages for the authoritative behavior on your PETSc version.",
    "PETSc's behavior here is configuration dependent; the users manual "
    "chapter on KSP discusses the surrounding machinery in detail.",
)


@dataclass
class ModelPersona:
    """Tunable behavioral parameters for one simulated model."""

    name: str
    knowledge_rate: float
    hallucination_rate: float
    verbosity: float = 1.0
    iterations_per_token: int = 6000
    context_window: int = 128_000


class SimulatedChatModel(ChatModel):
    """A deterministic, fact-grounded stand-in for a hosted chat model."""

    def __init__(
        self,
        persona: ModelPersona,
        registry: FactRegistry,
        *,
        known_identifiers: frozenset[str] = frozenset(),
    ) -> None:
        self.persona = persona
        self.name = persona.name
        self.context_window = persona.context_window
        self.registry = registry
        self.known_identifiers = known_identifiers
        self.knowledge = ParametricKnowledge(
            registry, model_name=persona.name, knowledge_rate=persona.knowledge_rate
        )
        self.relevance = RelevanceModel(registry)
        self.hallucinator = HallucinationGenerator(registry)
        self.latency = LatencyEngine(iterations_per_token=persona.iterations_per_token)

    # ------------------------------------------------------------------ api
    def complete(
        self, messages: list[ChatMessage], *, ctx: "RequestContext | None" = None
    ) -> CompletionResult:
        start = time.perf_counter()
        prompt_tokens = self._check_messages(messages)
        last_user = next(m for m in reversed(messages) if m.role == "user")
        parsed = parse_rag_prompt(last_user.content)
        text = self._answer(parsed.question, parsed.context, parsed.guidance)
        completion_tokens = count_tokens(text)
        # Batched serving defers the burn to the coordinator's vectorized
        # flush; answer text is identical either way.
        collector = ctx.burn_collector if ctx is not None else None
        self.latency.burn(completion_tokens, collector=collector)
        elapsed = time.perf_counter() - start
        return CompletionResult(
            text=text,
            model=self.name,
            usage=TokenUsage(prompt_tokens=prompt_tokens, completion_tokens=completion_tokens),
            latency_seconds=elapsed,
        )

    # ------------------------------------------------------------------ policy
    def _unknown_identifiers(self, question: str) -> list[str]:
        """PETSc-API-shaped identifiers in the question that nothing knows.

        Only tokens shaped like real API names or option keys count;
        CamelCase concepts (BiCGStab, Gram-Schmidt) are ordinary words.
        """
        out = []
        for ident in code_tokens(question):
            if not is_petsc_api_identifier(ident):
                continue
            if ident in self.known_identifiers:
                continue
            if any(ident in f.topics for f in self.registry.facts.values()):
                continue
            out.append(ident)
        return out

    def _answer(self, question: str, context: str | None, guidance: str | None) -> str:
        if guidance is not None:
            # Revision mode: honor developer guidance by re-answering with
            # the guidance folded into the relevance query.
            question = f"{question} {guidance}"
        if context is not None:
            return self._answer_grounded(question, context)
        return self._answer_unassisted(question)

    def _answer_grounded(self, question: str, context: str) -> str:
        context_facts = self.registry.facts_in(context)
        # Retrieval already filtered the material, so the model reads it
        # generously: everything plausibly related to the question makes
        # it into the answer (the paper's score-4 answers synthesize all
        # the relevant retrieved content, not just the single best hit).
        picked = self.relevance.select(
            context_facts, question, max_facts=9, min_score=0.35, relative=0.0
        )
        unknown = self._unknown_identifiers(question)
        if unknown:
            # The question's subject does not exist anywhere in the
            # retrieved documentation: say so (the corrected KSPBurb
            # behavior), optionally adding the related true material.
            refusal = self._render_refusal(unknown[0])
            if picked:
                related = "\n\n".join(sf.fact.statement for sf in picked[:2])
                return f"{refusal}\n\nRelated information that may help:\n\n{related}"
            return refusal
        if picked:
            facts = [sf.fact for sf in picked]
            # Blend in parametric facts the model is confident about —
            # grounded context makes it braver, not dumber.
            extra = [
                sf.fact
                for sf in self.relevance.select(self.knowledge.known_facts(), question)
                if sf.fact not in facts
                and self.knowledge.coin("blend", question, sf.fact.fact_id, p=0.5)
            ]
            return self._render(question, facts + extra[:2], grounded=True)
        # Anchored degradation: context retrieved, none of it relevant.
        return self._answer_anchored(question, context_facts)

    def _answer_anchored(self, question: str, context_facts: list[Fact]) -> str:
        parts = [
            _HEDGES[stable_hash(f"{self.name}{question}", namespace="hedge") % len(_HEDGES)]
        ]
        tangential = context_facts[:2]
        parts.extend(f.statement for f in tangential)
        # Anchoring suppresses parametric recall: keep at most one known
        # fact, and only sometimes.
        parametric = self.relevance.select(self.knowledge.known_facts(), question, max_facts=3)
        if parametric and self.knowledge.coin("anchored-recall", question, p=0.4):
            parts.append(parametric[0].fact.statement)
        # Misreading tangential context into a misconception.
        if self.knowledge.coin("anchored-false", question, p=0.5):
            falsehood = self.hallucinator.topical_falsehood(question, model_name=self.name)
            if falsehood is not None:
                parts.append(falsehood.statement)
        if len(parts) == 1:
            parts.append(_VAGUE[stable_hash(question, namespace="vague") % len(_VAGUE)])
        return "\n\n".join(parts)

    def _answer_unassisted(self, question: str) -> str:
        unknown = self._unknown_identifiers(question)
        if unknown:
            # Asked about an API it has never seen, an ungrounded model
            # confabulates a confident description (the KSPBurb failure).
            text, _ = self.hallucinator.fabricate(unknown[0], model_name=self.name)
            return text
        picked = self.relevance.select(self.knowledge.known_facts(), question)
        if not picked:
            if self.knowledge.coin("vague-false", question, p=self.persona.hallucination_rate):
                falsehood = self.hallucinator.topical_falsehood(question, model_name=self.name)
                if falsehood is not None:
                    return "\n\n".join((
                        _VAGUE[stable_hash(question, namespace="vague") % len(_VAGUE)],
                        falsehood.statement,
                    ))
            return _VAGUE[stable_hash(question, namespace="vague") % len(_VAGUE)]
        facts = [sf.fact for sf in picked]
        answer = self._render(question, facts, grounded=False)
        # Partial knowledge invites embellishment: a topical misconception
        # slips in at a model-dependent rate.
        if self.knowledge.coin(
            "embellish", question, p=self.persona.hallucination_rate * 0.8
        ):
            falsehood = self.hallucinator.topical_falsehood(question, model_name=self.name)
            if falsehood is not None:
                answer += "\n\n" + falsehood.statement
        return answer

    # ------------------------------------------------------------------ rendering
    def _render(self, question: str, facts: list[Fact], *, grounded: bool) -> str:
        intro = _INTROS[stable_hash(f"{self.name}{question}", namespace="intro") % len(_INTROS)]
        parts = [intro]
        if len(facts) >= 3:
            parts.append("\n".join(f"- {f.statement}" for f in facts))
        else:
            parts.extend(f.statement for f in facts)
        options = [
            t for f in facts for t in (f.topics + f.signature) if t.startswith("-")
        ]
        if options and self.persona.verbosity >= 1.0:
            opts = " ".join(dict.fromkeys(options[:3]))
            parts.append(f"For example:\n\n```console\n./app {opts}\n```")
        if grounded:
            parts.append("(See the cited documentation excerpts above for details.)")
        return "\n\n".join(parts)

    @staticmethod
    def _render_refusal(identifier: str) -> str:
        return (
            f"It appears there may be a typo or misunderstanding, as there is no PETSc "
            f"function or object named {identifier}. In PETSc, the KSP (Krylov subspace) "
            f"module provides the linear solvers, with types such as KSPGMRES, KSPCG, "
            f"KSPBCGS, and KSPLSQR selected via KSPSetType or -ksp_type. If you saw "
            f"{identifier} somewhere, please check the spelling against the KSP manual pages."
        )
