"""Per-model "parametric knowledge": which facts a model knows unaided.

A hosted LLM knows some PETSc facts from pretraining and not others.
We model that as a deterministic pseudo-random subset of the fact
registry, drawn per (model, fact) pair from a stable hash, with the
subset size controlled by the model's ``knowledge_rate``.  Stronger
simulated models know more facts, weaker ones fewer — which is all the
evaluation needs to compare models the way the paper does.
"""

from __future__ import annotations

from repro.corpus.facts import Fact, FactRegistry
from repro.errors import ModelError
from repro.utils.rng import stable_hash

_HASH_SPACE = float(1 << 64)


class ParametricKnowledge:
    """Deterministic fact subset for a named model."""

    def __init__(
        self,
        registry: FactRegistry,
        *,
        model_name: str,
        knowledge_rate: float,
    ) -> None:
        if not 0.0 <= knowledge_rate <= 1.0:
            raise ModelError(f"knowledge_rate must be in [0, 1], got {knowledge_rate}")
        self.registry = registry
        self.model_name = model_name
        self.knowledge_rate = knowledge_rate

    def knows(self, fact_id: str) -> bool:
        """Whether this model 'remembers' the fact without retrieval."""
        if fact_id not in self.registry.facts:
            return False
        h = stable_hash(f"{self.model_name}\x1f{fact_id}", namespace="knows")
        return (h / _HASH_SPACE) < self.knowledge_rate

    def known_facts(self) -> list[Fact]:
        return [f for fid, f in self.registry.facts.items() if self.knows(fid)]

    def coin(self, *context: str, p: float) -> bool:
        """A deterministic biased coin tied to this model and ``context``.

        Used for per-question behavioral choices (e.g. whether the model
        hallucinates when it lacks grounding) that must be reproducible.
        """
        if not 0.0 <= p <= 1.0:
            raise ModelError(f"probability must be in [0, 1], got {p}")
        h = stable_hash("\x1f".join((self.model_name, *context)), namespace="coin")
        return (h / _HASH_SPACE) < p
