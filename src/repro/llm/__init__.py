"""Simulated chat models.

There is no network access in this reproduction, so hosted LLMs are
replaced by :class:`SimulatedChatModel`: a deterministic model whose
answer quality is a *function of the facts available to it* — facts found
in the prompt's context block, plus a per-model "parametric" subset of
the fact registry standing in for pretraining knowledge.  Models
hallucinate (emit registered falsehoods, or fabricate descriptions of
nonexistent APIs such as ``KSPBurb``) exactly when they lack grounding,
which preserves the mechanism the paper evaluates: baseline < RAG <
reranking-enhanced RAG.
"""

from repro.llm.base import ChatMessage, ChatModel, CompletionResult, TokenUsage
from repro.llm.latency import LatencyEngine
from repro.llm.parametric import ParametricKnowledge
from repro.llm.registry import CHAT_MODEL_NAMES, create_chat_model
from repro.llm.simulated import SimulatedChatModel
from repro.llm.tokens import count_tokens

__all__ = [
    "ChatMessage",
    "ChatModel",
    "CompletionResult",
    "TokenUsage",
    "LatencyEngine",
    "ParametricKnowledge",
    "CHAT_MODEL_NAMES",
    "create_chat_model",
    "SimulatedChatModel",
    "count_tokens",
]
