"""Named simulated chat models, mirroring the paper's model comparison.

=================  ====================================================
Registry name      Stand-in for
=================  ====================================================
gpt-4o-sim         OpenAI GPT-4o (best overall in the paper)
gpt-4-turbo-sim    an older GPT-4 variant (knows a bit less)
llama-3-70b-sim    Meta Llama 3 70B (solid, hallucinates more)
llama-3-8b-sim     Meta Llama 3 8B (fast, weak parametric knowledge)
=================  ====================================================

``knowledge_rate`` is the fraction of registry facts in the model's
parametric subset; ``hallucination_rate`` controls how often ungrounded
partial answers pick up a registered misconception.
"""

from __future__ import annotations

from repro.corpus.facts import FactRegistry, default_registry
from repro.errors import ModelError
from repro.llm.simulated import ModelPersona, SimulatedChatModel

_PERSONAS: dict[str, ModelPersona] = {
    "gpt-4o-sim": ModelPersona(
        name="gpt-4o-sim",
        knowledge_rate=0.42,
        hallucination_rate=0.45,
        verbosity=1.0,
        iterations_per_token=6000,
    ),
    "gpt-4-turbo-sim": ModelPersona(
        name="gpt-4-turbo-sim",
        knowledge_rate=0.34,
        hallucination_rate=0.55,
        verbosity=1.0,
        iterations_per_token=9000,
    ),
    "llama-3-70b-sim": ModelPersona(
        name="llama-3-70b-sim",
        knowledge_rate=0.26,
        hallucination_rate=0.65,
        verbosity=0.9,
        iterations_per_token=7000,
    ),
    "llama-3-8b-sim": ModelPersona(
        name="llama-3-8b-sim",
        knowledge_rate=0.12,
        hallucination_rate=0.80,
        verbosity=0.8,
        iterations_per_token=2500,
    ),
}

CHAT_MODEL_NAMES: tuple[str, ...] = tuple(_PERSONAS)


def create_chat_model(
    name: str,
    *,
    registry: FactRegistry | None = None,
    known_identifiers: frozenset[str] = frozenset(),
    iterations_per_token: int | None = None,
) -> SimulatedChatModel:
    """Instantiate a registered simulated chat model.

    ``iterations_per_token`` overrides the persona's latency cost (tests
    pass 0 to disable the generation-time burn).
    """
    persona = _PERSONAS.get(name)
    if persona is None:
        raise ModelError(
            f"unknown chat model {name!r}; known models: {', '.join(CHAT_MODEL_NAMES)}"
        )
    if iterations_per_token is not None:
        persona = ModelPersona(
            name=persona.name,
            knowledge_rate=persona.knowledge_rate,
            hallucination_rate=persona.hallucination_rate,
            verbosity=persona.verbosity,
            iterations_per_token=iterations_per_token,
            context_window=persona.context_window,
        )
    return SimulatedChatModel(
        persona,
        registry or default_registry(),
        known_identifiers=known_identifiers,
    )
