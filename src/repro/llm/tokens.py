"""Approximate token counting (BPE-free, deterministic).

A calibration of roughly 0.75 tokens per word plus punctuation/code
symbols matches hosted tokenizers within ~15% on technical English,
which is plenty for context-window accounting and latency simulation.
"""

from __future__ import annotations

import re

_TOKENISH_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")


def count_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``."""
    pieces = _TOKENISH_RE.findall(text)
    n = 0
    for p in pieces:
        if p.isalnum():
            # Long identifiers split into several BPE tokens.
            n += max(1, (len(p) + 4) // 5)
        else:
            n += 1
    return n
